"""Declarative experiment registry with typed parameter specs.

An *experiment* is a named, parameterised run producing a structured result
object (with ``to_dict()`` for JSON output) plus a formatter rendering it as
a printable table.  Experiments register with :func:`register_experiment`;
the command-line interface generates its per-experiment options directly
from each experiment's :class:`ParamSpec` list, so registering a new
experiment is all it takes to make it runnable (and ``--json``-able) from
the shell:

.. code-block:: python

    from repro.api import ParamSpec, register_experiment

    @register_experiment(
        "my-study",
        params=[ParamSpec("capacity", "int", default=8, help="factory size")],
        formatter=lambda result: str(result),
        description="my custom study",
    )
    def run_my_study(capacity=8, seed=0):
        ...
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .registry import Registry

#: Parameter kinds understood by the CLI generator.
PARAM_KINDS = ("int", "float", "str", "int_list", "flag")


def parse_int_list(text: Any) -> List[int]:
    """Parse ``"4,16,36"`` (or an already-parsed sequence) into ints."""
    if isinstance(text, (list, tuple)):
        return [int(item) for item in text]
    try:
        return [int(token) for token in str(text).split(",") if token.strip()]
    except ValueError as error:
        raise ValueError(
            f"expected comma-separated integers, got {text!r}"
        ) from error


@dataclass(frozen=True)
class ParamSpec:
    """One typed experiment parameter, as exposed on the CLI.

    Attributes
    ----------
    name:
        Python keyword name of the parameter (``num_mappings``); the CLI
        option is derived from it (``--num-mappings``).
    kind:
        One of :data:`PARAM_KINDS`.
    default:
        Default value; ``None`` means "let the runner decide".
    help:
        Help text shown by ``repro-msfu run <experiment> --help``.
    """

    name: str
    kind: str = "int"
    default: Any = None
    help: str = ""

    def __post_init__(self) -> None:
        if self.kind not in PARAM_KINDS:
            raise ValueError(
                f"unknown param kind {self.kind!r}; expected one of {PARAM_KINDS}"
            )

    @property
    def option(self) -> str:
        """The ``--option-name`` spelling of this parameter."""
        return "--" + self.name.replace("_", "-")

    def convert(self, value: Any) -> Any:
        """Coerce a raw (CLI or JSON) value to the parameter's type."""
        if value is None:
            return None
        if self.kind == "int":
            return int(value)
        if self.kind == "float":
            return float(value)
        if self.kind == "str":
            return str(value)
        if self.kind == "int_list":
            return parse_int_list(value)
        return bool(value)


#: The common trailing parameter shared by every built-in experiment.
SEED_PARAM = ParamSpec("seed", "int", default=0, help="random seed")

#: Worker-count parameter of the sweep-style experiments: ``1`` runs the
#: sweep serially, higher values execute it across a process pool via
#: :class:`repro.api.executor.SweepExecutor` (identical results, same order).
WORKERS_PARAM = ParamSpec(
    "workers", "int", default=1, help="worker processes for the sweep (1 = serial)"
)

#: Batching flag of the sweep-style experiments: route the cache-missing
#: simulations through the batched simulator core
#: (:func:`repro.routing.batchsim.simulate_batch`) — identical results,
#: same order, one grouped simulation pass instead of one call per point.
BATCH_PARAM = ParamSpec(
    "batch", "flag", help="batch the sweep's simulations (identical results)"
)


@dataclass(frozen=True)
class ExperimentSpec:
    """A registered experiment: runner, formatter and parameter schema."""

    name: str
    runner: Callable[..., Any]
    formatter: Callable[[Any], str]
    params: Tuple[ParamSpec, ...] = field(default_factory=tuple)
    description: str = ""

    def run(self, **kwargs: Any) -> Any:
        """Run the experiment; ``None`` kwargs fall back to runner defaults."""
        known = {spec.name: spec for spec in self.params}
        filtered: Dict[str, Any] = {}
        for key, value in kwargs.items():
            if value is None:
                continue
            spec = known.get(key)
            filtered[key] = spec.convert(value) if spec else value
        return self.runner(**filtered)

    def format(self, result: Any) -> str:
        """Render a result for humans."""
        return self.formatter(result)


#: The global experiment registry.
experiment_registry: Registry[ExperimentSpec] = Registry("experiment")

_builtins_loaded = False


def _load_builtin_experiments() -> None:
    """Import :mod:`repro.experiments` so the paper's artifacts register.

    Deferred to first lookup: the experiment modules import this module for
    the registration decorator, so importing them here at module-import time
    would be circular.
    """
    global _builtins_loaded
    if _builtins_loaded:
        return
    from .. import experiments  # noqa: F401  (importing runs registrations)

    # Mark loaded only after a successful import: if it raises (e.g. a
    # missing dependency), later calls must retry and surface the real
    # error rather than silently reporting an empty registry.  The
    # experiment modules never call back into the registry lookups at
    # import time, so this cannot recurse.
    _builtins_loaded = True


def register_experiment(
    name: str,
    runner: Optional[Callable[..., Any]] = None,
    *,
    formatter: Optional[Callable[[Any], str]] = None,
    params: Sequence[ParamSpec] = (),
    description: str = "",
    overwrite: bool = False,
):
    """Register an experiment; usable as a decorator over the runner.

    With ``runner`` given, registers immediately and returns the
    :class:`ExperimentSpec`.  Without it, returns a decorator (the decorated
    function is returned unchanged, so the module keeps its plain ``run``).
    """

    def _register(fn: Callable[..., Any]) -> ExperimentSpec:
        spec = ExperimentSpec(
            name=name,
            runner=fn,
            formatter=formatter if formatter is not None else str,
            params=tuple(params),
            description=description,
        )
        experiment_registry.register(name, spec, overwrite=overwrite)
        return spec

    if runner is not None:
        return _register(runner)

    def decorator(fn: Callable[..., Any]) -> Callable[..., Any]:
        _register(fn)
        return fn

    return decorator


def get_experiment(name: str) -> ExperimentSpec:
    """Look up a registered experiment; the error lists registered names."""
    _load_builtin_experiments()
    return experiment_registry.get(name)


def available_experiments() -> List[str]:
    """Names of all registered experiments, in registration order."""
    _load_builtin_experiments()
    return experiment_registry.names()


def unregister_experiment(name: str) -> ExperimentSpec:
    """Remove an experiment from the registry (useful in tests/plugins)."""
    _load_builtin_experiments()
    return experiment_registry.unregister(name)


def run_experiment(name: str, **kwargs: Any) -> Any:
    """Run a registered experiment and return its *structured* result."""
    return get_experiment(name).run(**kwargs)
