"""The unified build -> map -> simulate evaluation pipeline.

:class:`Pipeline` is the one evaluation path behind every figure, table,
sweep and CLI run.  It resolves a mapper from the registry, builds the
factory circuit (caching it so a sweep over many mappers builds each
``(capacity, levels, reuse)`` configuration exactly once — factory
construction dominates the two-level benches), runs the braid simulator and
reports the :class:`~repro.api.results.FactoryEvaluation` data point.

:class:`EvaluationRequest` is the serializable description of one such run;
:func:`capacity_sweep` and :func:`evaluate_factory_mapping` are the
functional conveniences the legacy :mod:`repro.analysis.sweeps` API now
delegates to.
"""

from __future__ import annotations

import dataclasses
import time
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

if TYPE_CHECKING:  # imported only for annotations: store.py imports this module
    from .store import ResultStore

from ..circuits.gates import GateKind
from ..distillation.block_code import (
    Factory,
    FactorySpec,
    ReusePolicy,
    build_factory,
)
from ..mapping.force_directed import (
    ForceDirectedConfig,
    refine_run_count,
    take_refine_stats,
)
from ..mapping.stitching import StitchedMapping, StitchingConfig
from ..routing.simulator import SimulationCache, SimulatorConfig
from ..scheduling.critical_path import (
    factory_area_lower_bound,
    factory_latency_lower_bound,
)
from .mappers import MapperContext, get_mapper
from .results import FactoryEvaluation, encode_value, filter_fields


def _reuse_policy(reuse: bool) -> ReusePolicy:
    return ReusePolicy.REUSE if reuse else ReusePolicy.NO_REUSE


# ----------------------------------------------------------------------
# Request model
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EvaluationRequest:
    """Everything needed to evaluate one factory configuration.

    ``capacity`` is the total output capacity of the factory (``k`` for a
    single-level factory, ``k**2`` for a two-level one, matching the x-axes
    of Fig. 7 and Fig. 10).  ``options`` is a free-form bag forwarded to the
    mapper via :class:`~repro.api.mappers.MapperContext` for third-party
    procedures with their own knobs.
    """

    method: str
    capacity: int
    levels: int = 1
    reuse: bool = False
    seed: int = 0
    fd_config: Optional[ForceDirectedConfig] = None
    stitch_config: Optional[StitchingConfig] = None
    sim_config: Optional[SimulatorConfig] = None
    options: Mapping[str, Any] = field(default_factory=dict)

    def context(self) -> MapperContext:
        """The mapper-facing view of this request."""
        return MapperContext(
            fd_config=self.fd_config,
            stitch_config=self.stitch_config,
            options=dict(self.options),
        )

    def spec(self) -> FactorySpec:
        """The factory spec this request evaluates."""
        return FactorySpec.from_capacity(self.capacity, self.levels)

    def with_effective_sim_config(
        self, default: Optional[SimulatorConfig] = None
    ) -> "EvaluationRequest":
        """This request with its *effective* simulator config made explicit.

        A request whose ``sim_config`` is ``None`` inherits a pipeline or
        executor default at evaluation time, so any **storage identity**
        (e.g. :func:`repro.api.store.request_fingerprint`) must be taken
        over this resolved form — otherwise two runs with different
        defaults would alias each other's persisted entries.  This is the
        single definition of that resolution rule.
        """
        effective = self.sim_config or default or SimulatorConfig()
        if effective is self.sim_config:
            return self
        return replace(self, sim_config=effective)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe encoding (configs become plain dicts)."""
        data: Dict[str, Any] = {
            "method": self.method,
            "capacity": self.capacity,
            "levels": self.levels,
            "reuse": self.reuse,
            "seed": self.seed,
            "fd_config": encode_value(self.fd_config),
            "stitch_config": encode_value(self.stitch_config),
            "sim_config": _encode_sim_config(self.sim_config),
            "options": encode_value(dict(self.options)),
        }
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EvaluationRequest":
        """Inverse of :meth:`to_dict`."""
        payload = dict(filter_fields(cls, data))
        if payload.get("fd_config"):
            payload["fd_config"] = ForceDirectedConfig(**payload["fd_config"])
        else:
            payload["fd_config"] = None
        if payload.get("stitch_config"):
            payload["stitch_config"] = StitchingConfig(**payload["stitch_config"])
        else:
            payload["stitch_config"] = None
        payload["sim_config"] = _decode_sim_config(payload.get("sim_config"))
        payload["options"] = dict(payload.get("options") or {})
        return cls(**payload)


def _encode_sim_config(config: Optional[SimulatorConfig]) -> Optional[Dict[str, Any]]:
    if config is None:
        return None
    return {
        "durations": {kind.value: int(v) for kind, v in config.durations.items()},
        "allow_detour": config.allow_detour,
        "detour_slack": config.detour_slack,
        "max_candidates": config.max_candidates,
        "hops": {str(index): list(cell) for index, cell in config.hops.items()},
        "max_cycles": config.max_cycles,
    }


def _decode_sim_config(data: Optional[Mapping[str, Any]]) -> Optional[SimulatorConfig]:
    if not data:
        return None
    payload = dict(data)
    payload["durations"] = {
        GateKind(kind): int(v) for kind, v in payload.get("durations", {}).items()
    }
    payload["hops"] = {
        int(index): tuple(cell) for index, cell in payload.get("hops", {}).items()
    }
    return SimulatorConfig(**payload)


# ----------------------------------------------------------------------
# Pipeline
# ----------------------------------------------------------------------
@dataclass
class PipelineStats:
    """Counters exposed for tests, benchmarking and capacity planning.

    ``factory_builds`` / ``cache_hits`` count factory-circuit construction
    against the LRU factory cache; ``sim_cache_hits`` counts simulations
    answered from the :class:`~repro.routing.simulator.SimulationCache`
    without re-simulating; ``fd_sweeps`` / ``fd_moves_accepted`` aggregate
    the force-directed annealer's :class:`~repro.mapping.force_directed.RefineStats`
    over every refinement the pipeline's mappers ran.

    ``sim_stall_events`` / ``sim_distinct_stalls`` / ``sim_wakeups``
    aggregate the simulator's stall counters (see
    :class:`~repro.routing.simulator.SimulationResult`) over every
    evaluation, cached or not — they describe the evaluated workloads, not
    the simulation work this process performed, so the numbers are stable
    across cache states and worker counts.

    ``store_hits`` counts requests answered whole from the attached
    :class:`~repro.api.store.ResultStore` — those runs skip mapping and
    simulation entirely, so they increment *only* this counter (not
    ``evaluations`` and not the per-workload sim counters above):
    ``store_hits + evaluations`` is the number of ``evaluate`` calls.

    ``build_seconds`` / ``map_seconds`` / ``sim_seconds`` split the wall
    time of the three pipeline phases — factory-circuit construction
    (cache misses only), mapper placement, and simulation (including
    batched runs; cache hits cost ~0) — so a bench regression is
    attributable to the right layer instead of only to total wall time.
    """

    factory_builds: int = 0
    cache_hits: int = 0
    evaluations: int = 0
    sim_cache_hits: int = 0
    store_hits: int = 0
    fd_sweeps: int = 0
    fd_moves_accepted: int = 0
    sim_stall_events: int = 0
    sim_distinct_stalls: int = 0
    sim_wakeups: int = 0
    build_seconds: float = 0.0
    map_seconds: float = 0.0
    sim_seconds: float = 0.0

    def snapshot(self) -> "PipelineStats":
        """An independent copy (used for before/after deltas)."""
        return dataclasses.replace(self)

    def delta(self, earlier: "PipelineStats") -> "PipelineStats":
        """Counter-wise difference ``self - earlier`` over every field."""
        return PipelineStats(
            **{
                f.name: getattr(self, f.name) - getattr(earlier, f.name)
                for f in dataclasses.fields(self)
            }
        )


class Pipeline:
    """Build -> map -> simulate, with factory-circuit and simulation caching.

    Parameters
    ----------
    sim_config:
        Default simulator configuration for every evaluation (a request's
        own ``sim_config`` takes precedence).
    cache_size:
        Maximum number of built factories kept alive (LRU).  Two-level
        factories are large, so the cache is bounded.
    sim_cache:
        Memo of deterministic simulation results, so repeated sweep points
        never re-simulate.  A fresh bounded cache is created when omitted;
        pass ``None``-disabling is not supported because memoization never
        changes results — share one cache between pipelines instead when
        coordinating sweeps.
    store:
        Optional :class:`~repro.api.store.ResultStore` (or anything with its
        ``get``/``put`` contract).  When set, every request is probed in the
        store *before* building or simulating — a hit returns the persisted
        :class:`FactoryEvaluation` (counted in ``stats.store_hits``) and a
        miss persists the freshly computed one, so results amortize across
        processes and machine reboots, not just within this process.
    """

    def __init__(
        self,
        sim_config: Optional[SimulatorConfig] = None,
        cache_size: int = 8,
        sim_cache: Optional[SimulationCache] = None,
        store: Optional["ResultStore"] = None,
    ) -> None:
        if cache_size < 1:
            raise ValueError(f"cache_size must be >= 1, got {cache_size}")
        self.sim_config = sim_config
        self.cache_size = cache_size
        self.sim_cache = sim_cache if sim_cache is not None else SimulationCache()
        self.store = store
        self.stats = PipelineStats()
        self._factories: "OrderedDict[Tuple[int, int, ReusePolicy], Factory]" = (
            OrderedDict()
        )

    # ------------------------------------------------------------------
    # Factory cache
    # ------------------------------------------------------------------
    def factory(self, capacity: int, levels: int = 1, reuse: bool = False) -> Factory:
        """The (cached) base factory for a configuration.

        Factories are always built with barriers between rounds — every
        mapper is evaluated on the same barriered schedule so the comparison
        isolates mapping quality (Section V-A).  Callers must treat the
        returned factory as read-only.
        """
        spec = FactorySpec.from_capacity(capacity, levels)
        key = (spec.k, spec.levels, _reuse_policy(reuse))
        cached = self._factories.get(key)
        if cached is not None:
            self._factories.move_to_end(key)
            self.stats.cache_hits += 1
            return cached
        build_started = time.perf_counter()
        built = build_factory(
            spec, reuse_policy=key[2], barriers_between_rounds=True
        )
        self.stats.build_seconds += time.perf_counter() - build_started
        self.stats.factory_builds += 1
        self._factories[key] = built
        while len(self._factories) > self.cache_size:
            self._factories.popitem(last=False)
        return built

    def clear_cache(self) -> None:
        """Drop every cached factory and memoized simulation result."""
        self._factories.clear()
        self.sim_cache.clear()

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def _map_request(self, mapper, request: EvaluationRequest, sim_config):
        """Build the factory and run the mapper for one request.

        Returns the concrete simulation point ``(circuit, placement,
        config)`` — with hop configs resolved for stitched mappings — after
        folding the mapper's refinement statistics into :attr:`stats`.
        """
        factory = self.factory(request.capacity, request.levels, request.reuse)

        # Attribute only the refinements this mapper run causes: records
        # already pending (from refinements outside the pipeline) are popped
        # along with ours — take-channel semantics — but excluded from the
        # pipeline's counters.  The monotonic run counter makes the slice
        # exact even if the bounded pending list truncated meanwhile.
        runs_before = refine_run_count()
        map_started = time.perf_counter()
        outcome = mapper.place(factory, seed=request.seed, context=request.context())
        self.stats.map_seconds += time.perf_counter() - map_started
        new_runs = refine_run_count() - runs_before
        taken = take_refine_stats()
        for refine in taken[max(0, len(taken) - new_runs) :] if new_runs else []:
            self.stats.fd_sweeps += refine.sweeps
            self.stats.fd_moves_accepted += refine.accepted_moves

        if isinstance(outcome, StitchedMapping):
            hop_config = replace(sim_config, hops=outcome.hops)
            return outcome.factory.circuit, outcome.placement, hop_config
        return factory.circuit, outcome, sim_config

    def _result_point(
        self, request: EvaluationRequest, sim_config, placement, sim_result
    ) -> FactoryEvaluation:
        """Fold one simulation result into the reported data point."""
        # Imported lazily: repro.analysis imports this module at package
        # initialisation, so a top-level import would be circular.
        from ..analysis.volume import mapping_area

        area = mapping_area(placement)
        spec = request.spec()
        self.stats.evaluations += 1
        self.stats.sim_stall_events += sim_result.stall_events
        self.stats.sim_distinct_stalls += sim_result.distinct_stalls
        self.stats.sim_wakeups += sim_result.wakeups
        return FactoryEvaluation(
            method=request.method,
            capacity=request.capacity,
            levels=request.levels,
            reuse=request.reuse,
            latency=sim_result.latency,
            area=area,
            volume=sim_result.latency * area,
            critical_latency=factory_latency_lower_bound(
                spec, dict(sim_config.durations)
            ),
            critical_area=factory_area_lower_bound(spec),
            stall_cycles=sim_result.stall_cycles,
        )

    def evaluate(self, request: EvaluationRequest) -> FactoryEvaluation:
        """Run one request end to end and return its data point."""
        # Resolve the mapper first: an unknown name should fail before any
        # factory is built, with a message listing the registered mappers.
        mapper = get_mapper(request.method)
        sim_config = request.sim_config or self.sim_config or SimulatorConfig()

        # Probe the persistent store before any build or simulation work,
        # keyed on the request with its effective simulator config made
        # explicit (see EvaluationRequest.with_effective_sim_config).
        if self.store is not None:
            storage_request = request.with_effective_sim_config(self.sim_config)
            stored = self.store.get(storage_request)
            if stored is not None:
                self.stats.store_hits += 1
                return stored

        evaluation_started = time.perf_counter()
        circuit, placement, point_config = self._map_request(
            mapper, request, sim_config
        )
        hits_before = self.sim_cache.hits
        sim_started = time.perf_counter()
        sim_result = self.sim_cache.simulate(circuit, placement, point_config)
        self.stats.sim_seconds += time.perf_counter() - sim_started
        self.stats.sim_cache_hits += self.sim_cache.hits - hits_before
        result = self._result_point(request, sim_config, placement, sim_result)
        if self.store is not None:
            self.store.try_put(
                storage_request,
                result,
                wall_seconds=time.perf_counter() - evaluation_started,
            )
        return result

    def evaluate_batch(
        self, requests: Sequence[EvaluationRequest], engine: str = "auto"
    ) -> List[FactoryEvaluation]:
        """Evaluate many requests, batching the cache-missing simulations.

        Semantically identical to ``[self.evaluate(r) for r in requests]``
        — same results, same store/cache accounting — but the simulations
        not answered by the :class:`~repro.api.store.ResultStore` or the
        :class:`~repro.routing.simulator.SimulationCache` are executed in
        one :func:`~repro.routing.batchsim.simulate_batch` call, which
        groups same-circuit points and advances them together through the
        vectorized (or compiled) batched engine.  ``engine`` is forwarded
        to :func:`~repro.routing.batchsim.simulate_batch`.
        """
        # Imported lazily, like the other analysis/routing consumers above.
        from ..routing.batchsim import simulate_batch
        from ..routing.simulator import simulation_cache_key

        requests = list(requests)
        results: List[Optional[FactoryEvaluation]] = [None] * len(requests)
        points: List[tuple] = []  # unique cache-missing (circuit, placement, config)
        point_of_key: Dict[tuple, int] = {}
        # Deferred finishing context per request: (position, storage_request,
        # sim_config, placement, point, started, point_index).
        deferred: List[tuple] = []

        for position, request in enumerate(requests):
            mapper = get_mapper(request.method)
            sim_config = request.sim_config or self.sim_config or SimulatorConfig()
            storage_request = None
            if self.store is not None:
                storage_request = request.with_effective_sim_config(self.sim_config)
                stored = self.store.get(storage_request)
                if stored is not None:
                    self.stats.store_hits += 1
                    results[position] = stored
                    continue
            started = time.perf_counter()
            circuit, placement, point_config = self._map_request(
                mapper, request, sim_config
            )
            point = (circuit, placement, point_config)
            key = simulation_cache_key(circuit, placement, point_config)
            cached = (
                self.sim_cache.lookup(circuit, placement, point_config)
                if key not in point_of_key
                else None
            )
            if cached is not None:
                self.stats.sim_cache_hits += 1
                result = self._result_point(request, sim_config, placement, cached)
                results[position] = result
                if self.store is not None:
                    self.store.try_put(
                        storage_request,
                        result,
                        wall_seconds=time.perf_counter() - started,
                    )
                continue
            point_index = point_of_key.get(key)
            first = point_index is None
            if first:
                point_index = len(points)
                point_of_key[key] = point_index
                points.append(point)
            deferred.append(
                (
                    position,
                    storage_request,
                    sim_config,
                    placement,
                    point,
                    started,
                    point_index,
                    first,
                )
            )

        if not deferred:
            return results  # type: ignore[return-value]

        batch_started = time.perf_counter()
        batch_results = simulate_batch(points, engine=engine)
        batch_seconds = time.perf_counter() - batch_started
        self.stats.sim_seconds += batch_seconds
        batch_share = batch_seconds / len(points)

        for (
            position,
            storage_request,
            sim_config,
            placement,
            point,
            started,
            point_index,
            first,
        ) in deferred:
            sim_result = batch_results[point_index]
            if first:
                # First occurrence of this simulation point: insert the
                # batched result into the cache (booked as the miss an
                # unbatched run would have taken).
                self.sim_cache.store_result(
                    point[0], point[1], point[2], sim_result
                )
            else:
                # A later duplicate of an earlier point in this batch: an
                # unbatched run answers it from the cache, and so does this
                # one (the first occurrence was inserted above).
                self.sim_cache.lookup(point[0], point[1], point[2])
                self.stats.sim_cache_hits += 1
            request = requests[position]
            result = self._result_point(request, sim_config, placement, sim_result)
            results[position] = result
            if self.store is not None:
                self.store.try_put(
                    storage_request,
                    result,
                    wall_seconds=(time.perf_counter() - started) + batch_share,
                )
        return results  # type: ignore[return-value]

    def run(self, requests: Iterable[EvaluationRequest]) -> List[FactoryEvaluation]:
        """Evaluate many requests, sharing the factory cache."""
        return [self.evaluate(request) for request in requests]

    def sweep(
        self,
        methods: Sequence[str],
        capacities: Sequence[int],
        levels: int = 1,
        reuse: bool = False,
        seed: int = 0,
        fd_config: Optional[ForceDirectedConfig] = None,
        stitch_config: Optional[StitchingConfig] = None,
        sim_config: Optional[SimulatorConfig] = None,
    ) -> List[FactoryEvaluation]:
        """Evaluate every (method, capacity) combination.

        Results are returned in (capacity-major, method-minor) order so
        tables can be assembled by simple grouping; each capacity's factory
        is built once and shared by every method.
        """
        requests = [
            EvaluationRequest(
                method=method,
                capacity=capacity,
                levels=levels,
                reuse=reuse,
                seed=seed,
                fd_config=fd_config,
                stitch_config=stitch_config,
                sim_config=sim_config,
            )
            for capacity in capacities
            for method in methods
        ]
        return self.run(requests)


# ----------------------------------------------------------------------
# Functional conveniences (the legacy analysis API delegates here)
# ----------------------------------------------------------------------
#: Shared pipeline behind the module-level convenience functions, so repeat
#: calls for the same configuration reuse the built factory.
_default_pipeline = Pipeline()


def default_pipeline() -> Pipeline:
    """The process-wide pipeline used by the convenience functions."""
    return _default_pipeline


def evaluate_factory_mapping(
    method: str,
    capacity: int,
    levels: int = 1,
    reuse: bool = False,
    seed: int = 0,
    fd_config: Optional[ForceDirectedConfig] = None,
    stitch_config: Optional[StitchingConfig] = None,
    sim_config: Optional[SimulatorConfig] = None,
) -> FactoryEvaluation:
    """Build, map and simulate one factory configuration."""
    return _default_pipeline.evaluate(
        EvaluationRequest(
            method=method,
            capacity=capacity,
            levels=levels,
            reuse=reuse,
            seed=seed,
            fd_config=fd_config,
            stitch_config=stitch_config,
            sim_config=sim_config,
        )
    )


def capacity_sweep(
    methods: Sequence[str],
    capacities: Sequence[int],
    levels: int = 1,
    reuse: bool = False,
    seed: int = 0,
    fd_config: Optional[ForceDirectedConfig] = None,
    stitch_config: Optional[StitchingConfig] = None,
    sim_config: Optional[SimulatorConfig] = None,
    workers: int = 1,
    batch: bool = False,
) -> List[FactoryEvaluation]:
    """Evaluate every (method, capacity) combination.

    With ``workers=1`` (the default) the sweep runs serially on the shared
    process-wide pipeline, reusing its factory and simulation caches across
    calls.  With ``workers > 1`` it is executed by a
    :class:`~repro.api.executor.SweepExecutor` across worker processes;
    results are identical and returned in the same deterministic
    (capacity-major, method-minor) order.  With ``batch=True`` the sweep
    runs through the executor's batching mode instead: the cache-missing
    simulations execute together in the batched simulator core (see
    :func:`~repro.routing.batchsim.simulate_batch`) — again with identical
    results in the identical order.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if workers > 1 or batch:
        # Imported lazily: the executor module builds on this one.
        from .executor import SweepExecutor, SweepPlan

        plan = SweepPlan.from_grid(
            methods=methods,
            capacities=capacities,
            levels=levels,
            reuse=reuse,
            seeds=(seed,),
            fd_config=fd_config,
            stitch_config=stitch_config,
            sim_config=sim_config,
        )
        executor = SweepExecutor(workers=workers, sim_config=sim_config, batch=batch)
        return executor.run(plan).evaluations
    return _default_pipeline.sweep(
        methods,
        capacities,
        levels=levels,
        reuse=reuse,
        seed=seed,
        fd_config=fd_config,
        stitch_config=stitch_config,
        sim_config=sim_config,
    )
