"""On-disk, content-addressed persistence of evaluation results.

Every in-process cache of the toolchain (the factory LRU, the
:class:`~repro.routing.simulator.SimulationCache`) dies with its process:
a crashed 10k-point capacity sweep, a re-run CI job, or two analysts
sweeping overlapping grids all pay full simulation cost again.
:class:`ResultStore` is the cross-run layer below them — a directory of
sharded JSON payloads, one per evaluated
:class:`~repro.api.pipeline.EvaluationRequest`, addressed by a canonical
**fingerprint** of the request:

* :func:`request_fingerprint` — blake2b over the sorted-key JSON encoding
  of ``request.to_dict()``, salted with a schema/version tag.  Evaluation
  is deterministic in the request, so two equal fingerprints are guaranteed
  to name the same result, which makes the store a pure optimization;
* payloads carry the full ``EvaluationResult.to_dict()`` form plus
  provenance metadata (git SHA, platform, Python version, wall time,
  timestamps) so stored numbers can be audited and cross-machine
  comparisons annotated;
* a bump of :data:`STORE_SCHEMA_VERSION` changes every fingerprint, so old
  entries become unreachable (and are reported as stale by
  :meth:`ResultStore.status` / reaped by :meth:`ResultStore.gc`) instead of
  being misread.

The store is deliberately dependency-free and concurrency-tolerant: writes
go through a per-process temporary file and an atomic :func:`os.replace`,
reads treat truncated or garbage payloads as misses (with a
:class:`ResultStoreWarning`), and two processes racing to store the same
fingerprint simply write the same bytes.

Layout on disk (two-hex-digit sharding keeps directories small even at
hundreds of thousands of entries)::

    .repro-store/
        ab/
            ab3f...9c.json
        c0/
            c04d...11.json
"""

from __future__ import annotations

import functools
import json
import os
import platform
import subprocess
import time
import warnings
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple, Union

from ..persistutil import atomic_write_json, tagged_fingerprint
from .pipeline import EvaluationRequest
from .results import FactoryEvaluation

#: Version tag folded into every fingerprint.  Bump it whenever the meaning
#: of a stored payload changes (request encoding, result fields, simulator
#: semantics): old entries become unreachable misses rather than wrong hits.
STORE_SCHEMA_VERSION = 1

#: Default store root, relative to the current working directory.
DEFAULT_STORE_ROOT = ".repro-store"

_FINGERPRINT_TAG = "repro-msfu-store/v{version}"


class ResultStoreWarning(UserWarning):
    """A store entry was unreadable (truncated, garbage, or mislabelled)."""


class MergeConflictError(ValueError):
    """Two stores disagree about one fingerprint's payload.

    Raised by :meth:`ResultStore.merge` when a source entry carries the
    same fingerprint as an already-merged entry but a *different*
    request/result payload.  Evaluation is deterministic in the request,
    so this should be impossible for honest stores — a conflict means a
    corrupted entry, a hand-edited payload, or results produced by
    diverging code, and silently picking one side would poison the merged
    store.  ``--prefer-newest`` (``prefer_newest=True``) downgrades the
    error to keep the payload with the newest recorded creation time.
    """

    def __init__(self, fingerprint: str, source: str, into: str) -> None:
        self.fingerprint = fingerprint
        self.source = source
        self.into = into
        super().__init__(
            f"merge conflict on fingerprint {fingerprint}: the entry in "
            f"{source} differs from the one already in {into} (same "
            f"address, different request/result payload). Evaluations are "
            f"deterministic, so one side is corrupt or was produced by "
            f"diverging code; re-run the shard, or pass --prefer-newest "
            f"to keep the newest payload."
        )


def request_fingerprint(
    request: EvaluationRequest, schema_version: int = STORE_SCHEMA_VERSION
) -> str:
    """Canonical content address of one evaluation request.

    blake2b over the sorted-key, separator-normalized JSON encoding of
    ``request.to_dict()``, salted with the schema/version tag — so the
    fingerprint is stable across processes and machines, and a schema bump
    re-addresses every request.
    """
    canonical = json.dumps(
        request.to_dict(), sort_keys=True, separators=(",", ":")
    )
    return tagged_fingerprint(
        _FINGERPRINT_TAG.format(version=schema_version), canonical
    )


@functools.lru_cache(maxsize=None)
def _git_sha_for(cwd: str) -> Optional[str]:
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if completed.returncode != 0:
        return None
    sha = completed.stdout.strip()
    return sha or None


def current_git_sha(cwd: Optional[Union[str, Path]] = None) -> Optional[str]:
    """The repository HEAD SHA, or ``None`` outside a git checkout.

    Memoized per directory: :meth:`ResultStore.put` stamps provenance on
    every persisted result, and a 10k-point sweep must not pay 10k
    ``git rev-parse`` subprocess launches.  (A HEAD moved *during* a run
    keeps the SHA observed first, which is the honest provenance anyway.)
    """
    return _git_sha_for(
        os.path.abspath(os.fspath(cwd)) if cwd is not None else os.getcwd()
    )


def store_metadata(wall_seconds: Optional[float] = None) -> Dict[str, Any]:
    """Provenance attached to every stored payload (and bench record)."""
    now = time.time()
    return {
        "git_sha": current_git_sha(),
        "python_version": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "wall_seconds": wall_seconds,
        "created_unix": now,
        "created_utc": datetime.fromtimestamp(now, tz=timezone.utc).strftime(
            "%Y-%m-%dT%H:%M:%SZ"
        ),
    }


@dataclass
class GcReport:
    """Outcome of one :meth:`ResultStore.gc` pass."""

    removed: List[str] = field(default_factory=list)
    kept: int = 0
    dry_run: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "removed": len(self.removed),
            "removed_paths": list(self.removed),
            "kept": self.kept,
            "dry_run": self.dry_run,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "GcReport":
        """Inverse of :meth:`to_dict`.

        Accepts records written before ``removed_paths`` existed; those
        round-trip with an empty path list (the count key was lossy).
        """
        return cls(
            removed=list(data.get("removed_paths", [])),
            kept=int(data.get("kept", 0)),
            dry_run=bool(data.get("dry_run", False)),
        )


@dataclass
class StoreStatus:
    """One :meth:`ResultStore.status` scan as a structured record.

    The machine-readable face of ``repro-msfu sweep status --json``: CI
    jobs and fleet tooling assert store contents off these fields instead
    of screen-scraping the human table.
    """

    root: str
    schema_version: int
    entries: int = 0
    total_bytes: int = 0
    corrupt: int = 0
    stale_schema: int = 0
    oldest_utc: Optional[str] = None
    newest_utc: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "root": self.root,
            "schema_version": self.schema_version,
            "entries": self.entries,
            "total_bytes": self.total_bytes,
            "corrupt": self.corrupt,
            "stale_schema": self.stale_schema,
            "oldest_utc": self.oldest_utc,
            "newest_utc": self.newest_utc,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StoreStatus":
        """Inverse of :meth:`to_dict`."""
        return cls(
            root=str(data.get("root", "")),
            schema_version=int(data.get("schema_version", 0)),
            entries=int(data.get("entries", 0)),
            total_bytes=int(data.get("total_bytes", 0)),
            corrupt=int(data.get("corrupt", 0)),
            stale_schema=int(data.get("stale_schema", 0)),
            oldest_utc=data.get("oldest_utc"),
            newest_utc=data.get("newest_utc"),
        )


@dataclass
class MergeSourceReport:
    """Per-source provenance accounting of one :meth:`ResultStore.merge`.

    Every source entry lands in exactly one bucket: ``merged`` (copied
    into the destination), ``identical`` (already present with the same
    payload — overlapping shards), ``conflicts`` (same fingerprint,
    different payload; fatal unless ``prefer_newest``), ``stale_schema``
    (a different schema generation, excluded — its fingerprints are not
    comparable), or ``corrupt`` (unreadable/mislabelled, skipped with a
    :class:`ResultStoreWarning`).  ``preferred`` counts the conflicts
    resolved in this source's favour under ``prefer_newest``.
    """

    root: str
    scanned: int = 0
    merged: int = 0
    identical: int = 0
    conflicts: int = 0
    preferred: int = 0
    stale_schema: int = 0
    bad_entries: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "root": self.root,
            "scanned": self.scanned,
            "merged": self.merged,
            "identical": self.identical,
            "conflicts": self.conflicts,
            "preferred": self.preferred,
            "stale_schema": self.stale_schema,
            "corrupt": self.bad_entries,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MergeSourceReport":
        """Inverse of :meth:`to_dict`."""
        return cls(
            root=str(data.get("root", "")),
            scanned=int(data.get("scanned", 0)),
            merged=int(data.get("merged", 0)),
            identical=int(data.get("identical", 0)),
            conflicts=int(data.get("conflicts", 0)),
            preferred=int(data.get("preferred", 0)),
            stale_schema=int(data.get("stale_schema", 0)),
            bad_entries=int(data.get("corrupt", 0)),
        )


@dataclass
class MergeReport:
    """Outcome of one :meth:`ResultStore.merge` pass, per source + totals."""

    into: str
    prefer_newest: bool = False
    sources: List[MergeSourceReport] = field(default_factory=list)

    def _total(self, name: str) -> int:
        return sum(getattr(source, name) for source in self.sources)

    @property
    def merged(self) -> int:
        return self._total("merged")

    @property
    def identical(self) -> int:
        return self._total("identical")

    @property
    def conflicts(self) -> int:
        return self._total("conflicts")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "into": self.into,
            "prefer_newest": self.prefer_newest,
            "merged": self.merged,
            "identical": self.identical,
            "conflicts": self.conflicts,
            "stale_schema": self._total("stale_schema"),
            "corrupt": self._total("bad_entries"),
            "sources": [source.to_dict() for source in self.sources],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MergeReport":
        """Inverse of :meth:`to_dict` (totals are recomputed, not stored)."""
        return cls(
            into=str(data.get("into", "")),
            prefer_newest=bool(data.get("prefer_newest", False)),
            sources=[
                MergeSourceReport.from_dict(item)
                for item in data.get("sources", [])
            ],
        )


class ResultStore:
    """Content-addressed on-disk memo of :class:`FactoryEvaluation` payloads.

    Parameters
    ----------
    root:
        Store directory (created lazily on first write).  Defaults to
        ``.repro-store`` under the current working directory.
    schema_version:
        Fingerprint schema tag; exposed for tests and migrations, normally
        left at :data:`STORE_SCHEMA_VERSION`.

    Notes
    -----
    ``hits`` / ``misses`` / ``puts`` / ``corrupt_skipped`` are
    process-lifetime counters on the *lookup* path, making the executor's
    ``store_hits`` accounting exact (maintenance scans — ``status``,
    ``gc`` — do not move them).  Entries are plain JSON files, so a store
    can be rsynced, committed, or inspected with ``jq``.
    """

    def __init__(
        self,
        root: Union[str, Path] = DEFAULT_STORE_ROOT,
        schema_version: int = STORE_SCHEMA_VERSION,
    ) -> None:
        self.root = Path(root)
        self.schema_version = schema_version
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.corrupt_skipped = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ResultStore root={str(self.root)!r} v{self.schema_version}>"

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    def fingerprint(self, request: EvaluationRequest) -> str:
        """The content address this store uses for ``request``."""
        return request_fingerprint(request, self.schema_version)

    def path_for(self, fingerprint: str) -> Path:
        """Sharded payload path of a fingerprint."""
        return self.root / fingerprint[:2] / f"{fingerprint}.json"

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def _read_payload(
        self, path: Path, count_corrupt: bool = True
    ) -> Optional[Dict[str, Any]]:
        """Parse one payload file; corrupt files are warnings, not crashes.

        ``count_corrupt=False`` keeps maintenance scans (``status``/``gc``
        iterating every entry) from inflating the ``corrupt_skipped``
        counter, which counts skips on the *lookup* path only.
        """
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, ValueError, UnicodeDecodeError) as error:
            if count_corrupt:
                self.corrupt_skipped += 1
            warnings.warn(
                f"result store: skipping unreadable entry {path} ({error})",
                ResultStoreWarning,
                stacklevel=3,
            )
            return None
        if not isinstance(payload, dict):
            if count_corrupt:
                self.corrupt_skipped += 1
            warnings.warn(
                f"result store: skipping non-object entry {path}",
                ResultStoreWarning,
                stacklevel=3,
            )
            return None
        return payload

    def get(self, request: EvaluationRequest) -> Optional[FactoryEvaluation]:
        """The stored evaluation of ``request``, or ``None`` (a miss).

        Payloads whose embedded schema version or fingerprint does not match
        the probe — manual edits, partial writes that survived as valid
        JSON, foreign-schema leftovers — are treated as misses with a
        :class:`ResultStoreWarning`, never as crashes or wrong answers.
        """
        fingerprint = self.fingerprint(request)
        payload = self._read_payload(self.path_for(fingerprint))
        if payload is None:
            self.misses += 1
            return None
        if (
            payload.get("schema_version") != self.schema_version
            or payload.get("fingerprint") != fingerprint
        ):
            self.corrupt_skipped += 1
            warnings.warn(
                f"result store: entry {fingerprint} is mislabelled "
                f"(schema_version={payload.get('schema_version')!r}); skipping",
                ResultStoreWarning,
                stacklevel=2,
            )
            self.misses += 1
            return None
        try:
            result = FactoryEvaluation.from_dict(payload["result"])
        except (AttributeError, KeyError, TypeError, ValueError) as error:
            self.corrupt_skipped += 1
            warnings.warn(
                f"result store: entry {fingerprint} has an undecodable "
                f"result ({error}); skipping",
                ResultStoreWarning,
                stacklevel=2,
            )
            self.misses += 1
            return None
        self.hits += 1
        return result

    def contains(self, request: EvaluationRequest) -> bool:
        """Whether a readable, correctly labelled entry exists (no counters)."""
        hits, misses, corrupt = self.hits, self.misses, self.corrupt_skipped
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ResultStoreWarning)
            found = self.get(request)
        self.hits, self.misses, self.corrupt_skipped = hits, misses, corrupt
        return found is not None

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def put(
        self,
        request: EvaluationRequest,
        evaluation: FactoryEvaluation,
        wall_seconds: Optional[float] = None,
    ) -> str:
        """Persist one evaluation; returns its fingerprint.

        The write is atomic (temporary file + :func:`os.replace`), so a
        killed sweep never leaves a half-written entry under the final
        name, and two processes storing the same fingerprint are safe.
        """
        fingerprint = self.fingerprint(request)
        path = self.path_for(fingerprint)
        payload = {
            "schema_version": self.schema_version,
            "fingerprint": fingerprint,
            "request": request.to_dict(),
            "result": evaluation.to_dict(),
            "meta": store_metadata(wall_seconds),
        }
        atomic_write_json(path, payload, indent=2, sort_keys=True)
        self.puts += 1
        return fingerprint

    def try_put(
        self,
        request: EvaluationRequest,
        evaluation: FactoryEvaluation,
        wall_seconds: Optional[float] = None,
    ) -> Optional[str]:
        """:meth:`put`, degrading write failures to a warning.

        The pipeline and executor treat the store as a pure optimization:
        a full disk or permission error must cost the *persistence* of a
        result, never the sweep that computed it.  Returns the fingerprint,
        or ``None`` when the write failed.
        """
        try:
            return self.put(request, evaluation, wall_seconds)
        except OSError as error:
            warnings.warn(
                f"result store: could not persist an entry under "
                f"{self.root} ({error}); continuing without it",
                ResultStoreWarning,
                stacklevel=2,
            )
            return None

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    @staticmethod
    def _is_shard_name(name: str) -> bool:
        """Whether a directory name is a two-hex-digit payload shard.

        Anything else under the root — e.g. the ``jobs/`` directory the
        sweep service keeps its job records in — belongs to another layer
        and must stay invisible to ``status``/``gc``/``len`` scans.
        """
        return len(name) == 2 and all(c in "0123456789abcdef" for c in name)

    def _entry_paths(self) -> Iterator[Path]:
        if not self.root.is_dir():
            return
        for shard in sorted(self.root.iterdir()):
            if not shard.is_dir() or not self._is_shard_name(shard.name):
                continue
            for path in sorted(shard.glob("*.json")):
                yield path

    def entries(self) -> Iterator[Tuple[Path, Optional[Dict[str, Any]]]]:
        """Every entry path with its parsed payload (``None`` if corrupt).

        A maintenance scan, not a lookup: corrupt entries are reported in
        the yielded pairs without touching the ``corrupt_skipped`` counter.
        """
        for path in self._entry_paths():
            yield path, self._read_payload(path, count_corrupt=False)

    def __len__(self) -> int:
        return sum(1 for _ in self._entry_paths())

    def _entry_age_seconds(
        self, path: Path, payload: Optional[Dict[str, Any]], now: float
    ) -> float:
        """Entry age: recorded creation time, file mtime for corrupt files."""
        if payload is not None:
            created = (payload.get("meta") or {}).get("created_unix")
            if isinstance(created, (int, float)):
                return now - float(created)
        try:
            return now - path.stat().st_mtime
        except OSError:  # pragma: no cover - raced with a concurrent gc
            return 0.0

    def counters(self) -> Dict[str, int]:
        """Process-lifetime lookup-path counters (``/v1/status`` reporting).

        These are the counters documented on the class: ``hits`` /
        ``misses`` / ``puts`` / ``corrupt_skipped`` move only on the
        lookup/write path, never during maintenance scans.
        """
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "corrupt_skipped": self.corrupt_skipped,
        }

    def status_record(self) -> StoreStatus:
        """Aggregate view of the store as a structured :class:`StoreStatus`."""
        record = StoreStatus(
            root=str(self.root), schema_version=self.schema_version
        )
        oldest: Optional[float] = None
        newest: Optional[float] = None
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ResultStoreWarning)
            for path, payload in self.entries():
                record.entries += 1
                try:
                    record.total_bytes += path.stat().st_size
                except OSError:  # pragma: no cover - raced with deletion
                    pass
                if payload is None:
                    record.corrupt += 1
                    continue
                if payload.get("schema_version") != self.schema_version:
                    record.stale_schema += 1
                created = (payload.get("meta") or {}).get("created_unix")
                if isinstance(created, (int, float)):
                    created = float(created)
                    oldest = created if oldest is None else min(oldest, created)
                    newest = created if newest is None else max(newest, created)

        def _utc(stamp: Optional[float]) -> Optional[str]:
            if stamp is None:
                return None
            return datetime.fromtimestamp(stamp, tz=timezone.utc).strftime(
                "%Y-%m-%dT%H:%M:%SZ"
            )

        record.oldest_utc = _utc(oldest)
        record.newest_utc = _utc(newest)
        return record

    def status(self) -> Dict[str, Any]:
        """Aggregate view of the store for ``repro-msfu sweep status``.

        The plain-dict face of :meth:`status_record`, kept for existing
        callers (the sweep service's ``/v1/status`` among them).
        """
        return self.status_record().to_dict()

    def gc(
        self,
        keep_days: float,
        dry_run: bool = False,
        now: Optional[float] = None,
    ) -> GcReport:
        """Remove entries older than ``keep_days`` days; keep everything else.

        Age comes from each payload's recorded creation time; corrupt
        payloads (whose metadata is unreadable) age by file mtime.  With
        ``dry_run`` nothing is deleted, only reported.
        """
        if keep_days < 0:
            raise ValueError(f"keep_days must be >= 0, got {keep_days}")
        reference = time.time() if now is None else now
        horizon = keep_days * 86400.0
        report = GcReport(dry_run=dry_run)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ResultStoreWarning)
            for path, payload in self.entries():
                if self._entry_age_seconds(path, payload, reference) > horizon:
                    report.removed.append(path.stem)
                    if not dry_run:
                        try:
                            path.unlink()
                        except OSError:  # pragma: no cover - concurrent gc
                            pass
                else:
                    report.kept += 1
        return report

    # ------------------------------------------------------------------
    # Merging (distributed sweeps)
    # ------------------------------------------------------------------
    @staticmethod
    def _payload_digest(payload: Mapping[str, Any]) -> str:
        """Content digest of what a store entry *means*.

        Covers the request and result payloads only — provenance metadata
        (timestamps, machine, git SHA) legitimately differs between shard
        machines that computed the same deterministic result, so it must
        not make honest duplicates look like conflicts.
        """
        canonical = json.dumps(
            {"request": payload.get("request"), "result": payload.get("result")},
            sort_keys=True,
            separators=(",", ":"),
        )
        return tagged_fingerprint("repro-msfu-merge/v1", canonical)

    def merge(
        self,
        sources: Iterable[Union["ResultStore", str, Path]],
        prefer_newest: bool = False,
    ) -> MergeReport:
        """Union every source store's entries into this one.

        The distributed-sweep join: N shard machines run disjoint (or
        overlapping) pieces of one plan against private stores, and the
        coordinator merges by **union on fingerprint** — no coordination
        protocol needed, because the fingerprint is a content address and
        evaluation is deterministic in the request.  Per source entry:

        * fingerprint absent from this store → the payload file is copied
          (atomically, byte-equivalent re-serialization);
        * fingerprint present with an equal request/result digest → an
          identical duplicate (overlapping shards), left as is;
        * fingerprint present with a *different* digest → a
          :class:`MergeConflictError` by default; with ``prefer_newest``
          the payload with the newest ``meta.created_unix`` wins;
        * stale-schema entries are excluded (their fingerprints are not
          comparable across generations) and corrupt/mislabelled entries
          are skipped with a :class:`ResultStoreWarning` — exactly the
          read-path discipline of :meth:`get`.

        Sources merge in the order given; a corrupt *destination* entry is
        healed by the first readable source payload for its fingerprint.
        Returns a :class:`MergeReport` with per-source accounting.
        """
        report = MergeReport(into=str(self.root), prefer_newest=prefer_newest)
        own_root = self.root.resolve()
        for source in sources:
            resolved = as_result_store(source)
            assert resolved is not None  # sources are never None entries
            if resolved.root.resolve() == own_root:
                raise ValueError(
                    f"cannot merge store {resolved.root} into itself"
                )
            source_report = MergeSourceReport(root=str(resolved.root))
            report.sources.append(source_report)
            for path, payload in resolved.entries():
                source_report.scanned += 1
                if payload is None:
                    source_report.bad_entries += 1
                    warnings.warn(
                        f"merge: skipping unreadable source entry {path}",
                        ResultStoreWarning,
                        stacklevel=2,
                    )
                    continue
                fingerprint = payload.get("fingerprint")
                if fingerprint != path.stem:
                    source_report.bad_entries += 1
                    warnings.warn(
                        f"merge: skipping mislabelled source entry {path} "
                        f"(fingerprint field {fingerprint!r})",
                        ResultStoreWarning,
                        stacklevel=2,
                    )
                    continue
                if payload.get("schema_version") != self.schema_version:
                    source_report.stale_schema += 1
                    continue
                destination = self.path_for(fingerprint)
                with warnings.catch_warnings():
                    # A corrupt destination entry is healed by the copy
                    # below; warning about reading it would be noise.
                    warnings.simplefilter("ignore", ResultStoreWarning)
                    existing = self._read_payload(
                        destination, count_corrupt=False
                    )
                if existing is not None and (
                    existing.get("fingerprint") != fingerprint
                    or existing.get("schema_version") != self.schema_version
                ):
                    existing = None  # mislabelled destination: heal it
                if existing is None:
                    atomic_write_json(
                        destination, payload, indent=2, sort_keys=True
                    )
                    source_report.merged += 1
                    continue
                if self._payload_digest(existing) == self._payload_digest(
                    payload
                ):
                    source_report.identical += 1
                    continue
                source_report.conflicts += 1
                if not prefer_newest:
                    raise MergeConflictError(
                        fingerprint, str(resolved.root), str(self.root)
                    )
                if self._created_unix(payload) > self._created_unix(existing):
                    atomic_write_json(
                        destination, payload, indent=2, sort_keys=True
                    )
                    source_report.preferred += 1
        return report

    @staticmethod
    def _created_unix(payload: Mapping[str, Any]) -> float:
        """Recorded creation time of a payload (0.0 when absent)."""
        created = (payload.get("meta") or {}).get("created_unix")
        return float(created) if isinstance(created, (int, float)) else 0.0


def as_result_store(
    store: Optional[Union["ResultStore", str, Path]]
) -> Optional[ResultStore]:
    """Normalize a store argument: pass instances through, wrap paths."""
    if store is None or isinstance(store, ResultStore):
        return store
    return ResultStore(store)
