"""Distributed sweep sharding over mergeable stores.

The paper's evaluation sweeps (Figs. 7/10, Table I) are embarrassingly
parallel, and the :class:`~repro.api.store.ResultStore` is content-addressed
with atomic per-entry files — so N machines can run pieces of one
:class:`~repro.api.executor.SweepPlan` against *private* stores with **no
coordination protocol at all** and a coordinator can join them afterwards
by union on ``request_fingerprint`` (:meth:`ResultStore.merge`).  This
module turns the single-machine resume machinery into that fleet-scale
primitive:

* :class:`ShardSpec` — a deterministic partition of a plan's positions
  (``contiguous`` block or ``strided`` round-robin).  Shard identity is a
  :func:`~repro.persistutil.tagged_fingerprint` over the plan fingerprint
  plus ``index/count`` and strategy, so a shard names exactly one piece of
  exactly one plan, on every machine;
* :func:`plan_fingerprint` — the content address of a whole plan under an
  executor's defaults (the ordered per-request *store* fingerprints), the
  same identity the sweep service keys its jobs by;
* :class:`ClaimDir` — optional file-based **work stealing**: shards claim
  pending points through atomic exclusive claim files in a shared
  directory (:func:`~repro.persistutil.exclusive_write_json`, which
  publishes via ``os.link`` after an atomic temp-file write), so a fast
  shard finishes a slow shard's tail.  Claims are an optimization only:
  losing a race, crashing mid-claim, or running with no claim directory
  at all never changes *what* the union of the shard stores serializes
  to — only who computed which entry;
* :func:`run_shard` — execute one shard against its private store with
  crash-safe resume, then (with a claim directory) steal still-unclaimed
  foreign points.

The invariant the whole layer is built on, and that the test suite and the
CI ``shard-merge`` job enforce end to end: **any union of shard stores —
disjoint, overlapping, or killed mid-run and resumed — serializes
byte-identical to one uninterrupted sweep**, because evaluation is
deterministic in the request and the store is a pure content-addressed
memo of it.
"""

from __future__ import annotations

import dataclasses
import json
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from ..persistutil import (
    atomic_write_json,
    exclusive_write_json,
    tagged_fingerprint,
)
from ..routing.simulator import SimulatorConfig
from .executor import ExecutorStats, SweepExecutor, SweepPlan, SweepProgress
from .pipeline import EvaluationRequest
from .results import FactoryEvaluation
from .store import (
    STORE_SCHEMA_VERSION,
    ResultStore,
    ResultStoreWarning,
    as_result_store,
    request_fingerprint,
)

#: The partitioning strategies :class:`ShardSpec` understands.
SHARD_STRATEGIES = ("contiguous", "strided")

#: Schema tag of the files ``sweep plan-split`` writes.
SHARD_FILE_SCHEMA = "repro-msfu-shard-file/v1"

#: Schema tag of work-stealing claim files.
CLAIM_SCHEMA = "repro-msfu-claim/v1"

_PLAN_FINGERPRINT_TAG = "repro-msfu-plan/v{version}"
_SHARD_FINGERPRINT_TAG = "repro-msfu-shard/v{version}"


def plan_fingerprint(
    plan: SweepPlan,
    sim_config: Optional[SimulatorConfig] = None,
    schema_version: int = STORE_SCHEMA_VERSION,
) -> str:
    """Canonical content address of a plan under an executor's defaults.

    blake2b over the *ordered* per-request store fingerprints (order is
    result order, so two plans differing only in order are different
    plans), each resolved with the effective simulator config exactly as
    the store keys them — so plan identity is store identity one level up,
    stable across machines.
    """
    parts = "\n".join(
        request_fingerprint(
            request.with_effective_sim_config(sim_config), schema_version
        )
        for request in plan
    )
    return tagged_fingerprint(
        _PLAN_FINGERPRINT_TAG.format(version=schema_version), parts
    )


# ----------------------------------------------------------------------
# The partitioner
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardSpec:
    """One deterministic piece of a sweep plan: ``index`` of ``count``.

    ``contiguous`` assigns balanced blocks of consecutive plan positions
    (block sizes differ by at most one); ``strided`` assigns every
    ``count``-th position starting at ``index`` — the better default when
    a plan's cost ramps along an axis (e.g. capacity-major grids), since
    every shard then samples the whole cost range.  Together the ``count``
    shards of either strategy cover every plan position exactly once.
    """

    index: int
    count: int
    strategy: str = "contiguous"

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"shard count must be >= 1, got {self.count}")
        if not 0 <= self.index < self.count:
            raise ValueError(
                f"shard index must be in [0, {self.count}), got {self.index}"
            )
        if self.strategy not in SHARD_STRATEGIES:
            raise ValueError(
                f"unknown shard strategy {self.strategy!r}; "
                f"expected one of {', '.join(SHARD_STRATEGIES)}"
            )

    def plan_indices(self, total: int) -> Tuple[int, ...]:
        """The plan positions this shard owns, in plan order."""
        if total < 0:
            raise ValueError(f"plan length must be >= 0, got {total}")
        if self.strategy == "strided":
            return tuple(range(self.index, total, self.count))
        start = self.index * total // self.count
        stop = (self.index + 1) * total // self.count
        return tuple(range(start, stop))

    def subplan(self, plan: SweepPlan) -> SweepPlan:
        """The owned piece of ``plan``, order preserved."""
        return SweepPlan.from_requests(
            plan[index] for index in self.plan_indices(len(plan))
        )

    def fingerprint(
        self,
        plan_fingerprint_value: str,
        schema_version: int = STORE_SCHEMA_VERSION,
    ) -> str:
        """Shard identity: the plan fingerprint tagged with this piece.

        Two shards of the same plan differ, the same ``index/count`` of two
        different plans differ, and the two strategies never collide — so a
        shard id names one piece of one plan, fleet-wide.
        """
        return tagged_fingerprint(
            _SHARD_FINGERPRINT_TAG.format(version=schema_version),
            f"{plan_fingerprint_value}\n{self.index}/{self.count}\n"
            f"{self.strategy}",
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "count": self.count,
            "strategy": self.strategy,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ShardSpec":
        """Inverse of :meth:`to_dict` (validation re-runs in ``__init__``)."""
        return cls(
            index=int(data["index"]),
            count=int(data["count"]),
            strategy=str(data.get("strategy", "contiguous")),
        )


def shard_specs(count: int, strategy: str = "contiguous") -> Tuple[ShardSpec, ...]:
    """The full partition: every :class:`ShardSpec` of ``index`` 0..count-1."""
    return tuple(ShardSpec(index, count, strategy) for index in range(count))


# ----------------------------------------------------------------------
# Shard files (``sweep plan-split`` <-> ``sweep shard --spec``)
# ----------------------------------------------------------------------
def write_shard_files(
    plan: SweepPlan,
    count: int,
    directory: Union[str, Path],
    strategy: str = "contiguous",
    sim_config: Optional[SimulatorConfig] = None,
) -> List[Path]:
    """Write one self-contained shard file per piece of ``plan``.

    Each file carries the full plan plus its :class:`ShardSpec`, so a
    fleet can distribute the files alone — ``sweep shard --spec FILE``
    needs nothing else.  Returns the written paths in shard order.
    """
    directory = Path(directory)
    fingerprint = plan_fingerprint(plan, sim_config)
    plan_payload = plan.to_dict()
    width = max(2, len(str(count - 1)))
    paths: List[Path] = []
    for spec in shard_specs(count, strategy):
        payload = {
            "schema": SHARD_FILE_SCHEMA,
            "plan_fingerprint": fingerprint,
            "shard": spec.to_dict(),
            "plan": plan_payload,
        }
        path = directory / f"shard-{spec.index:0{width}d}-of-{count}.json"
        atomic_write_json(path, payload, indent=2, sort_keys=True)
        paths.append(path)
    return paths


def load_shard_file(path: Union[str, Path]) -> Tuple[SweepPlan, ShardSpec]:
    """Parse one ``sweep plan-split`` file back into its plan and spec.

    Raises :class:`ValueError` on a foreign schema or when the recorded
    plan fingerprint no longer matches the plan's recomputed one (a file
    from a different store-schema generation must not be executed as if
    its addresses were current).
    """
    path = Path(path)
    payload = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(payload, dict) or payload.get("schema") != SHARD_FILE_SCHEMA:
        found = (
            repr(payload.get("schema"))
            if isinstance(payload, dict)
            else type(payload).__name__
        )
        raise ValueError(
            f"{path} is not a shard file (expected schema "
            f"{SHARD_FILE_SCHEMA!r}, got {found})"
        )
    plan = SweepPlan.from_dict(payload["plan"])
    spec = ShardSpec.from_dict(payload["shard"])
    recorded = payload.get("plan_fingerprint")
    recomputed = plan_fingerprint(plan)
    if recorded != recomputed:
        raise ValueError(
            f"{path} was written for a different plan encoding "
            f"(recorded plan fingerprint {recorded}, recomputed "
            f"{recomputed}); re-run 'sweep plan-split'"
        )
    return plan, spec


# ----------------------------------------------------------------------
# Work-stealing claims
# ----------------------------------------------------------------------
class ClaimDir:
    """File-based point claims shared by every shard of one plan.

    One claim file per unique sweep point (named by its store
    fingerprint), published atomically and *exclusively* — the first
    shard to link its claim into the shared directory owns the point.
    A shard re-encountering its **own** claim (after a crash and resume)
    reclaims it; a foreign claim means some other shard is on it (or
    already finished it), so the point is skipped and the merge step
    collects it from that shard's store.

    Claims are a pure anti-duplication optimization.  Every correctness
    property — completeness and byte-identity of the merged union — holds
    with claims lost, stale, or absent, because the stores themselves are
    content-addressed memos of deterministic evaluations.
    """

    def __init__(self, root: Union[str, Path], owner: str) -> None:
        self.root = Path(root)
        self.owner = owner

    def path_for(self, fingerprint: str) -> Path:
        return self.root / f"{fingerprint}.claim.json"

    def claim(self, fingerprint: str) -> str:
        """Try to claim one point; returns ``"won"``/``"ours"``/``"theirs"``."""
        published = exclusive_write_json(
            self.path_for(fingerprint),
            {
                "schema": CLAIM_SCHEMA,
                "fingerprint": fingerprint,
                "owner": self.owner,
                "created_unix": time.time(),
            },
            indent=2,
        )
        if published:
            return "won"
        return "ours" if self.owner_of(fingerprint) == self.owner else "theirs"

    def owner_of(self, fingerprint: str) -> Optional[str]:
        """The recorded owner of a claim, or ``None`` (unclaimed/unreadable)."""
        try:
            payload = json.loads(
                self.path_for(fingerprint).read_text(encoding="utf-8")
            )
        except FileNotFoundError:
            return None
        except (OSError, ValueError, UnicodeDecodeError) as error:
            # An unreadable claim file still marks the point as taken —
            # treating it as unclaimed could duplicate work, never lose it.
            warnings.warn(
                f"claim dir: unreadable claim for {fingerprint} ({error}); "
                f"treating the point as claimed by another shard",
                ResultStoreWarning,
                stacklevel=2,
            )
            return ""
        owner = payload.get("owner") if isinstance(payload, dict) else None
        return owner if isinstance(owner, str) else ""

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.claim.json"))


# ----------------------------------------------------------------------
# Shard execution
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardProgress:
    """One resolved point of a running shard (see :func:`run_shard`).

    ``phase`` is ``"own"`` for points of the shard's partition and
    ``"stolen"`` for foreign points won through the claim directory;
    ``source`` is the underlying executor's ``"store"``/``"evaluated"``.
    ``plan_index`` is the point's first-occurrence position in the *full*
    plan (not the subplan), so streamed events from different shards can
    be correlated against one plan.
    """

    done: int
    phase: str
    source: str
    plan_index: int
    fingerprint: str
    request: EvaluationRequest
    evaluation: FactoryEvaluation


#: Signature of the optional ``progress=`` callback of :func:`run_shard`.
ShardProgressCallback = Callable[[ShardProgress], None]


@dataclass
class ShardRunResult:
    """The outcome of :func:`run_shard` for one shard of one plan.

    ``own`` / ``yielded`` / ``stolen`` are first-occurrence plan positions:
    the partition this shard was assigned, the owned points it skipped
    because another shard already held their claim, and the foreign points
    it won and executed.  ``stats`` folds the executor accounting of every
    run the shard performed (own phase plus each stolen point).
    """

    shard: ShardSpec
    shard_id: str
    plan_fingerprint: str
    plan_entries: int
    unique_points: int
    own: List[int] = field(default_factory=list)
    yielded: List[int] = field(default_factory=list)
    stolen: List[int] = field(default_factory=list)
    stats: ExecutorStats = field(default_factory=ExecutorStats)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "shard": self.shard.to_dict(),
            "shard_id": self.shard_id,
            "plan_fingerprint": self.plan_fingerprint,
            "plan_entries": self.plan_entries,
            "unique_points": self.unique_points,
            "own": list(self.own),
            "yielded": list(self.yielded),
            "stolen": list(self.stolen),
            "stats": self.stats.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ShardRunResult":
        """Inverse of :meth:`to_dict`."""
        return cls(
            shard=ShardSpec.from_dict(data["shard"]),
            shard_id=str(data.get("shard_id", "")),
            plan_fingerprint=str(data.get("plan_fingerprint", "")),
            plan_entries=int(data.get("plan_entries", 0)),
            unique_points=int(data.get("unique_points", 0)),
            own=list(data.get("own", [])),
            yielded=list(data.get("yielded", [])),
            stolen=list(data.get("stolen", [])),
            stats=ExecutorStats.from_dict(data.get("stats", {})),
        )


def _fold_stats(total: ExecutorStats, part: ExecutorStats) -> None:
    """Accumulate one executor run's counters into the shard total."""
    for stats_field in dataclasses.fields(ExecutorStats):
        if stats_field.name == "workers":
            total.workers = max(total.workers, part.workers)
        else:
            setattr(
                total,
                stats_field.name,
                getattr(total, stats_field.name) + getattr(part, stats_field.name),
            )


def run_shard(
    plan: Union[SweepPlan, Iterable[EvaluationRequest]],
    shard: ShardSpec,
    store: Union[ResultStore, str, Path],
    claim_dir: Optional[Union[str, Path]] = None,
    workers: int = 1,
    sim_config: Optional[SimulatorConfig] = None,
    batch: bool = False,
    steal: bool = True,
    progress: Optional[ShardProgressCallback] = None,
) -> ShardRunResult:
    """Execute one shard of ``plan`` against its (usually private) store.

    Always resumable: already-stored points are answered from ``store``
    without dispatching work, so a SIGKILLed shard rerun with the same
    arguments re-executes only what the kill actually lost.  Plan
    positions group into *unique points* by store fingerprint; a point
    belongs to the shard owning its first-occurrence position (duplicates
    elsewhere are pure dedup, whichever shard owns them).

    With a ``claim_dir`` the shard claims each of its own points before
    evaluating (re-encountering its own claim after a crash reclaims it;
    a foreign claim means the point was stolen and is skipped), and after
    finishing its partition it walks the *foreign* points in plan order,
    claiming and executing any still unclaimed — so a fast shard finishes
    a slow shard's tail instead of idling.  Stolen results land in this
    shard's store like any other; the merge-by-union step makes them part
    of the plan's output no matter who computed them.

    Returns a :class:`ShardRunResult`; ``progress`` (if given) fires one
    :class:`ShardProgress` per resolved point, in completion order —
    the hook the ``--stream-output`` JSONL sink writes from.
    """
    if not isinstance(plan, SweepPlan):
        plan = SweepPlan.from_requests(plan)
    resolved_store = as_result_store(store)
    if resolved_store is None:
        raise ValueError("run_shard requires a result store (store=...)")
    fingerprint = plan_fingerprint(plan, sim_config)
    shard_id = shard.fingerprint(fingerprint)
    result = ShardRunResult(
        shard=shard,
        shard_id=shard_id,
        plan_fingerprint=fingerprint,
        plan_entries=len(plan),
        unique_points=0,
        stats=ExecutorStats(workers=workers),
    )

    # Unique points in plan order: (first position, store fingerprint,
    # request).  The store fingerprint is the claim identity, so shards
    # with different in-plan duplicate layouts still agree on point names.
    order: List[Tuple[int, str, EvaluationRequest]] = []
    seen: Dict[str, int] = {}
    for position, request in enumerate(plan):
        point_fp = request_fingerprint(
            request.with_effective_sim_config(sim_config),
            resolved_store.schema_version,
        )
        if point_fp not in seen:
            seen[point_fp] = position
            order.append((position, point_fp, request))
    result.unique_points = len(order)

    owned_positions = frozenset(shard.plan_indices(len(plan)))
    own_points = [p for p in order if p[0] in owned_positions]
    foreign_points = [p for p in order if p[0] not in owned_positions]
    result.own = [position for position, _, _ in own_points]

    claims = (
        ClaimDir(claim_dir, shard_id) if claim_dir is not None else None
    )
    executor = SweepExecutor(
        workers=workers,
        sim_config=sim_config,
        store=resolved_store,
        resume=True,
        batch=batch,
    )

    done = 0

    def _run_points(
        points: List[Tuple[int, str, EvaluationRequest]], phase: str
    ) -> None:
        nonlocal done
        if not points:
            return
        positions = [position for position, _, _ in points]
        fingerprints = [point_fp for _, point_fp, _ in points]

        def relay(event: SweepProgress) -> None:
            nonlocal done
            done += 1
            if progress is not None:
                # The subplan has no duplicates (points are unique), so
                # every event resolves exactly one subplan position.
                local = event.plan_indices[0]
                progress(
                    ShardProgress(
                        done=done,
                        phase=phase,
                        source=event.source,
                        plan_index=positions[local],
                        fingerprint=fingerprints[local],
                        request=event.request,
                        evaluation=event.evaluation,
                    )
                )

        run = executor.run(
            SweepPlan.from_requests(request for _, _, request in points),
            resume=True,
            progress=relay,
        )
        _fold_stats(result.stats, run.stats)

    # Phase 1: the shard's own partition (claim first when stealing is on,
    # so a thief and the owner never both simulate the same point).
    to_run: List[Tuple[int, str, EvaluationRequest]] = []
    for point in own_points:
        if claims is not None and claims.claim(point[1]) == "theirs":
            result.yielded.append(point[0])
            continue
        to_run.append(point)
    _run_points(to_run, "own")

    # Phase 2: steal the unclaimed tail of slower shards, point by point —
    # claiming just before executing keeps a thief from hoarding claims it
    # would then be slow to honour.
    if claims is not None and steal:
        for point in foreign_points:
            if claims.claim(point[1]) == "theirs":
                continue
            _run_points([point], "stolen")
            result.stolen.append(point[0])

    return result
