"""Parallel sweep execution: explicit plans scheduled across worker processes.

The paper's evaluation (Figs. 6-10, Table I) is a large family of
independent (mapper, capacity, levels, reuse) simulation points.  This
module treats such a sweep as an explicit, serializable **plan** rather than
an implicit loop:

* :class:`SweepPlan` — an ordered tuple of
  :class:`~repro.api.pipeline.EvaluationRequest`s, typically expanded from a
  parameter grid with :meth:`SweepPlan.from_grid`;
* :class:`SweepExecutor` — runs a plan either serially (``workers=1``, the
  fallback) or across a :class:`concurrent.futures.ProcessPoolExecutor`,
  with **deterministic result ordering** (results always come back in plan
  order, whatever the completion order) and request-level deduplication
  (identical requests are evaluated once — evaluation is deterministic in
  the request, so duplicates are pure cache hits);
* :class:`SweepRunResult` — the evaluations in plan order plus an
  :class:`ExecutorStats` accounting of wall time and cache behaviour.
  ``to_dict()`` intentionally covers only the deterministic evaluations, so
  serialized results are byte-identical across worker counts.

Below the executor, every worker's :class:`~repro.api.pipeline.Pipeline`
memoizes :class:`~repro.routing.simulator.SimulationResult`s keyed by
(circuit fingerprint, placement, config) — see
:class:`~repro.routing.simulator.SimulationCache` — so repeated sweep
points never re-simulate even across distinct requests.  Above it, an
optional persistent :class:`~repro.api.store.ResultStore` makes sweeps
*resumable across processes*: attach ``store=`` and run with
``resume=True`` and already-stored plan entries are answered from disk
(``stats.store_hits``) while fresh results are persisted the moment they
complete, so a killed sweep restarts where it died with byte-identical
output.

.. code-block:: python

    from repro.api import SweepExecutor, SweepPlan

    plan = SweepPlan.from_grid(
        methods=("force_directed", "graph_partition"),
        capacities=(2, 4, 8, 16),
        levels=(1, 2),
    )
    result = SweepExecutor(workers=4).run(plan)
    for point in result.evaluations:   # plan order, identical to workers=1
        print(point.method, point.capacity, point.volume)
"""

from __future__ import annotations

import dataclasses
import json
import os
import queue
import threading
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..mapping.force_directed import ForceDirectedConfig
from ..mapping.stitching import StitchingConfig
from ..routing.simulator import SimulationCache, SimulatorConfig
from .pipeline import EvaluationRequest, Pipeline, PipelineStats
from .results import FactoryEvaluation
from .store import ResultStore, as_result_store


def _as_tuple(value: Union[Any, Sequence[Any]]) -> Tuple[Any, ...]:
    """Normalize a scalar-or-iterable grid axis to a materialized tuple."""
    if isinstance(value, (str, bytes)):
        return (value,)
    try:
        return tuple(value)
    except TypeError:
        return (value,)


# ----------------------------------------------------------------------
# The plan
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepPlan:
    """An ordered, serializable collection of independent evaluation requests.

    The plan order is the result order — executors must preserve it — so a
    plan fully determines its sweep's output, independent of how (or how
    parallel) it is executed.
    """

    requests: Tuple[EvaluationRequest, ...]

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self):
        return iter(self.requests)

    def __getitem__(self, index: int) -> EvaluationRequest:
        return self.requests[index]

    @classmethod
    def from_requests(cls, requests: Iterable[EvaluationRequest]) -> "SweepPlan":
        """Wrap an iterable of requests, preserving its order."""
        return cls(requests=tuple(requests))

    @classmethod
    def from_grid(
        cls,
        methods: Sequence[str],
        capacities: Sequence[int],
        levels: Union[int, Sequence[int]] = 1,
        reuse: Union[bool, Sequence[bool]] = False,
        seeds: Sequence[int] = (0,),
        fd_config: Optional[ForceDirectedConfig] = None,
        stitch_config: Optional[StitchingConfig] = None,
        sim_config: Optional[SimulatorConfig] = None,
        options: Optional[Mapping[str, Any]] = None,
    ) -> "SweepPlan":
        """Expand a parameter grid into one request per combination.

        Axes nest as (seed, levels, reuse, capacity, method), innermost
        last, so a plain ``from_grid(methods, capacities)`` enumerates in
        the same (capacity-major, method-minor) order as
        :meth:`repro.api.Pipeline.sweep` and tables can be assembled by
        simple grouping.
        """
        # Materialize every axis first: the nested comprehension iterates
        # the inner axes once per outer combination, which would silently
        # truncate the grid for one-shot iterators.
        methods = _as_tuple(methods)
        capacities = _as_tuple(capacities)
        levels_axis = _as_tuple(levels)
        reuse_axis = _as_tuple(reuse)
        seeds_axis = _as_tuple(seeds)
        requests = tuple(
            EvaluationRequest(
                method=method,
                capacity=capacity,
                levels=level,
                reuse=reuse_flag,
                seed=seed,
                fd_config=fd_config,
                stitch_config=stitch_config,
                sim_config=sim_config,
                options=dict(options or {}),
            )
            for seed in seeds_axis
            for level in levels_axis
            for reuse_flag in reuse_axis
            for capacity in capacities
            for method in methods
        )
        return cls(requests=requests)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe encoding of every request, in plan order."""
        return {"requests": [request.to_dict() for request in self.requests]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepPlan":
        """Inverse of :meth:`to_dict`."""
        return cls(
            requests=tuple(
                EvaluationRequest.from_dict(item)
                for item in data.get("requests", [])
            )
        )


# ----------------------------------------------------------------------
# Results and accounting
# ----------------------------------------------------------------------
@dataclass
class ExecutorStats:
    """Exact accounting of one executor run.

    ``duplicate_hits`` counts plan entries answered by request-level
    deduplication (identical request seen earlier in the plan);
    ``sim_cache_hits`` counts simulations answered from the per-worker
    :class:`~repro.routing.simulator.SimulationCache`; ``factory_builds`` /
    ``factory_cache_hits`` count factory-circuit construction.
    ``sim_stall_events`` (legacy retry count) / ``sim_distinct_stalls`` /
    ``sim_wakeups`` aggregate the simulator's stall counters over every
    evaluation — see :class:`~repro.routing.simulator.SimulationResult` for
    their semantics.  ``store_hits`` counts plan entries answered from the
    persistent :class:`~repro.api.store.ResultStore` during a resumed run
    (unique requests only — a duplicate of a stored request still counts as
    a ``duplicate_hit``).  The invariant
    ``requests == duplicate_hits + store_hits + evaluations`` always holds.
    """

    requests: int = 0
    evaluations: int = 0
    duplicate_hits: int = 0
    store_hits: int = 0
    factory_builds: int = 0
    factory_cache_hits: int = 0
    sim_cache_hits: int = 0
    fd_sweeps: int = 0
    fd_moves_accepted: int = 0
    sim_stall_events: int = 0
    sim_distinct_stalls: int = 0
    sim_wakeups: int = 0
    build_seconds: float = 0.0
    map_seconds: float = 0.0
    sim_seconds: float = 0.0
    workers: int = 1
    wall_seconds: float = 0.0

    def add_pipeline_delta(self, delta: PipelineStats) -> None:
        """Fold one evaluation's pipeline counter delta into this record."""
        self.evaluations += delta.evaluations
        self.factory_builds += delta.factory_builds
        self.factory_cache_hits += delta.cache_hits
        self.sim_cache_hits += delta.sim_cache_hits
        self.store_hits += delta.store_hits
        self.fd_sweeps += delta.fd_sweeps
        self.fd_moves_accepted += delta.fd_moves_accepted
        self.sim_stall_events += delta.sim_stall_events
        self.sim_distinct_stalls += delta.sim_distinct_stalls
        self.sim_wakeups += delta.sim_wakeups
        self.build_seconds += delta.build_seconds
        self.map_seconds += delta.map_seconds
        self.sim_seconds += delta.sim_seconds

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict of every counter."""
        return {
            "requests": self.requests,
            "evaluations": self.evaluations,
            "duplicate_hits": self.duplicate_hits,
            "store_hits": self.store_hits,
            "factory_builds": self.factory_builds,
            "factory_cache_hits": self.factory_cache_hits,
            "sim_cache_hits": self.sim_cache_hits,
            "fd_sweeps": self.fd_sweeps,
            "fd_moves_accepted": self.fd_moves_accepted,
            "sim_stall_events": self.sim_stall_events,
            "sim_distinct_stalls": self.sim_distinct_stalls,
            "sim_wakeups": self.sim_wakeups,
            "build_seconds": self.build_seconds,
            "map_seconds": self.map_seconds,
            "sim_seconds": self.sim_seconds,
            "workers": self.workers,
            "wall_seconds": self.wall_seconds,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExecutorStats":
        """Inverse of :meth:`to_dict`; absent counters default to zero."""
        stats = cls()
        for counter_field in dataclasses.fields(cls):
            if counter_field.name in data:
                setattr(stats, counter_field.name, data[counter_field.name])
        return stats


@dataclass(frozen=True)
class SweepProgress:
    """One progress event of a running sweep (see ``SweepExecutor.run``).

    Fired once per *unique* request the moment it resolves — from the store
    on a resumed run (``source == "store"``) or from a completed evaluation
    (``source == "evaluated"``).  ``plan_indices`` are the plan positions
    this event resolves (the first occurrence plus every duplicate, which is
    why ``done``/``total`` count plan entries, not unique requests).
    ``done`` is cumulative and reaches ``total`` exactly when the run
    completes without errors.
    """

    done: int
    total: int
    source: str
    plan_indices: Tuple[int, ...]
    request: EvaluationRequest
    evaluation: FactoryEvaluation


#: Signature of the optional ``progress=`` callback of ``SweepExecutor.run``.
ProgressCallback = Callable[[SweepProgress], None]


@dataclass
class SweepRunResult:
    """The outcome of executing one :class:`SweepPlan`.

    ``evaluations`` is in plan order.  ``stats`` describes *how* the run
    went (wall time, worker count, cache hits) and is deliberately excluded
    from :meth:`to_dict`: the serialized result of a plan is byte-identical
    whether it ran on one worker or many.
    """

    evaluations: List[FactoryEvaluation]
    stats: ExecutorStats = field(default_factory=ExecutorStats)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe encoding of the (deterministic) evaluations only."""
        return {
            "evaluations": [evaluation.to_dict() for evaluation in self.evaluations]
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepRunResult":
        """Inverse of :meth:`to_dict` (stats are not round-tripped)."""
        return cls(
            evaluations=[
                FactoryEvaluation.from_dict(item)
                for item in data.get("evaluations", [])
            ]
        )


# ----------------------------------------------------------------------
# Worker-process plumbing
# ----------------------------------------------------------------------
# Each worker process holds one long-lived pipeline so the factory and
# simulation caches amortize across every request the worker receives.
_WORKER_PIPELINE: Optional[Pipeline] = None
_WORKER_ARGS: Tuple = (None, 8, 512)


def _worker_init(
    sim_config: Optional[SimulatorConfig], cache_size: int, sim_cache_size: int
) -> None:
    """Process-pool initializer: remember the pipeline configuration."""
    global _WORKER_ARGS, _WORKER_PIPELINE
    _WORKER_ARGS = (sim_config, cache_size, sim_cache_size)
    _WORKER_PIPELINE = None


def _worker_pipeline() -> Pipeline:
    """The worker's lazily created process-wide pipeline."""
    global _WORKER_PIPELINE
    if _WORKER_PIPELINE is None:
        sim_config, cache_size, sim_cache_size = _WORKER_ARGS
        _WORKER_PIPELINE = Pipeline(
            sim_config=sim_config,
            cache_size=cache_size,
            sim_cache=SimulationCache(max_entries=sim_cache_size),
        )
    return _WORKER_PIPELINE


def _worker_evaluate(
    request: EvaluationRequest,
) -> Tuple[FactoryEvaluation, PipelineStats, float]:
    """Evaluate one request in a worker; returns point, stat delta, wall time."""
    pipeline = _worker_pipeline()
    before = pipeline.stats.snapshot()
    started = time.perf_counter()
    evaluation = pipeline.evaluate(request)
    return evaluation, pipeline.stats.delta(before), time.perf_counter() - started


def _request_key(request: EvaluationRequest) -> str:
    """Canonical dedup key: requests with equal keys evaluate identically."""
    return json.dumps(request.to_dict(), sort_keys=True)


# ----------------------------------------------------------------------
# The executor
# ----------------------------------------------------------------------
class SweepExecutor:
    """Schedules a :class:`SweepPlan` serially or across worker processes.

    Parameters
    ----------
    workers:
        Number of worker processes.  ``1`` (the default) runs everything
        serially in this process on a private long-lived pipeline — no
        subprocess, no pickling.  Values above 1 use a
        :class:`~concurrent.futures.ProcessPoolExecutor`; results and their
        order are identical to the serial run (evaluation is deterministic
        in the request and results are reassembled in plan order).
    sim_config:
        Default simulator configuration for every evaluation (a request's
        own ``sim_config`` takes precedence), forwarded to each worker.
    cache_size / sim_cache_size:
        Per-worker factory-cache and simulation-cache bounds.
    store:
        Optional persistent :class:`~repro.api.store.ResultStore` (or a
        path, wrapped automatically).  When attached, every completed
        evaluation is persisted **as soon as it finishes** — in completion
        order, not plan order — so a killed sweep keeps everything it
        already computed.  Reads happen only on a *resumed* run (see
        ``resume``): plan entries already in the store are answered without
        dispatching any work, counted exactly in ``stats.store_hits``.
    resume:
        Default for :meth:`run`'s ``resume`` flag.  ``resume=True`` requires
        a store and makes the run skip already-stored requests; the output
        is byte-identical to an uninterrupted run either way, because
        evaluation is deterministic in the request.
    batch:
        ``True`` routes the pending requests through the serial pipeline's
        batched evaluation path (:meth:`Pipeline.evaluate_batch`): store
        and simulation-cache probes still happen per request, and only the
        cache-missing simulations are grouped into one
        :func:`~repro.routing.batchsim.simulate_batch` call.  The batch
        *is* the parallelism, so this mode runs in-process and takes
        precedence over ``workers > 1``.  Results are byte-identical to the
        unbatched run in every mode combination.

    Notes
    -----
    Worker processes cache independently, so cross-request cache hits
    depend on which worker a request lands on; request-level deduplication
    happens in the parent and is scheduling-independent.  Use
    :func:`take_last_run_stats` (or ``run(...).stats``) for the exact
    accounting of a run.

    Mappers are resolved by name *inside* each worker.  On platforms whose
    process start method is ``fork`` (Linux, the default) workers inherit
    every mapper registered in the parent; under ``spawn`` (Windows,
    macOS defaults) a third-party mapper must be registered at import time
    of its module — e.g. via a registration decorator at module top level —
    so the re-imported worker sees it.
    """

    def __init__(
        self,
        workers: int = 1,
        sim_config: Optional[SimulatorConfig] = None,
        cache_size: int = 8,
        sim_cache_size: int = 512,
        store: Optional[Union[ResultStore, str, Path]] = None,
        resume: bool = False,
        batch: bool = False,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.batch = batch
        self.sim_config = sim_config
        self.cache_size = cache_size
        self.sim_cache_size = sim_cache_size
        self.store = as_result_store(store)
        if resume and self.store is None:
            raise ValueError("resume=True requires a result store (store=...)")
        self.resume = resume
        self._pipeline: Optional[Pipeline] = None

    # ------------------------------------------------------------------
    # Serial fallback pipeline
    # ------------------------------------------------------------------
    def pipeline(self) -> Pipeline:
        """The executor's own serial pipeline (persists across runs)."""
        if self._pipeline is None:
            self._pipeline = Pipeline(
                sim_config=self.sim_config,
                cache_size=self.cache_size,
                sim_cache=SimulationCache(max_entries=self.sim_cache_size),
            )
        return self._pipeline

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        plan: Union[SweepPlan, Iterable[EvaluationRequest]],
        resume: Optional[bool] = None,
        progress: Optional[ProgressCallback] = None,
    ) -> SweepRunResult:
        """Execute every request of ``plan``; results come back in plan order.

        Identical requests are evaluated once (the first occurrence) and
        fanned out to every duplicate position — a pure optimization, since
        evaluation is deterministic in the request.  With a store attached
        and ``resume=True`` (per call, or the executor default), requests
        already persisted are answered from the store without dispatching
        any work — which is how a killed sweep restarts where it died — and
        every freshly computed result is persisted the moment it completes.
        The assembled output is byte-identical with or without the store.

        ``progress`` is called with one :class:`SweepProgress` per unique
        request the moment it resolves (after any store persistence), in
        completion order — the hook long-running drivers (the sweep service
        job queue) use to report completed/total counts and partial results
        while the run is still going.  Exceptions from the callback
        propagate and abort the run.
        """
        if not isinstance(plan, SweepPlan):
            plan = SweepPlan.from_requests(plan)
        resume = self.resume if resume is None else resume
        if resume and self.store is None:
            raise ValueError("resume=True requires a result store (store=...)")
        started = time.perf_counter()
        stats = ExecutorStats(requests=len(plan), workers=self.workers)

        # Deduplicate while preserving first-occurrence order.
        unique: List[EvaluationRequest] = []
        slot_of_key: Dict[str, int] = {}
        slots: List[int] = []
        for request in plan:
            key = _request_key(request)
            slot = slot_of_key.get(key)
            if slot is None:
                slot = len(unique)
                slot_of_key[key] = slot
                unique.append(request)
            else:
                stats.duplicate_hits += 1
            slots.append(slot)

        # Progress accounting is over plan entries: resolving a unique slot
        # resolves its first occurrence plus every duplicate at once.
        indices_of_slot: List[List[int]] = [[] for _ in unique]
        for position, slot in enumerate(slots):
            indices_of_slot[slot].append(position)
        done_entries = 0

        def report(slot: int, source: str, evaluation: FactoryEvaluation) -> None:
            nonlocal done_entries
            done_entries += len(indices_of_slot[slot])
            if progress is not None:
                progress(
                    SweepProgress(
                        done=done_entries,
                        total=len(slots),
                        source=source,
                        plan_indices=tuple(indices_of_slot[slot]),
                        request=unique[slot],
                        evaluation=evaluation,
                    )
                )

        # On a resumed run, answer already-stored requests before scheduling
        # anything: a 10k-point sweep killed at 9k re-executes only 1k.
        unique_results: List[Optional[FactoryEvaluation]] = [None] * len(unique)
        pending = list(range(len(unique)))
        if resume and self.store is not None:
            still_pending: List[int] = []
            for index in pending:
                stored = self.store.get(self._storage_request(unique[index]))
                if stored is not None:
                    unique_results[index] = stored
                    stats.store_hits += 1
                    report(index, "store", stored)
                else:
                    still_pending.append(index)
            pending = still_pending

        if pending:
            if self.batch:
                self._run_batched(unique, unique_results, pending, stats, report)
            elif self.workers == 1 or len(pending) <= 1:
                self._run_serial(unique, unique_results, pending, stats, report)
            else:
                self._run_parallel(unique, unique_results, pending, stats, report)

        evaluations = [unique_results[slot] for slot in slots]
        stats.wall_seconds = time.perf_counter() - started
        result = SweepRunResult(evaluations=evaluations, stats=stats)
        global _LAST_RUN_STATS
        _LAST_RUN_STATS = stats
        return result

    def stream(
        self,
        plan: Union[SweepPlan, Iterable[EvaluationRequest]],
        resume: Optional[bool] = None,
    ) -> Iterator[SweepProgress]:
        """Execute ``plan``, yielding each :class:`SweepProgress` as it lands.

        The streaming twin of :meth:`run`: instead of reassembling the
        whole result at the end, events are handed to the consumer in
        completion order the moment each unique request resolves (store
        hits first on a resumed run, then evaluations as workers finish).
        This is the primitive behind the CLI's ``--stream-output`` JSONL
        sink and the job layer's live progress — a fleet coordinator can
        watch points land without waiting for (or buffering) the full
        sweep.

        The run itself executes on a background thread through the normal
        :meth:`run` machinery, so every mode (serial, ``workers > 1``,
        ``batch=True``) and every guarantee (dedup, resume, immediate
        persistence) is identical to the blocking call; the assembled
        result's stats remain available through :func:`take_last_run_stats`
        after the iterator is exhausted.  Closing the generator early
        aborts the run at the next completion event (work already finished
        stays persisted, exactly like a killed resumable sweep); an
        evaluation error surfaces by raising from the iterator after the
        events that preceded it have been delivered.
        """
        events: "queue.Queue[Optional[SweepProgress]]" = queue.Queue()
        abort = threading.Event()
        failure: List[BaseException] = []

        class _StreamClosed(Exception):
            """Raised inside the worker when the consumer went away."""

        def relay(event: SweepProgress) -> None:
            if abort.is_set():
                raise _StreamClosed()
            events.put(event)

        def worker() -> None:
            try:
                self.run(plan, resume=resume, progress=relay)
            except _StreamClosed:
                pass
            except BaseException as error:  # noqa: BLE001 - re-raised in consumer
                failure.append(error)
            finally:
                events.put(None)

        thread = threading.Thread(
            target=worker, name="sweep-stream", daemon=True
        )
        thread.start()
        try:
            while True:
                event = events.get()
                if event is None:
                    break
                yield event
        finally:
            abort.set()
            thread.join()
        if failure:
            raise failure[0]

    def _storage_request(self, request: EvaluationRequest) -> EvaluationRequest:
        """The store identity of a request under this executor's defaults."""
        return request.with_effective_sim_config(self.sim_config)

    def _run_serial(
        self,
        unique: Sequence[EvaluationRequest],
        unique_results: List[Optional[FactoryEvaluation]],
        pending: Sequence[int],
        stats: ExecutorStats,
        report: Callable[[int, str, FactoryEvaluation], None],
    ) -> None:
        pipeline = self.pipeline()
        for index in pending:
            before = pipeline.stats.snapshot()
            tick = time.perf_counter()
            evaluation = pipeline.evaluate(unique[index])
            wall = time.perf_counter() - tick
            unique_results[index] = evaluation
            stats.add_pipeline_delta(pipeline.stats.delta(before))
            # Persist immediately: if the process dies on a later request,
            # everything up to here survives for a resumed run.
            if self.store is not None:
                self.store.try_put(
                    self._storage_request(unique[index]), evaluation, wall_seconds=wall
                )
            report(index, "evaluated", evaluation)

    def _run_batched(
        self,
        unique: Sequence[EvaluationRequest],
        unique_results: List[Optional[FactoryEvaluation]],
        pending: Sequence[int],
        stats: ExecutorStats,
        report: Callable[[int, str, FactoryEvaluation], None],
    ) -> None:
        """The batching mode: one grouped pass over every pending request.

        Store and simulation-cache probes still happen per request inside
        :meth:`~repro.api.pipeline.Pipeline.evaluate_batch`; only the
        cache-missing simulations are batched.  Results land in the same
        unique slots as the serial runner, so the assembled output is
        byte-identical.  Persistence happens after the batch completes (the
        batch is one simulation call), so crash durability is per batch,
        not per request — a resumed run re-executes the interrupted batch's
        misses only, since everything stored beforehand is skipped.
        """
        pipeline = self.pipeline()
        before = pipeline.stats.snapshot()
        tick = time.perf_counter()
        evaluations = pipeline.evaluate_batch([unique[index] for index in pending])
        wall = time.perf_counter() - tick
        stats.add_pipeline_delta(pipeline.stats.delta(before))
        share = wall / len(pending)
        for index, evaluation in zip(pending, evaluations):
            unique_results[index] = evaluation
            if self.store is not None:
                self.store.try_put(
                    self._storage_request(unique[index]),
                    evaluation,
                    wall_seconds=share,
                )
            report(index, "evaluated", evaluation)

    def _run_parallel(
        self,
        unique: Sequence[EvaluationRequest],
        unique_results: List[Optional[FactoryEvaluation]],
        pending: Sequence[int],
        stats: ExecutorStats,
        report: Callable[[int, str, FactoryEvaluation], None],
    ) -> None:
        workers = min(self.workers, len(pending))
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_worker_init,
            initargs=(self.sim_config, self.cache_size, self.sim_cache_size),
        ) as pool:
            futures = {
                pool.submit(_worker_evaluate, unique[index]): index
                for index in pending
            }
            # Collect in completion order so each result is persisted the
            # moment it exists (crash durability); results land in their
            # unique slot, so the assembled output stays deterministic
            # whatever the scheduling.  On a worker failure, keep draining:
            # the pool shutdown runs every submitted request to completion
            # anyway, so persisting the successes before re-raising means a
            # resumed run re-executes only the genuinely failed work.
            first_error: Optional[BaseException] = None
            for future in as_completed(futures):
                index = futures[future]
                try:
                    evaluation, delta, wall = future.result()
                except Exception as error:
                    if first_error is None:
                        first_error = error
                    continue
                unique_results[index] = evaluation
                stats.add_pipeline_delta(delta)
                if self.store is not None:
                    self.store.try_put(
                        self._storage_request(unique[index]),
                        evaluation,
                        wall_seconds=wall,
                    )
                report(index, "evaluated", evaluation)
            if first_error is not None:
                raise first_error


#: Stats of the most recent ``SweepExecutor.run`` in this process — set even
#: when the executor was created internally (e.g. by ``capacity_sweep`` with
#: ``workers > 1``), so the ``repro-msfu bench`` command can report cache
#: behaviour it could not otherwise observe.
_LAST_RUN_STATS: Optional[ExecutorStats] = None


def take_last_run_stats() -> Optional[ExecutorStats]:
    """Pop the stats of the most recent executor run (``None`` if none ran)."""
    global _LAST_RUN_STATS
    stats = _LAST_RUN_STATS
    _LAST_RUN_STATS = None
    return stats


def run_sweep(
    plan: Union[SweepPlan, Iterable[EvaluationRequest]],
    workers: int = 1,
    sim_config: Optional[SimulatorConfig] = None,
    store: Optional[Union[ResultStore, str, Path]] = None,
    resume: bool = False,
    batch: bool = False,
) -> SweepRunResult:
    """One-shot convenience: execute a plan on a fresh :class:`SweepExecutor`."""
    return SweepExecutor(
        workers=workers, sim_config=sim_config, store=store, resume=resume,
        batch=batch,
    ).run(plan)


def recommended_workers() -> int:
    """A sensible default worker count: the machine's CPU count, at least 1."""
    return max(1, os.cpu_count() or 1)
