"""The pluggable mapper protocol and registry.

A *mapper* turns a built factory into a placement of its logical qubits on
the tile grid (optionally with extra routing metadata).  Mappers register
under a name with :func:`register_mapper`; the evaluation pipeline and the
``capacity_sweep`` harness look them up by name, so a third-party mapper
plugs into every sweep, figure and CLI invocation without touching the
analysis layer:

.. code-block:: python

    from repro.api import Mapper, register_mapper

    @register_mapper
    class SpiralMapper(Mapper):
        name = "spiral"

        def place(self, factory, *, seed=0, context=None):
            return my_spiral_placement(factory.circuit)

    capacity_sweep(["linear", "spiral"], capacities=[2, 4])

A mapper returns either a plain :class:`~repro.mapping.placement.Placement`
(evaluated against the factory circuit it was given) or a
:class:`~repro.mapping.stitching.StitchedMapping` when the procedure rewires
the circuit or adds intermediate routing hops (as hierarchical stitching
does).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Union

from ..distillation.block_code import Factory
from ..graphs.interaction import interaction_graph
from ..mapping.force_directed import ForceDirectedConfig, force_directed_refine
from ..mapping.graph_partition import graph_partition_placement
from ..mapping.linear import linear_factory_placement
from ..mapping.placement import Placement
from ..mapping.random_map import random_circuit_placement
from ..mapping.stitching import (
    StitchedMapping,
    StitchingConfig,
    hierarchical_stitching,
)
from .registry import Registry, RegistryError

#: What a mapper may return: a bare placement for the given circuit, or a
#: stitched mapping carrying a (possibly rewired) factory and braid hops.
MappingOutcome = Union[Placement, StitchedMapping]


@dataclass
class MapperContext:
    """Per-evaluation configuration handed to every mapper.

    The typed fields carry the tuning knobs of the built-in procedures;
    ``options`` is a free-form bag for third-party mappers (populated from
    :attr:`repro.api.pipeline.EvaluationRequest.options`).
    """

    fd_config: Optional[ForceDirectedConfig] = None
    stitch_config: Optional[StitchingConfig] = None
    options: Dict[str, Any] = field(default_factory=dict)


class Mapper(abc.ABC):
    """Protocol for a qubit-mapping procedure.

    Subclasses set :attr:`name` and implement :meth:`place`.  Mappers must
    treat the factory as read-only: the pipeline shares one built factory
    across every mapper in a sweep.
    """

    #: Registry name of the procedure (e.g. ``"linear"``).
    name: str = ""

    @abc.abstractmethod
    def place(
        self,
        factory: Factory,
        *,
        seed: int = 0,
        context: Optional[MapperContext] = None,
    ) -> MappingOutcome:
        """Map ``factory``'s qubits onto the grid."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"


class FunctionMapper(Mapper):
    """Adapter registering a plain callable as a mapper.

    The callable receives ``(factory, seed=..., context=...)`` and returns a
    :data:`MappingOutcome`.
    """

    def __init__(self, name: str, fn: Callable[..., MappingOutcome]) -> None:
        self.name = name
        self._fn = fn

    def place(self, factory, *, seed=0, context=None):
        return self._fn(factory, seed=seed, context=context)


#: The global mapper registry.
mapper_registry: Registry[Mapper] = Registry("mapper")


def register_mapper(obj=None, *, name: Optional[str] = None, overwrite: bool = False):
    """Register a mapper class, instance or function (decorator-friendly).

    Accepts a :class:`Mapper` subclass (instantiated with no arguments), a
    ready instance, or a plain function (wrapped in :class:`FunctionMapper`).
    Usable bare (``@register_mapper``) or parameterised
    (``@register_mapper(name="spiral")``).
    """
    if obj is None:
        def decorator(inner):
            return register_mapper(inner, name=name, overwrite=overwrite)
        return decorator

    if isinstance(obj, type) and issubclass(obj, Mapper):
        instance: Mapper = obj()
        resolved = name or instance.name
        if not resolved:
            raise RegistryError(f"mapper class {obj.__name__} has no name")
        instance.name = resolved
        mapper_registry.register(resolved, instance, overwrite=overwrite)
        return obj
    if isinstance(obj, Mapper):
        resolved = name or obj.name
        if not resolved:
            raise RegistryError(f"mapper instance {obj!r} has no name")
        # Register before renaming: a duplicate-name failure must leave the
        # caller's instance untouched.
        mapper_registry.register(resolved, obj, overwrite=overwrite)
        obj.name = resolved
        return obj
    if callable(obj):
        resolved = name or getattr(obj, "__name__", "")
        if not resolved:
            raise RegistryError(f"cannot infer a name for mapper {obj!r}")
        mapper_registry.register(
            resolved, FunctionMapper(resolved, obj), overwrite=overwrite
        )
        return obj
    raise RegistryError(f"cannot register {obj!r} as a mapper")


def get_mapper(name: str) -> Mapper:
    """Look up a registered mapper; the error lists registered names."""
    return mapper_registry.get(name)


def available_mappers() -> List[str]:
    """Names of all registered mappers, in registration order."""
    return mapper_registry.names()


def unregister_mapper(name: str) -> Mapper:
    """Remove a mapper from the registry (useful in tests/plugins)."""
    return mapper_registry.unregister(name)


# ----------------------------------------------------------------------
# Built-in mappers (the five procedures of the paper, in its order)
# ----------------------------------------------------------------------
@register_mapper
class RandomMapper(Mapper):
    """Uniformly random placement (the paper's worst-case baseline)."""

    name = "random"

    def place(self, factory, *, seed=0, context=None):
        return random_circuit_placement(factory.circuit, seed=seed)


@register_mapper
class LinearMapper(Mapper):
    """Hand-optimized linear block layout (Fowler-style baseline)."""

    name = "linear"

    def place(self, factory, *, seed=0, context=None):
        return linear_factory_placement(factory)


@register_mapper
class ForceDirectedMapper(Mapper):
    """Force-directed annealing refinement of the linear layout."""

    name = "force_directed"

    def place(self, factory, *, seed=0, context=None):
        initial = linear_factory_placement(factory)
        graph = interaction_graph(factory.circuit)
        config = (context.fd_config if context else None) or ForceDirectedConfig(
            seed=seed
        )
        return force_directed_refine(graph, initial, config)


@register_mapper
class GraphPartitionMapper(Mapper):
    """Recursive graph-partitioning placement."""

    name = "graph_partition"

    def place(self, factory, *, seed=0, context=None):
        return graph_partition_placement(factory.circuit, seed=seed)


@register_mapper
class HierarchicalStitchingMapper(Mapper):
    """The paper's hierarchical stitching procedure (Section VII).

    Returns a :class:`StitchedMapping`: port reassignment rewires the
    inter-round permutation, so the evaluation must use the stitched
    factory's circuit and hop map rather than the shared base factory.
    """

    name = "hierarchical_stitching"

    def place(self, factory, *, seed=0, context=None):
        config = context.stitch_config if context else None
        return hierarchical_stitching(
            factory.spec,
            reuse_policy=factory.reuse_policy,
            config=config,
            factory=factory,
        )
