"""Pluggable evaluation API: mapper registry, pipeline, experiment registry.

This package is the extension surface of the toolchain.  Third-party code
adds mapping procedures with :func:`register_mapper` and new paper-style
studies with :func:`register_experiment`; everything registered becomes
available to :class:`Pipeline`, :func:`capacity_sweep` and the ``repro-msfu``
command line (including ``--json`` machine-readable output) without touching
the analysis layer.

The core abstractions:

* :class:`Mapper` — a named qubit-mapping procedure
  (``place(factory, *, seed, context)``), looked up by name in a registry;
* :class:`EvaluationRequest` / :class:`Pipeline` — the unified
  build -> map -> simulate run model, caching built factory circuits so a
  sweep over many mappers constructs each configuration exactly once, and
  memoizing simulation results so repeated sweep points never re-simulate;
* :class:`SweepPlan` / :class:`SweepExecutor` — explicit sweep plans
  (parameter grids expanded into independent requests) scheduled serially
  or across worker processes with deterministic result ordering;
* :class:`ResultStore` — the on-disk, content-addressed result store that
  memoizes evaluations *across* processes and machines (keyed by
  :func:`request_fingerprint`), making sweeps resumable (``resume=True``)
  and CI bench comparisons possible;
* :class:`ExperimentSpec` / :class:`ParamSpec` — declarative experiments
  whose typed parameters drive the auto-generated CLI options.
"""

from .executor import (
    ExecutorStats,
    SweepExecutor,
    SweepPlan,
    SweepProgress,
    SweepRunResult,
    recommended_workers,
    run_sweep,
    take_last_run_stats,
)
from .experiments import (
    PARAM_KINDS,
    SEED_PARAM,
    WORKERS_PARAM,
    ExperimentSpec,
    ParamSpec,
    available_experiments,
    experiment_registry,
    get_experiment,
    parse_int_list,
    register_experiment,
    run_experiment,
    unregister_experiment,
)
from .mappers import (
    FunctionMapper,
    Mapper,
    MapperContext,
    MappingOutcome,
    available_mappers,
    get_mapper,
    mapper_registry,
    register_mapper,
    unregister_mapper,
)
from .pipeline import (
    EvaluationRequest,
    Pipeline,
    PipelineStats,
    capacity_sweep,
    default_pipeline,
    evaluate_factory_mapping,
)
from .registry import Registry, RegistryError
from .results import FactoryEvaluation, from_json, to_json
from .sharding import (
    SHARD_STRATEGIES,
    ClaimDir,
    ShardProgress,
    ShardRunResult,
    ShardSpec,
    load_shard_file,
    plan_fingerprint,
    run_shard,
    shard_specs,
    write_shard_files,
)
from .store import (
    STORE_SCHEMA_VERSION,
    GcReport,
    MergeConflictError,
    MergeReport,
    MergeSourceReport,
    ResultStore,
    ResultStoreWarning,
    StoreStatus,
    current_git_sha,
    request_fingerprint,
    store_metadata,
)

__all__ = [
    "ExecutorStats",
    "SweepExecutor",
    "SweepPlan",
    "SweepProgress",
    "SweepRunResult",
    "recommended_workers",
    "run_sweep",
    "take_last_run_stats",
    "PARAM_KINDS",
    "SEED_PARAM",
    "WORKERS_PARAM",
    "ExperimentSpec",
    "ParamSpec",
    "available_experiments",
    "experiment_registry",
    "get_experiment",
    "parse_int_list",
    "register_experiment",
    "run_experiment",
    "unregister_experiment",
    "FunctionMapper",
    "Mapper",
    "MapperContext",
    "MappingOutcome",
    "available_mappers",
    "get_mapper",
    "mapper_registry",
    "register_mapper",
    "unregister_mapper",
    "EvaluationRequest",
    "Pipeline",
    "PipelineStats",
    "capacity_sweep",
    "default_pipeline",
    "evaluate_factory_mapping",
    "Registry",
    "RegistryError",
    "FactoryEvaluation",
    "from_json",
    "to_json",
    "SHARD_STRATEGIES",
    "ClaimDir",
    "ShardProgress",
    "ShardRunResult",
    "ShardSpec",
    "load_shard_file",
    "plan_fingerprint",
    "run_shard",
    "shard_specs",
    "write_shard_files",
    "STORE_SCHEMA_VERSION",
    "GcReport",
    "MergeConflictError",
    "MergeReport",
    "MergeSourceReport",
    "ResultStore",
    "ResultStoreWarning",
    "StoreStatus",
    "current_git_sha",
    "request_fingerprint",
    "store_metadata",
]
