"""Structured evaluation results with JSON round-tripping.

Every result object in the public API implements ``to_dict()`` (returning
JSON-safe primitives only: dicts with string keys, lists, numbers, strings,
booleans, ``None``) and a ``from_dict`` classmethod inverting it.  The
helpers here keep those implementations small:

* :func:`encode_value` — recursive dataclass/enum/tuple/dict encoder;
* :func:`int_keyed` / :func:`str_keyed` — JSON forces string keys, these
  convert capacity-keyed tables back and forth;
* :func:`filter_fields` — drop derived/extra keys before ``cls(**data)`` so
  ``to_dict`` outputs may carry convenience fields without breaking the
  inverse direction;
* :func:`to_json` / :func:`from_json` — thin :mod:`json` wrappers.

:class:`FactoryEvaluation` — the per-configuration data point produced by
the evaluation pipeline — is defined here; :mod:`repro.analysis.sweeps`
re-exports it for backward compatibility.
"""

from __future__ import annotations

import dataclasses
import enum
import json
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Type, TypeVar

R = TypeVar("R")


# ----------------------------------------------------------------------
# Generic encoding helpers
# ----------------------------------------------------------------------
def encode_value(value: Any) -> Any:
    """Recursively convert ``value`` into JSON-safe primitives.

    Dataclasses become dicts, enums their ``value``, tuples lists, and
    mapping keys are stringified (JSON object keys must be strings).
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        if hasattr(value, "to_dict"):
            return value.to_dict()
        return {
            f.name: encode_value(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, Mapping):
        return {str(key): encode_value(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [encode_value(item) for item in value]
    return value


def int_keyed(mapping: Mapping[Any, R]) -> Dict[int, R]:
    """Convert string (JSON) keys back to the integer keys used internally."""
    return {int(key): value for key, value in mapping.items()}


def str_keyed(mapping: Mapping[Any, R]) -> Dict[str, R]:
    """Stringify mapping keys (the encoding inverse of :func:`int_keyed`)."""
    return {str(key): value for key, value in mapping.items()}


def filter_fields(cls: type, data: Mapping[str, Any]) -> Dict[str, Any]:
    """Keep only the keys of ``data`` that are init fields of dataclass ``cls``.

    Lets ``to_dict`` outputs include derived conveniences (e.g. a volume
    ratio) without breaking ``from_dict(cls, to_dict(obj))`` round trips.
    """
    names = {f.name for f in dataclasses.fields(cls) if f.init}
    return {key: value for key, value in data.items() if key in names}


def to_json(result: Any, *, indent: int = 2) -> str:
    """Serialize a result object (anything with ``to_dict``) to JSON text."""
    payload = result.to_dict() if hasattr(result, "to_dict") else encode_value(result)
    return json.dumps(payload, indent=indent)


def from_json(cls: Type[R], text: str) -> R:
    """Parse JSON text produced by :func:`to_json` back into ``cls``."""
    return cls.from_dict(json.loads(text))  # type: ignore[attr-defined]


# ----------------------------------------------------------------------
# The pipeline's per-configuration data point
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FactoryEvaluation:
    """One (method, capacity, levels, reuse) evaluation data point."""

    method: str
    capacity: int
    levels: int
    reuse: bool
    latency: int
    area: int
    volume: int
    critical_latency: int
    critical_area: int
    stall_cycles: int

    @property
    def critical_volume(self) -> int:
        """Lower-bound volume (critical latency times minimum area)."""
        return self.critical_latency * self.critical_area

    @property
    def volume_over_critical(self) -> float:
        """How far above the lower bound this configuration landed."""
        if self.critical_volume == 0:
            return float("inf")
        return self.volume / self.critical_volume

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict of all fields plus the derived volume metrics."""
        data = {f.name: getattr(self, f.name) for f in dataclasses.fields(self)}
        data["critical_volume"] = self.critical_volume
        ratio = self.volume_over_critical
        data["volume_over_critical"] = None if ratio == float("inf") else ratio
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FactoryEvaluation":
        """Inverse of :meth:`to_dict` (derived keys are ignored)."""
        return cls(**filter_fields(cls, data))


def evaluation_series_to_dict(levels: int, evaluations: Any) -> Dict[str, Any]:
    """Encode the common ``(levels, [FactoryEvaluation, ...])`` result shape.

    Shared by the figure results that are plain evaluation sweeps (Fig. 7,
    Fig. 10) so their ``to_dict``/``from_dict`` pairs stay one-liners.
    """
    return {
        "levels": levels,
        "evaluations": [evaluation.to_dict() for evaluation in evaluations],
    }


def evaluation_series_from_dict(data: Mapping[str, Any]):
    """Decode :func:`evaluation_series_to_dict` output to ``(levels, list)``."""
    return (
        int(data["levels"]),
        [FactoryEvaluation.from_dict(e) for e in data.get("evaluations", [])],
    )
