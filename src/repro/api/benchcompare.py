"""Field-by-field comparison of two ``BENCH_*.json`` performance records.

``repro-msfu bench`` emits machine-readable records of the repository's
performance trajectory; this module turns two of them into a regression
verdict that CI can gate on:

* experiments are matched by name; for each match the wall-time ratio
  ``new / old`` is computed and compared against a configurable slowdown
  threshold (with an absolute-growth floor, so a 3x blowup of a 2ms smoke
  case is noise, not a regression), and drifts in the deterministic
  workload fields (``evaluations``, ``sim_cycles``, ``stall_cycles``,
  ``workers``, ``params``) are reported as notes — a row whose workload
  drifted never *gates* on wall time (the comparison is not like-for-like),
  it is annotated instead, and the synthetic ``TOTAL`` row sums only the
  experiments matched in both records with unchanged workloads;
* an experiment present in the old record but **missing from the new one
  gates like a regression**: a vanished benchmark must not silently pass
  the gate that existed to watch it (experiments new to the new record
  never gate);
* record **provenance** (platform, CPU count, Python version, smoke flag —
  the fields ``repro-msfu bench`` stamps into every header) decides whether
  the comparison is *gating* or *advisory*: two records from different
  machines or different sweep scales still get the full diff table, but
  regressions only drive a nonzero exit when the records are comparable
  (or ``strict`` is forced).  The git SHA deliberately does **not** affect
  comparability — new code versus old code on the same machine is exactly
  the comparison the gate exists for.

Exit-code contract of :meth:`BenchComparison.exit_code` (used by
``repro-msfu bench --compare``): ``0`` — no gating regression; ``1`` — at
least one gating regression.  Unreadable records are the CLI's problem and
exit ``2`` there.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

#: Header fields that must match for a wall-time comparison to be gating.
#: ``git_sha`` is intentionally absent: comparing across commits is the point.
PROVENANCE_KEYS: Tuple[str, ...] = ("platform", "cpu_count", "python_version", "smoke")

#: Deterministic per-experiment fields whose drift is worth a note: they
#: describe the workload, so a change means the timing comparison is not
#: like-for-like (different code semantics or different parameters).
WORKLOAD_KEYS: Tuple[str, ...] = (
    "evaluations",
    "sim_cycles",
    "stall_cycles",
    "workers",
)


class BenchRecordError(ValueError):
    """A bench record file is missing, unparsable, or not a bench record."""


def load_bench_record(path: str) -> Dict[str, Any]:
    """Load one ``BENCH_*.json`` record, validating the basic shape."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            record = json.load(handle)
    except OSError as error:
        raise BenchRecordError(f"cannot read bench record {path}: {error}") from error
    except ValueError as error:
        raise BenchRecordError(f"{path} is not valid JSON: {error}") from error
    if not isinstance(record, dict) or not isinstance(record.get("experiments"), list):
        raise BenchRecordError(
            f"{path} is not a repro-msfu bench record (no 'experiments' list)"
        )
    return record


def record_python_version(record: Mapping[str, Any]) -> Optional[str]:
    """Python version of a record, tolerating the pre-provenance key name."""
    return record.get("python_version") or record.get("python")


def _provenance(record: Mapping[str, Any]) -> Dict[str, Any]:
    values = {key: record.get(key) for key in PROVENANCE_KEYS}
    values["python_version"] = record_python_version(record)
    return values


@dataclass
class ExperimentDelta:
    """The comparison of one experiment present in either record."""

    experiment: str
    old_wall: Optional[float]
    new_wall: Optional[float]
    ratio: Optional[float]
    regression: bool
    missing: bool = False
    drifted: bool = False
    notes: List[str] = field(default_factory=list)

    @property
    def status(self) -> str:
        if self.old_wall is None:
            return "new"
        if self.missing:
            return "MISSING"
        if self.regression:
            return "REGRESSION"
        return "ok"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "experiment": self.experiment,
            "old_wall_seconds": self.old_wall,
            "new_wall_seconds": self.new_wall,
            "ratio": self.ratio,
            "status": self.status,
            "missing": self.missing,
            "drifted": self.drifted,
            "notes": list(self.notes),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentDelta":
        """Inverse of :meth:`to_dict`.

        ``regression`` is recovered from the serialized ``status`` verdict
        (``to_dict`` emits the derived status, not the raw flag).
        """
        return cls(
            experiment=data["experiment"],
            old_wall=data.get("old_wall_seconds"),
            new_wall=data.get("new_wall_seconds"),
            ratio=data.get("ratio"),
            regression=data.get("status") == "REGRESSION",
            missing=bool(data.get("missing", False)),
            drifted=bool(data.get("drifted", False)),
            notes=list(data.get("notes", [])),
        )


@dataclass
class BenchComparison:
    """The full old-vs-new verdict, renderable as a table or JSON."""

    old_meta: Dict[str, Any]
    new_meta: Dict[str, Any]
    comparable: bool
    advisory_reasons: List[str]
    max_slowdown: float
    deltas: List[ExperimentDelta]

    @property
    def regressions(self) -> List[ExperimentDelta]:
        """Regressed *experiment* rows (the synthetic TOTAL row excluded).

        TOTAL breaching alongside a regressed experiment is the same event,
        not a second regression — it is tracked via :attr:`total_regressed`
        so counts never inflate.
        """
        return [
            delta
            for delta in self.deltas
            if delta.regression and delta.experiment != "TOTAL"
        ]

    @property
    def total_regressed(self) -> bool:
        """Whether the aggregate TOTAL row breached the threshold.

        Gates on its own too: per-experiment creep can stay under the ratio
        individually while the run as a whole regresses.
        """
        return any(
            delta.regression for delta in self.deltas if delta.experiment == "TOTAL"
        )

    @property
    def missing(self) -> List[ExperimentDelta]:
        """Experiments in the old record that the new record lost."""
        return [delta for delta in self.deltas if delta.missing]

    def exit_code(self, strict: bool = False) -> int:
        """``1`` when regressions or lost experiments should gate, else ``0``.

        Cross-machine / cross-scale comparisons are advisory: the diff is
        reported but does not fail unless ``strict`` forces it.
        """
        problems = self.regressions or self.total_regressed or self.missing
        if problems and (self.comparable or strict):
            return 1
        return 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "old": self.old_meta,
            "new": self.new_meta,
            "comparable": self.comparable,
            "advisory_reasons": list(self.advisory_reasons),
            "max_slowdown": self.max_slowdown,
            "experiments": [delta.to_dict() for delta in self.deltas],
            "regressions": len(self.regressions),
            "total_regressed": self.total_regressed,
            "missing": len(self.missing),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BenchComparison":
        """Inverse of :meth:`to_dict` (derived counts are recomputed)."""
        return cls(
            old_meta=dict(data.get("old", {})),
            new_meta=dict(data.get("new", {})),
            comparable=bool(data.get("comparable", False)),
            advisory_reasons=list(data.get("advisory_reasons", [])),
            max_slowdown=float(data.get("max_slowdown", 0.0)),
            deltas=[
                ExperimentDelta.from_dict(item)
                for item in data.get("experiments", [])
            ],
        )

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def format_table(self, strict: bool = False) -> str:
        """The human-readable diff table printed in CI job logs.

        ``strict`` must match what :meth:`exit_code` will be called with,
        so the printed verdict ("advisory" or not) agrees with the exit
        code the caller is about to return.
        """

        def _meta_line(label: str, meta: Mapping[str, Any]) -> str:
            sha = meta.get("git_sha")
            return (
                f"  {label}: created {meta.get('created_utc') or '?'}, "
                f"python {meta.get('python_version') or '?'}, "
                f"{meta.get('cpu_count') or '?'} cpu, "
                f"smoke={meta.get('smoke')}, "
                f"git={sha[:12] if isinstance(sha, str) else '?'}\n"
                f"       {meta.get('platform') or '?'}"
            )

        lines = ["bench compare (wall-time gate: new/old > "
                 f"{self.max_slowdown:g}x fails)"]
        lines.append(_meta_line("old", self.old_meta))
        lines.append(_meta_line("new", self.new_meta))
        if not self.comparable:
            suffix = (
                "regressions gate anyway (--strict)"
                if strict
                else "regressions reported but not gating"
            )
            lines.append(
                "  ADVISORY: records are not directly comparable ("
                + "; ".join(self.advisory_reasons)
                + ") — "
                + suffix
            )
        lines.append("")
        header = (
            f"  {'experiment':<20} {'old(s)':>10} {'new(s)':>10} "
            f"{'ratio':>8}  {'status':<10} notes"
        )
        lines.append(header)
        lines.append("  " + "-" * (len(header) - 2))
        for delta in self.deltas:
            old_text = f"{delta.old_wall:.3f}" if delta.old_wall is not None else "-"
            new_text = f"{delta.new_wall:.3f}" if delta.new_wall is not None else "-"
            ratio_text = f"{delta.ratio:.2f}x" if delta.ratio is not None else "-"
            lines.append(
                f"  {delta.experiment:<20} {old_text:>10} {new_text:>10} "
                f"{ratio_text:>8}  {delta.status:<10} {'; '.join(delta.notes)}"
            )
        problems = []
        if self.regressions:
            problems.append(
                f"{len(self.regressions)} regression(s) beyond "
                f"{self.max_slowdown:g}x"
            )
        if self.total_regressed and not self.regressions:
            problems.append(
                f"total wall time regressed beyond {self.max_slowdown:g}x"
            )
        if self.missing:
            problems.append(
                f"{len(self.missing)} experiment(s) missing from the new record"
            )
        if problems:
            advisory = not (self.comparable or strict)
            verdict = "  " + " and ".join(problems) + (
                " (advisory)" if advisory else ""
            )
        else:
            verdict = "  no regressions beyond the threshold"
        lines.append("")
        lines.append(verdict)
        return "\n".join(lines)


def _experiment_map(record: Mapping[str, Any]) -> Dict[str, Mapping[str, Any]]:
    ordered: Dict[str, Mapping[str, Any]] = {}
    for entry in record.get("experiments", []):
        if isinstance(entry, Mapping) and isinstance(entry.get("experiment"), str):
            # First occurrence wins; duplicate names would make the
            # comparison ambiguous, and bench never emits them.
            ordered.setdefault(entry["experiment"], entry)
    return ordered


def _wall(entry: Optional[Mapping[str, Any]]) -> Optional[float]:
    if entry is None:
        return None
    value = entry.get("wall_seconds")
    return float(value) if isinstance(value, (int, float)) else None


def _workload_notes(
    old_entry: Mapping[str, Any], new_entry: Mapping[str, Any]
) -> List[str]:
    notes = []
    for key in WORKLOAD_KEYS:
        old_value, new_value = old_entry.get(key), new_entry.get(key)
        if old_value != new_value:
            notes.append(f"{key} {old_value} -> {new_value}")
    if old_entry.get("params") != new_entry.get("params"):
        notes.append(
            f"params differ ({old_entry.get('params')} -> {new_entry.get('params')})"
        )
    return notes




def _wall_regression(
    old_wall: Optional[float],
    new_wall: Optional[float],
    ratio: Optional[float],
    max_slowdown: float,
    min_slowdown_seconds: float,
) -> bool:
    """Whether a wall-time pair is a gating slowdown.

    A ratio breach only gates when the absolute growth also exceeds
    ``min_slowdown_seconds`` — a 3x blowup of a 2ms smoke case is timing
    noise.  An old wall time of exactly 0 (rounded away) has no ratio;
    there, absolute growth beyond the floor gates on its own.
    """
    if old_wall is None or new_wall is None:
        return False
    grew = (new_wall - old_wall) > min_slowdown_seconds
    if ratio is not None:
        return ratio > max_slowdown and grew
    return grew  # old_wall == 0: any real growth is an infinite-ratio slowdown


def compare_bench_records(
    old: Mapping[str, Any],
    new: Mapping[str, Any],
    max_slowdown: float = 1.5,
    min_slowdown_seconds: float = 0.05,
) -> BenchComparison:
    """Diff two bench records into a :class:`BenchComparison`.

    ``max_slowdown`` is the gating wall-time ratio: an experiment whose
    ``new/old`` wall time exceeds it — by more than ``min_slowdown_seconds``
    of absolute growth — is a regression.  The total wall time is compared
    as a synthetic ``TOTAL`` row under the same thresholds.
    """
    if max_slowdown <= 0:
        raise ValueError(f"max_slowdown must be > 0, got {max_slowdown}")
    if min_slowdown_seconds < 0:
        raise ValueError(
            f"min_slowdown_seconds must be >= 0, got {min_slowdown_seconds}"
        )
    old_provenance = _provenance(old)
    new_provenance = _provenance(new)
    advisory: List[str] = []
    for key in ("platform", "cpu_count", "smoke"):
        if old_provenance.get(key) != new_provenance.get(key):
            advisory.append(
                f"{key} differs ({old_provenance.get(key)!r} vs "
                f"{new_provenance.get(key)!r})"
            )
    if old_provenance["python_version"] != new_provenance["python_version"]:
        advisory.append(
            f"python differs ({old_provenance['python_version']!r} vs "
            f"{new_provenance['python_version']!r})"
        )

    old_entries = _experiment_map(old)
    new_entries = _experiment_map(new)
    deltas: List[ExperimentDelta] = []
    names = list(old_entries)
    names.extend(name for name in new_entries if name not in old_entries)
    for name in names:
        old_entry = old_entries.get(name)
        new_entry = new_entries.get(name)
        old_wall = _wall(old_entry)
        new_wall = _wall(new_entry)
        ratio = (
            new_wall / old_wall
            if old_wall is not None and new_wall is not None and old_wall > 0
            else None
        )
        notes: List[str] = []
        missing = False
        drifted = False
        if old_entry is None:
            notes.append("not in old record")
        elif new_entry is None or new_wall is None:
            # A benchmark the gate was watching vanished (or lost its wall
            # time) — that must gate, not silently pass.
            missing = True
            notes.append("not in new record" if new_entry is None else "no wall time")
        else:
            notes.extend(_workload_notes(old_entry, new_entry))
            drifted = bool(notes)
        gating = _wall_regression(
            old_wall, new_wall, ratio, max_slowdown, min_slowdown_seconds
        )
        if gating and drifted:
            # The recorded workload changed (workers, params, simulated
            # cycles), so the timing comparison is not like-for-like:
            # annotate instead of gating.
            gating = False
            notes.append("wall gating skipped: workload drifted")
        deltas.append(
            ExperimentDelta(
                experiment=name,
                old_wall=old_wall,
                new_wall=new_wall,
                ratio=ratio,
                regression=gating,
                missing=missing,
                drifted=drifted,
                notes=notes,
            )
        )

    # The TOTAL row sums only experiments present in both records with an
    # unchanged workload: adding a benchmark to the suite (or changing one's
    # parameters) must not read as a wall-time regression of the whole run.
    matched = [
        delta
        for delta in deltas
        if delta.old_wall is not None
        and delta.new_wall is not None
        and not delta.drifted
    ]
    if matched:
        total_old = sum(delta.old_wall for delta in matched)
        total_new = sum(delta.new_wall for delta in matched)
        total_ratio = total_new / total_old if total_old > 0 else None
        total_notes = (
            ["comparable experiments only"] if len(matched) != len(deltas) else []
        )
        deltas.append(
            ExperimentDelta(
                experiment="TOTAL",
                old_wall=total_old,
                new_wall=total_new,
                ratio=total_ratio,
                regression=_wall_regression(
                    total_old,
                    total_new,
                    total_ratio,
                    max_slowdown,
                    min_slowdown_seconds,
                ),
                notes=total_notes,
            )
        )

    def _meta(record: Mapping[str, Any], provenance: Dict[str, Any]) -> Dict[str, Any]:
        meta = dict(provenance)
        meta["created_utc"] = record.get("created_utc")
        meta["git_sha"] = record.get("git_sha")
        return meta

    return BenchComparison(
        old_meta=_meta(old, old_provenance),
        new_meta=_meta(new, new_provenance),
        comparable=not advisory,
        advisory_reasons=advisory,
        max_slowdown=max_slowdown,
        deltas=deltas,
    )
