"""Generic name-based registries backing the pluggable API surface.

Both the mapper registry (:mod:`repro.api.mappers`) and the experiment
registry (:mod:`repro.api.experiments`) are instances of the same small
:class:`Registry` class: an ordered name -> object table with decorator-style
registration and error messages that list what *is* registered, so a typo'd
name tells the caller which spellings would have worked.
"""

from __future__ import annotations

from typing import Dict, Generic, Iterator, List, Tuple, TypeVar

T = TypeVar("T")


class RegistryError(ValueError):
    """Raised for unknown names or conflicting registrations."""


class Registry(Generic[T]):
    """An ordered mapping from names to registered objects.

    Parameters
    ----------
    kind:
        Human-readable noun used in error messages ("mapper", "experiment").
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: Dict[str, T] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, name: str, obj: T, *, overwrite: bool = False) -> T:
        """Register ``obj`` under ``name``; returns ``obj`` for chaining."""
        if not name or not isinstance(name, str):
            raise RegistryError(f"{self.kind} name must be a non-empty string")
        if name in self._entries and not overwrite:
            raise RegistryError(
                f"{self.kind} {name!r} is already registered; "
                f"pass overwrite=True to replace it"
            )
        self._entries[name] = obj
        return obj

    def unregister(self, name: str) -> T:
        """Remove and return the entry for ``name``."""
        if name not in self._entries:
            raise RegistryError(self._unknown_message(name))
        return self._entries.pop(name)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, name: str) -> T:
        """The object registered under ``name``.

        Raises :class:`RegistryError` (a :class:`ValueError`) whose message
        lists every registered name.
        """
        try:
            return self._entries[name]
        except KeyError:
            raise RegistryError(self._unknown_message(name)) from None

    def names(self) -> List[str]:
        """Registered names in registration order."""
        return list(self._entries)

    def items(self) -> List[Tuple[str, T]]:
        """(name, object) pairs in registration order."""
        return list(self._entries.items())

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def _unknown_message(self, name: str) -> str:
        known = ", ".join(sorted(self._entries)) or "<none>"
        return f"unknown {self.kind} {name!r}; registered {self.kind}s: {known}"
