"""Multi-level block-code magic-state factory construction.

Section II-G of the paper describes the recursive block-code construction:
an ``l``-level factory built from Bravyi-Haah ``(3k+8) -> k`` modules
produces ``k^l`` output magic states from ``(3k+8)^l`` raw input states.
Within a round every module is an independent planar circuit; between rounds
the outputs of one round are *permuted* into the inputs of the next round
under the correlated-error constraint that each next-round module receives at
most one state from any previous-round module.

This module builds fully explicit, flat factory circuits together with the
structural metadata the mappers need:

* which logical qubits belong to which (round, module),
* which qubits are distillation outputs feeding the next round,
* the inter-round permutation edges (producer output -> consumer input),
* optional scheduling barriers separating rounds (Section V-A),
* a qubit reuse policy (Section V-B): fresh qubits each round (no-reuse /
  renaming) versus reusing the measured qubits of the previous round.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..circuits.circuit import Circuit
from ..circuits.gates import Gate, barrier as barrier_gate
from .bravyi_haah import BravyiHaahSpec, append_bravyi_haah_module


class ReusePolicy(enum.Enum):
    """Qubit reuse policy between distillation rounds (Section V-B)."""

    #: Allocate fresh qubits for every round ("qubit renaming"): removes the
    #: sharing-after-measurement false dependencies at the cost of area.
    NO_REUSE = "no_reuse"
    #: Reuse the measured qubits of the previous round for the next round's
    #: ancillas and outputs: smaller area, extra false dependencies.
    REUSE = "reuse"


@dataclass(frozen=True)
class FactorySpec:
    """Parameters of a multi-level block-code factory.

    Attributes
    ----------
    k:
        Per-module output count of the underlying Bravyi-Haah protocol.
    levels:
        Number of recursive distillation rounds ``l``.
    """

    k: int
    levels: int

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if self.levels < 1:
            raise ValueError(f"levels must be >= 1, got {self.levels}")

    @property
    def module(self) -> BravyiHaahSpec:
        """The Bravyi-Haah module specification used in every round."""
        return BravyiHaahSpec(self.k)

    @property
    def capacity(self) -> int:
        """Total output magic states produced by the factory (k^l)."""
        return self.k**self.levels

    @property
    def num_raw_inputs(self) -> int:
        """Total raw magic states consumed ((3k+8)^l)."""
        return (3 * self.k + 8) ** self.levels

    def modules_in_round(self, round_index: int) -> int:
        """Number of Bravyi-Haah modules in 1-based round ``round_index``.

        Round ``r`` contains ``k^(r-1) * (3k+8)^(l-r)`` modules so that every
        output of round ``r`` feeds exactly one input slot of round ``r+1``.
        """
        if not 1 <= round_index <= self.levels:
            raise ValueError(
                f"round index must be in [1, {self.levels}], got {round_index}"
            )
        r = round_index
        return self.k ** (r - 1) * (3 * self.k + 8) ** (self.levels - r)

    def groups_in_round(self, round_index: int) -> int:
        """Number of permutation groups feeding round ``round_index + 1``.

        Consumers in round ``r+1`` are organised into groups of ``k`` modules,
        each group fed by a dedicated set of ``3k+8`` producers from round
        ``r``; this satisfies the correlated-error constraint of Section II-G.
        """
        if round_index == self.levels:
            return 1
        return max(1, self.modules_in_round(round_index + 1) // self.k)

    @classmethod
    def from_capacity(cls, capacity: int, levels: int) -> "FactorySpec":
        """Build a spec from a *total* factory capacity (``k^l`` states).

        The paper labels its multi-level sweeps by total capacity (4, 16, 36,
        64, 100 for two-level factories); this helper recovers ``k``.
        """
        k = round(capacity ** (1.0 / levels))
        if k**levels != capacity:
            raise ValueError(
                f"capacity {capacity} is not a perfect {levels}-th power"
            )
        return cls(k=k, levels=levels)


@dataclass
class ModuleInstance:
    """One Bravyi-Haah module instance inside a factory.

    Attributes
    ----------
    round_index:
        1-based distillation round the module belongs to.
    module_index:
        0-based index of the module within its round.
    raw_qubits:
        The ``3k+8`` input qubits.  For round 1 these are fresh raw-state
        qubits; for later rounds they are output qubits of the previous round.
    anc_qubits:
        The ``k+5`` ancillary qubits of the module.
    out_qubits:
        The ``k`` output qubits of the module.
    group_index:
        Index of the permutation group the module belongs to.
    """

    round_index: int
    module_index: int
    raw_qubits: Tuple[int, ...]
    anc_qubits: Tuple[int, ...]
    out_qubits: Tuple[int, ...]
    group_index: int = 0

    @property
    def local_qubits(self) -> Tuple[int, ...]:
        """Qubits owned by the module itself (ancillas + outputs)."""
        return self.anc_qubits + self.out_qubits

    @property
    def all_qubits(self) -> Tuple[int, ...]:
        """Every qubit the module touches, inputs included."""
        return self.raw_qubits + self.anc_qubits + self.out_qubits


@dataclass
class PermutationEdge:
    """One inter-round permutation connection.

    The output qubit ``producer_qubit`` (port ``producer_port`` of module
    ``producer_module`` in round ``round_index``) is consumed as input slot
    ``consumer_slot`` of module ``consumer_module`` in round
    ``round_index + 1``.
    """

    round_index: int
    producer_module: int
    producer_port: int
    producer_qubit: int
    consumer_module: int
    consumer_slot: int


#: A port map assigns, for every (producer module, consumer module) pair of a
#: round boundary, which output port of the producer feeds that consumer.
PortMap = Dict[Tuple[int, int], int]


@dataclass
class Factory:
    """A fully constructed multi-level block-code factory.

    Holds the flat circuit together with the structural metadata used by the
    hierarchical-stitching mapper and the evaluation harness.
    """

    spec: FactorySpec
    circuit: Circuit
    rounds: List[List[ModuleInstance]]
    permutation_edges: List[PermutationEdge]
    reuse_policy: ReusePolicy
    barriers_between_rounds: bool
    round_gate_slices: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def num_qubits(self) -> int:
        """Total logical qubits allocated by the factory circuit."""
        return self.circuit.num_qubits

    @property
    def output_qubits(self) -> Tuple[int, ...]:
        """The factory's final distilled output qubits (last round outputs)."""
        outputs: List[int] = []
        for module in self.rounds[-1]:
            outputs.extend(module.out_qubits)
        return tuple(outputs)

    def modules(self) -> List[ModuleInstance]:
        """All module instances across all rounds, in round order."""
        return [module for round_modules in self.rounds for module in round_modules]

    def module_of_qubit(self) -> Dict[int, Tuple[int, int]]:
        """Map each locally-owned qubit to its (round, module) coordinates."""
        owner: Dict[int, Tuple[int, int]] = {}
        for round_modules in self.rounds:
            for module in round_modules:
                for qubit in module.local_qubits:
                    owner[qubit] = (module.round_index, module.module_index)
        # Round-1 raw states belong to the module that consumes them.
        for module in self.rounds[0]:
            for qubit in module.raw_qubits:
                owner.setdefault(qubit, (module.round_index, module.module_index))
        return owner

    def round_gates(self, round_index: int) -> List[Gate]:
        """Gates belonging to 1-based round ``round_index`` (barriers excluded)."""
        if not self.round_gate_slices:
            raise ValueError("factory was built without round slice metadata")
        start, stop = self.round_gate_slices[round_index - 1]
        return [g for g in self.circuit.gates[start:stop] if not g.is_barrier]

    def round_qubits(self, round_index: int) -> Tuple[int, ...]:
        """All qubits active during round ``round_index`` (inputs included)."""
        qubits: List[int] = []
        seen = set()
        for module in self.rounds[round_index - 1]:
            for qubit in module.all_qubits:
                if qubit not in seen:
                    seen.add(qubit)
                    qubits.append(qubit)
        return tuple(qubits)


def default_port_map(spec: FactorySpec, round_index: int) -> PortMap:
    """The identity port assignment for the boundary after ``round_index``.

    Producer module ``i`` of a group sends its output port ``j`` to the
    ``j``-th consumer of the corresponding consumer group.  The
    hierarchical-stitching mapper later *reassigns* these ports to reduce
    permutation congestion (Section VII-B.2); any bijection per producer is
    functionally equivalent because outputs within a module are
    interchangeable.
    """
    port_map: PortMap = {}
    if round_index >= spec.levels:
        return port_map
    producers = spec.modules_in_round(round_index)
    consumers = spec.modules_in_round(round_index + 1)
    fan_in = 3 * spec.k + 8
    groups = max(1, consumers // spec.k)
    producers_per_group = producers // groups
    if producers_per_group != fan_in:
        raise ValueError(
            "inconsistent factory structure: "
            f"{producers} producers, {consumers} consumers, fan-in {fan_in}"
        )
    for group in range(groups):
        for local_producer in range(fan_in):
            producer = group * fan_in + local_producer
            for local_consumer in range(spec.k):
                consumer = group * spec.k + local_consumer
                port_map[(producer, consumer)] = local_consumer
    return port_map


def validate_port_map(spec: FactorySpec, round_index: int, port_map: PortMap) -> None:
    """Check that ``port_map`` is a valid port assignment for a boundary.

    Every producer must send each of its ``k`` output ports to exactly one
    distinct consumer, and every consumer must receive from ``3k+8`` distinct
    producers — the correlated-error constraint of Section II-G.
    """
    reference = default_port_map(spec, round_index)
    if set(port_map.keys()) != set(reference.keys()):
        raise ValueError("port map keys do not match the factory's wiring structure")
    by_producer: Dict[int, List[int]] = {}
    for (producer, _consumer), port in port_map.items():
        if not 0 <= port < spec.k:
            raise ValueError(f"port {port} out of range for k={spec.k}")
        by_producer.setdefault(producer, []).append(port)
    for producer, ports in by_producer.items():
        if len(set(ports)) != len(ports):
            raise ValueError(
                f"producer module {producer} sends the same output port twice"
            )


def build_factory(
    spec: FactorySpec,
    reuse_policy: ReusePolicy = ReusePolicy.NO_REUSE,
    barriers_between_rounds: bool = True,
    port_maps: Optional[Sequence[PortMap]] = None,
    name: Optional[str] = None,
) -> Factory:
    """Construct the flat circuit and metadata for a block-code factory.

    Parameters
    ----------
    spec:
        Factory parameters (``k`` and number of levels).
    reuse_policy:
        Whether later rounds reuse the measured qubits of earlier rounds
        (:class:`ReusePolicy`).
    barriers_between_rounds:
        Insert a machine-wide barrier after every round, exposing the
        per-round planarity the stitching mapper relies on (Section V-A).
    port_maps:
        Optional list of per-boundary port maps (one per round boundary,
        i.e. ``levels - 1`` entries).  Defaults to the identity assignment.
    """
    module_spec = spec.module
    circuit = Circuit(name or f"factory_k{spec.k}_l{spec.levels}")

    rounds: List[List[ModuleInstance]] = []
    permutation_edges: List[PermutationEdge] = []
    round_gate_slices: List[Tuple[int, int]] = []

    if port_maps is not None and len(port_maps) != spec.levels - 1:
        raise ValueError(
            f"expected {spec.levels - 1} port maps, got {len(port_maps)}"
        )

    # ------------------------------------------------------------------
    # Qubit allocation
    # ------------------------------------------------------------------
    fan_in = module_spec.num_raw_states
    previous_outputs: List[Tuple[int, int, int]] = []  # (module, port, qubit)
    reusable_pool: List[int] = []

    for round_index in range(1, spec.levels + 1):
        num_modules = spec.modules_in_round(round_index)
        round_modules: List[ModuleInstance] = []

        # Assemble the input qubits for this round.
        inputs_per_module: List[List[int]] = [[] for _ in range(num_modules)]
        if round_index == 1:
            raw_register = circuit.add_register(
                f"r{round_index}_raw", num_modules * fan_in
            )
            for module_index in range(num_modules):
                start = module_index * fan_in
                inputs_per_module[module_index] = [
                    raw_register[start + slot] for slot in range(fan_in)
                ]
        else:
            boundary = round_index - 1
            port_map = (
                port_maps[boundary - 1]
                if port_maps is not None
                else default_port_map(spec, boundary)
            )
            validate_port_map(spec, boundary, port_map)
            outputs_by_module: Dict[int, Dict[int, int]] = {}
            for producer_module, port, qubit in previous_outputs:
                outputs_by_module.setdefault(producer_module, {})[port] = qubit
            slot_counters = [0] * num_modules
            for (producer, consumer), port in sorted(port_map.items()):
                qubit = outputs_by_module[producer][port]
                slot = slot_counters[consumer]
                slot_counters[consumer] += 1
                inputs_per_module[consumer].append(qubit)
                permutation_edges.append(
                    PermutationEdge(
                        round_index=boundary,
                        producer_module=producer,
                        producer_port=port,
                        producer_qubit=qubit,
                        consumer_module=consumer,
                        consumer_slot=slot,
                    )
                )
            for consumer, count in enumerate(slot_counters):
                if count != fan_in:
                    raise ValueError(
                        f"consumer module {consumer} received {count} inputs, "
                        f"expected {fan_in}"
                    )

        # Allocate (or reuse) the ancilla and output qubits of this round.
        local_needed = num_modules * module_spec.num_module_qubits
        local_qubits: List[int] = []
        if reuse_policy is ReusePolicy.REUSE and reusable_pool:
            take = min(len(reusable_pool), local_needed)
            local_qubits.extend(reusable_pool[:take])
            reusable_pool = reusable_pool[take:]
        remaining = local_needed - len(local_qubits)
        if remaining > 0:
            fresh = circuit.add_register(f"r{round_index}_work", remaining)
            local_qubits.extend(fresh.qubits)

        cursor = 0
        group_size = max(1, num_modules // max(1, spec.groups_in_round(round_index)))
        for module_index in range(num_modules):
            anc_qubits = tuple(
                local_qubits[cursor : cursor + module_spec.num_ancillas]
            )
            cursor += module_spec.num_ancillas
            out_qubits = tuple(
                local_qubits[cursor : cursor + module_spec.num_outputs]
            )
            cursor += module_spec.num_outputs
            round_modules.append(
                ModuleInstance(
                    round_index=round_index,
                    module_index=module_index,
                    raw_qubits=tuple(inputs_per_module[module_index]),
                    anc_qubits=anc_qubits,
                    out_qubits=out_qubits,
                    group_index=module_index // group_size,
                )
            )

        # ------------------------------------------------------------------
        # Gate emission for this round
        # ------------------------------------------------------------------
        start_gate = len(circuit)
        for module in round_modules:
            _append_module_gates(circuit, module_spec, module)
        stop_gate = len(circuit)
        round_gate_slices.append((start_gate, stop_gate))

        if barriers_between_rounds and round_index < spec.levels:
            circuit.append(barrier_gate(tag=f"barrier.r{round_index}"))

        # Outputs of this round feed the next round.
        previous_outputs = [
            (module.module_index, port, qubit)
            for module in round_modules
            for port, qubit in enumerate(module.out_qubits)
        ]
        # Everything except the forwarded outputs is measured and reusable.
        forwarded = {qubit for _m, _p, qubit in previous_outputs}
        round_reusable = [
            qubit
            for module in round_modules
            for qubit in module.all_qubits
            if qubit not in forwarded
        ]
        reusable_pool.extend(round_reusable)
        rounds.append(round_modules)

    return Factory(
        spec=spec,
        circuit=circuit,
        rounds=rounds,
        permutation_edges=permutation_edges,
        reuse_policy=reuse_policy,
        barriers_between_rounds=barriers_between_rounds,
        round_gate_slices=round_gate_slices,
    )


def _append_module_gates(
    circuit: Circuit, module_spec: BravyiHaahSpec, module: ModuleInstance
) -> None:
    """Emit one module's gates onto pre-allocated flat qubit tuples."""

    class _TupleRegister:
        """Adapter exposing a qubit tuple through the register indexing API."""

        def __init__(self, qubits: Tuple[int, ...]) -> None:
            self._qubits = qubits

        def __len__(self) -> int:
            return len(self._qubits)

        def __getitem__(self, index: int) -> int:
            return self._qubits[index]

    tag = f"r{module.round_index}.m{module.module_index}"
    append_bravyi_haah_module(
        circuit,
        module_spec,
        _TupleRegister(module.raw_qubits),
        _TupleRegister(module.anc_qubits),
        _TupleRegister(module.out_qubits),
        tag=tag,
    )


def build_single_level_factory(
    k: int, name: Optional[str] = None
) -> Factory:
    """Convenience constructor for a single-level factory of capacity ``k``."""
    return build_factory(FactorySpec(k=k, levels=1), name=name)


def build_two_level_factory(
    capacity: int,
    reuse_policy: ReusePolicy = ReusePolicy.NO_REUSE,
    barriers_between_rounds: bool = True,
    port_maps: Optional[Sequence[PortMap]] = None,
    name: Optional[str] = None,
) -> Factory:
    """Convenience constructor for a two-level factory of total ``capacity``.

    ``capacity`` must be a perfect square (4, 16, 36, 64, 100 in the paper's
    sweeps); the per-module ``k`` is its square root.
    """
    spec = FactorySpec.from_capacity(capacity, levels=2)
    return build_factory(
        spec,
        reuse_policy=reuse_policy,
        barriers_between_rounds=barriers_between_rounds,
        port_maps=port_maps,
        name=name,
    )
