"""Resource accounting: code distances, physical qubits, space-time volume.

Section II-G of the paper describes the "balanced investment" technique of
O'Gorman & Campbell: because the magic states improve every round, earlier
rounds can be encoded at a smaller code distance than later rounds, which
shrinks the physical footprint of the factory.  The number of physical qubits
needed by round ``r`` of an ``l``-level factory scales as

    q_r = n_r * (5k + 13) * d_r^2

where ``n_r`` is the number of modules in the round and ``d_r`` the round's
code distance.  (The paper writes the module count in grouped form
``m_r^(r-1) g_r^(l-r)``; the product is the same.)

The evaluation metrics of Fig. 10 and Table I are expressed at the *logical*
level — area in logical-qubit tiles, latency in cycles, and their product as
"quantum volume" — so this module provides both logical and physical
accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .block_code import Factory, FactorySpec
from .error_model import (
    ErrorBudget,
    multi_level_output_errors,
    required_code_distance,
)


@dataclass(frozen=True)
class RoundResources:
    """Resource summary of a single distillation round."""

    round_index: int
    modules: int
    logical_qubits: int
    code_distance: int
    physical_qubits: int
    output_error: float


@dataclass(frozen=True)
class FactoryResources:
    """Aggregate resource summary of a full factory."""

    spec: FactorySpec
    rounds: List[RoundResources]

    @property
    def max_physical_qubits(self) -> int:
        """Peak physical-qubit footprint over the factory's lifetime."""
        return max(r.physical_qubits for r in self.rounds)

    @property
    def max_logical_qubits(self) -> int:
        """Peak logical-qubit footprint over the factory's lifetime."""
        return max(r.logical_qubits for r in self.rounds)

    @property
    def final_output_error(self) -> float:
        """Error rate of the states produced by the last round."""
        return self.rounds[-1].output_error


def balanced_code_distances(
    spec: FactorySpec, budget: Optional[ErrorBudget] = None
) -> List[int]:
    """Per-round code distances under balanced investment.

    The code distance of round ``r`` is chosen so that the logical error
    contributed by the round's surface-code operations stays below the error
    rate of the magic states the round produces — investing less in early
    rounds whose states are still noisy, more in later rounds (Fig. 2 draws
    the round-2 tiles larger for exactly this reason).
    """
    budget = budget or ErrorBudget()
    output_errors = multi_level_output_errors(
        spec.k, spec.levels, budget.injection_error
    )
    distances: List[int] = []
    for round_error in output_errors:
        # The code must not limit the fidelity achieved by distillation; a
        # conservative margin of 10x below the round's output error is used.
        target = round_error / 10.0
        distances.append(required_code_distance(budget.physical_error, target))
    return distances


def round_module_counts(spec: FactorySpec) -> List[int]:
    """Number of Bravyi-Haah modules in each round, first round first."""
    return [spec.modules_in_round(r) for r in range(1, spec.levels + 1)]


def factory_resources(
    spec: FactorySpec, budget: Optional[ErrorBudget] = None
) -> FactoryResources:
    """Compute per-round logical/physical resource requirements for ``spec``."""
    budget = budget or ErrorBudget()
    distances = balanced_code_distances(spec, budget)
    output_errors = multi_level_output_errors(
        spec.k, spec.levels, budget.injection_error
    )
    logical_per_module = 5 * spec.k + 13
    rounds: List[RoundResources] = []
    for round_index in range(1, spec.levels + 1):
        modules = spec.modules_in_round(round_index)
        logical = modules * logical_per_module
        distance = distances[round_index - 1]
        physical = logical * distance * distance
        rounds.append(
            RoundResources(
                round_index=round_index,
                modules=modules,
                logical_qubits=logical,
                code_distance=distance,
                physical_qubits=physical,
                output_error=output_errors[round_index - 1],
            )
        )
    return FactoryResources(spec=spec, rounds=rounds)


def logical_area(factory: Factory) -> int:
    """Logical-qubit area of a factory circuit (peak concurrently-live qubits).

    For the no-reuse policy this is the full allocated qubit count; with
    reuse the footprint equals the larger of the per-round active sets
    because measured qubits are recycled.
    """
    peak = 0
    for round_index in range(1, factory.spec.levels + 1):
        peak = max(peak, len(factory.round_qubits(round_index)))
    if factory.reuse_policy.value == "no_reuse":
        return factory.num_qubits
    return peak


def space_time_volume(area_qubits: int, latency_cycles: int) -> int:
    """Space-time ("quantum") volume: logical area times latency in cycles."""
    if area_qubits < 0 or latency_cycles < 0:
        raise ValueError("area and latency must be non-negative")
    return area_qubits * latency_cycles
