"""Analytic error model for Bravyi-Haah block-code distillation.

Implements the closed-form expressions quoted in Sections II-B, II-F and II-G
of the paper:

* surface-code logical error rate ``P_L ~ d * (100 * p)^((d+1)/2)`` for
  physical error rate ``p`` and code distance ``d``,
* Bravyi-Haah output error ``(1 + 3k) * eps^2`` for input error ``eps``,
* first-order success probability ``1 - (8 + 3k) * eps``,
* the recursive multi-level error suppression ``~ eps^(2^l)``.

These are used by :mod:`repro.distillation.resources` to pick per-round code
distances ("balanced investment", O'Gorman & Campbell) and by the resource
accounting behind Table I and Fig. 10.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


def surface_code_logical_error(distance: int, physical_error: float) -> float:
    """Logical error rate of a distance-``d`` surface-code qubit.

    Uses the scaling ``P_L ~ d * (100 * p)^((d+1)/2)`` quoted in Section II-B
    (Fowler et al.), valid for physical error rates below the ~1% threshold.
    """
    if distance < 1:
        raise ValueError(f"code distance must be >= 1, got {distance}")
    if not 0.0 <= physical_error < 1.0:
        raise ValueError(f"physical error must be in [0, 1), got {physical_error}")
    return distance * (100.0 * physical_error) ** ((distance + 1) / 2.0)


def required_code_distance(
    physical_error: float, target_logical_error: float, max_distance: int = 101
) -> int:
    """Smallest odd code distance achieving ``target_logical_error``.

    Raises :class:`ValueError` if no distance up to ``max_distance`` suffices
    (i.e. the physical error rate is above threshold for the target).
    """
    if target_logical_error <= 0:
        raise ValueError("target logical error must be positive")
    for distance in range(3, max_distance + 1, 2):
        if surface_code_logical_error(distance, physical_error) <= target_logical_error:
            return distance
    raise ValueError(
        f"no code distance <= {max_distance} reaches logical error "
        f"{target_logical_error} at physical error {physical_error}"
    )


def bravyi_haah_output_error(k: int, input_error: float) -> float:
    """Output error of one Bravyi-Haah ``(3k+8) -> k`` round: ``(1+3k) eps^2``.

    The quadratic formula is a leading-order expression; above the protocol's
    pseudo-threshold (``eps > 1/(1+3k)``) it *grows* per round and, iterated,
    diverges past 1 — but an error rate is a probability, so the result is
    clamped to 1.  Below threshold (every regime the paper evaluates) the
    clamp never engages and the closed form is returned exactly.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if input_error < 0:
        raise ValueError(f"input error must be non-negative, got {input_error}")
    return min(1.0, (1 + 3 * k) * input_error**2)


def bravyi_haah_success_probability(k: int, input_error: float) -> float:
    """First-order success probability of one round: ``1 - (8+3k) eps``.

    Clamped to ``[0, 1]`` so that unrealistically high input error rates do
    not produce negative probabilities.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    return min(1.0, max(0.0, 1.0 - (8 + 3 * k) * input_error))


def multi_level_output_errors(
    k: int, levels: int, injection_error: float
) -> List[float]:
    """Per-round output error rates of an ``l``-level block-code factory.

    Element ``r-1`` of the returned list is the error rate of the states
    *produced by* round ``r`` (so the last element is the factory's final
    output fidelity).
    """
    if levels < 1:
        raise ValueError(f"levels must be >= 1, got {levels}")
    errors: List[float] = []
    current = injection_error
    for _ in range(levels):
        current = bravyi_haah_output_error(k, current)
        errors.append(current)
    return errors


def required_levels(
    k: int, injection_error: float, target_error: float, max_levels: int = 16
) -> int:
    """Number of block-code levels needed to reach ``target_error``."""
    if target_error <= 0:
        raise ValueError("target error must be positive")
    if injection_error <= target_error:
        return 0
    current = injection_error
    for level in range(1, max_levels + 1):
        current = bravyi_haah_output_error(k, current)
        if current <= target_error:
            return level
    raise ValueError(
        f"cannot reach target error {target_error} from injection error "
        f"{injection_error} within {max_levels} levels (k={k})"
    )


@dataclass(frozen=True)
class ErrorBudget:
    """A convenience bundle of the error-model inputs used across experiments.

    Attributes
    ----------
    physical_error:
        Physical gate/measurement error rate of the underlying hardware.
    injection_error:
        Error rate of raw (injected) magic states entering round 1.
    target_error:
        Error rate the factory's outputs must reach for the application.
    """

    physical_error: float = 1e-3
    injection_error: float = 1e-2
    target_error: float = 1e-10

    def output_errors(self, k: int, levels: int) -> List[float]:
        """Per-round output error rates for a ``k``, ``levels`` factory."""
        return multi_level_output_errors(k, levels, self.injection_error)

    def levels_needed(self, k: int) -> int:
        """Rounds needed for this budget with per-module capacity ``k``."""
        return required_levels(k, self.injection_error, self.target_error)
