"""Single-level Bravyi-Haah (3k+8 -> k) distillation module generator.

This reproduces the Scaffold listing of Fig. 5 in the paper: a single
Bravyi-Haah module consumes ``3k + 8`` raw (noisy) magic states, uses
``k + 5`` ancillary qubits and produces ``k`` higher-fidelity output magic
states, for a total footprint of ``5k + 13`` logical qubits plus the raw
state storage.

The gate sequence follows the listing line by line.  One index expression in
the published listing (``raw_states[2 * i + 8 + i]`` inside ``tail``) would
reuse raw states already consumed by the main injection loops; we read it as
``raw_states[2K + 8 + i]`` which consumes each of the ``3k + 8`` raw states
exactly once, matching the protocol's stated input count.  This choice is
documented in DESIGN.md and asserted by the test-suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..circuits.circuit import Circuit, QubitRegister
from ..circuits.gates import cnot, cxx, h, inject_t, inject_tdag, meas_x


@dataclass(frozen=True)
class BravyiHaahSpec:
    """Parameters of a single Bravyi-Haah distillation module.

    Attributes
    ----------
    k:
        Number of output magic states produced by the module.
    """

    k: int

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"Bravyi-Haah capacity k must be >= 1, got {self.k}")

    @property
    def num_raw_states(self) -> int:
        """Number of noisy input magic states consumed (3k + 8)."""
        return 3 * self.k + 8

    @property
    def num_ancillas(self) -> int:
        """Number of ancillary qubits used for syndrome checking (k + 5)."""
        return self.k + 5

    @property
    def num_outputs(self) -> int:
        """Number of distilled output states produced (k)."""
        return self.k

    @property
    def num_module_qubits(self) -> int:
        """Logical qubits inside the module excluding raw storage (2k + 5)."""
        return self.num_ancillas + self.num_outputs

    @property
    def total_qubits(self) -> int:
        """All logical qubits touched by the module (5k + 13)."""
        return self.num_raw_states + self.num_ancillas + self.num_outputs


def _append_tail(
    circuit: Circuit,
    spec: BravyiHaahSpec,
    raw: QubitRegister,
    anc: QubitRegister,
    out: QubitRegister,
    tag: Optional[str],
) -> None:
    """Append the ``tail`` sub-module of Fig. 5 (output conversion stage)."""
    k = spec.k
    for i in range(k):
        circuit.append(cnot(out[i], anc[5 + i], tag))
        circuit.append(inject_t(raw[2 * k + 8 + i], anc[5 + i], tag))
        circuit.append(cnot(anc[5 + i], anc[4 + i], tag))
        circuit.append(cnot(anc[3 + i], anc[5 + i], tag))
        circuit.append(cnot(anc[4 + i], anc[3 + i], tag))


def append_bravyi_haah_module(
    circuit: Circuit,
    spec: BravyiHaahSpec,
    raw: QubitRegister,
    anc: QubitRegister,
    out: QubitRegister,
    tag: Optional[str] = None,
) -> None:
    """Append one Bravyi-Haah module onto existing registers of ``circuit``.

    ``raw`` must have ``3k + 8`` qubits, ``anc`` must have ``k + 5`` and
    ``out`` must have ``k``.  The gate order follows the listing of Fig. 5:
    Hadamard preparations, the verification CXX fan-outs, the T / T-dagger
    state injections, the tail conversion stage and the final X-basis
    measurement of every ancilla.
    """
    k = spec.k
    if len(raw) < spec.num_raw_states:
        raise ValueError(
            f"raw register needs {spec.num_raw_states} qubits, has {len(raw)}"
        )
    if len(anc) < spec.num_ancillas:
        raise ValueError(
            f"ancilla register needs {spec.num_ancillas} qubits, has {len(anc)}"
        )
    if len(out) < spec.num_outputs:
        raise ValueError(
            f"output register needs {spec.num_outputs} qubits, has {len(out)}"
        )

    for i in range(3):
        circuit.append(h(anc[i], tag))
    for i in range(k):
        circuit.append(h(out[i], tag))
    circuit.append(cnot(anc[1], anc[3], tag))
    circuit.append(cnot(anc[2], anc[4], tag))
    circuit.append(cxx(anc[0], [anc[i] for i in range(1, k + 1)], tag))
    _append_tail(circuit, spec, raw, anc, out, tag)
    for i in range(1, k + 5):
        circuit.append(inject_t(raw[2 * i - 2], anc[i], tag))
    circuit.append(cxx(anc[0], [anc[i] for i in range(1, k + 5)], tag))
    for i in range(1, k + 5):
        circuit.append(inject_tdag(raw[2 * i - 1], anc[i], tag))
    for i in range(spec.num_ancillas):
        circuit.append(meas_x(anc[i], tag))


def build_bravyi_haah_circuit(k: int, name: Optional[str] = None) -> Circuit:
    """Build a standalone single-level Bravyi-Haah circuit with capacity ``k``.

    The returned circuit owns three registers: ``raw_states`` (3k+8 qubits),
    ``out`` (k qubits) and ``anc`` (k+5 qubits), mirroring the ``main``
    module of Fig. 5.
    """
    spec = BravyiHaahSpec(k)
    circuit = Circuit(name or f"bravyi_haah_k{k}")
    raw = circuit.add_register("raw_states", spec.num_raw_states)
    out = circuit.add_register("out", spec.num_outputs)
    anc = circuit.add_register("anc", spec.num_ancillas)
    append_bravyi_haah_module(circuit, spec, raw, anc, out, tag="r1.m0")
    return circuit


def module_gate_count(k: int) -> int:
    """Closed-form number of gates in one Bravyi-Haah module.

    Used by tests to pin down the generator: 3 + k Hadamards, 2 + 5k CNOTs
    from the head and tail, 2 CXX fan-outs, k + (k+4) T injections,
    (k+4) T-dagger injections and k+5 measurements.
    """
    hadamards = 3 + k
    cnots = 2 + 4 * k
    cxx_gates = 2
    injections = k + 2 * (k + 4)
    measurements = k + 5
    return hadamards + cnots + cxx_gates + injections + measurements


def raw_state_usage(circuit: Circuit) -> Tuple[int, ...]:
    """Return how many times each ``raw_states`` qubit is consumed.

    A correctly generated module consumes every raw state exactly once; the
    property-based tests assert this for all supported capacities.
    """
    raw = circuit.register("raw_states")
    usage = [0] * len(raw)
    for gate in circuit:
        for qubit in gate.qubits:
            if raw.start <= qubit < raw.start + raw.size:
                usage[qubit - raw.start] += 1
    return tuple(usage)
