"""The :class:`Finding` record emitted by every lint rule."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a specific source location.

    ``file`` is the path relative to the scan root (posix separators), so
    findings — and the baseline keys derived from them — are stable across
    checkouts, operating systems, and whether the package is scanned in
    ``src/`` or installed site-packages.
    """

    file: str
    line: int
    rule: str
    message: str

    @property
    def baseline_key(self) -> str:
        """Line-insensitive identity used by the baseline.

        Deliberately excludes ``line``: pure code motion above a
        grandfathered finding must not resurrect it as "new".
        """
        return f"{self.file}::{self.rule}::{self.message}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "file": self.file,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Finding":
        """Inverse of :meth:`to_dict`."""
        return cls(
            file=data["file"],
            line=int(data["line"]),
            rule=data["rule"],
            message=data["message"],
        )
