"""Grandfathered-finding baselines.

A baseline is a committed JSON file mapping finding keys
(``file::rule::message``, see :attr:`Finding.baseline_key`) to occurrence
counts.  ``repro-msfu lint`` subtracts the baseline from the current run:
grandfathered findings don't block, anything beyond them gates.  Keys are
line-insensitive so pure code motion never resurrects an old finding, but
counts are exact so *adding a second* instance of a grandfathered pattern
still fails.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict, Iterable, List, Tuple

from ..persistutil import atomic_write_json
from .findings import Finding

#: Bump when the baseline file layout changes.
BASELINE_SCHEMA_VERSION = 1


def load_baseline(path: str) -> Dict[str, int]:
    """Baseline key counts from ``path`` (missing file = empty baseline)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except FileNotFoundError:
        return {}
    except (OSError, json.JSONDecodeError) as error:
        raise ValueError(f"unreadable baseline {path}: {error}") from error
    if payload.get("version") != BASELINE_SCHEMA_VERSION:
        raise ValueError(
            f"baseline {path} has schema version {payload.get('version')!r}; "
            f"this tool reads version {BASELINE_SCHEMA_VERSION}"
        )
    entries = payload.get("entries", {})
    return {str(key): int(count) for key, count in entries.items()}


def write_baseline(path: str, findings: Iterable[Finding], note: str = "") -> None:
    """Persist the current findings as the new baseline (atomically)."""
    counts = Counter(finding.baseline_key for finding in findings)
    payload = {
        "version": BASELINE_SCHEMA_VERSION,
        "note": note
        or (
            "Grandfathered repro-msfu lint findings. Entries map "
            "'file::rule::message' to occurrence counts; new findings "
            "beyond these counts fail the lint gate. Regenerate with "
            "'repro-msfu lint --update-baseline'."
        ),
        "entries": {key: counts[key] for key in sorted(counts)},
    }
    atomic_write_json(path, payload, indent=2, sort_keys=False)


def apply_baseline(
    findings: List[Finding], baseline: Dict[str, int]
) -> Tuple[List[Finding], int]:
    """Split findings into (new, grandfathered-count) against ``baseline``.

    The first ``baseline[key]`` occurrences of each key are grandfathered
    (lowest line numbers first, since findings arrive sorted); the rest are
    new and gate.
    """
    remaining = dict(baseline)
    fresh: List[Finding] = []
    grandfathered = 0
    for finding in findings:
        key = finding.baseline_key
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            grandfathered += 1
        else:
            fresh.append(finding)
    return fresh, grandfathered
