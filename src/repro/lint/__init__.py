"""Project-invariant static analysis for the repro codebase.

Seven PRs in, the codebase's correctness rests on conventions — schema-salted
fingerprints, atomic JSON persistence, lock-guarded service state,
deterministic simulation paths, symmetric serializers.  This package encodes
those conventions as stdlib-``ast`` rules so every future change is checked
mechanically (``repro-msfu lint``) instead of by reviewer memory.

Layout
------
* :mod:`repro.lint.findings` — the :class:`Finding` record and baseline keys;
* :mod:`repro.lint.engine` — file walker, ``Rule`` protocol, suppression
  comments (``# repro-lint: disable=RULE``), and the runner;
* :mod:`repro.lint.baseline` — grandfathered-finding files: old findings
  don't block, new ones gate;
* :mod:`repro.lint.rules` — the project-specific rules themselves;
* :mod:`repro.lint.cli` — the ``repro-msfu lint`` entry point.
"""

from __future__ import annotations

from .baseline import load_baseline, write_baseline
from .engine import ModuleSource, Rule, iter_sources, run_rules
from .findings import Finding
from .rules import ALL_RULES, rules_by_id

__all__ = [
    "ALL_RULES",
    "Finding",
    "ModuleSource",
    "Rule",
    "iter_sources",
    "load_baseline",
    "rules_by_id",
    "run_rules",
    "write_baseline",
]
