"""The ``repro-msfu lint`` command.

Exit codes: ``0`` — clean (every finding suppressed or grandfathered);
``1`` — new findings; ``2`` — usage error (unknown rule, unreadable
baseline).  ``--update-baseline`` rewrites the baseline from the current
findings and exits 0 — the diff of the committed baseline file then *is*
the review artifact for grandfathering.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from .baseline import apply_baseline, load_baseline, write_baseline
from .engine import run_rules
from .findings import Finding
from .rules import ALL_RULES, rules_by_id

#: Baseline committed at the repo root; resolved against the cwd so CI and
#: developers invoking from a checkout agree on the file.
DEFAULT_BASELINE = "lint-baseline.json"


def default_root() -> str:
    """The package source tree to scan.

    Prefers ``src/repro`` under the cwd (a repo checkout — scanning the
    working tree, not whatever is installed); falls back to the imported
    package's directory so ``repro-msfu lint`` still works from anywhere.
    """
    checkout = os.path.join("src", "repro")
    if os.path.isdir(checkout):
        return checkout
    import repro

    return os.path.dirname(os.path.abspath(repro.__file__))


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``lint`` options (shared by the subcommand wiring)."""
    parser.add_argument(
        "--root",
        default=None,
        help="package tree to scan (default: src/repro in a checkout, "
        "else the installed repro package)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="finding output format (default: text)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="ID",
        help="run only this rule (repeatable); default: all rules",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help=f"grandfathered-findings file (default: {DEFAULT_BASELINE}; "
        "a missing file is an empty baseline)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file: every finding gates",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the shipped rules and exit",
    )


def _render_text(
    new: List[Finding], grandfathered: int, total_files_root: str
) -> str:
    lines = [
        f"{finding.file}:{finding.line}: {finding.rule}: {finding.message}"
        for finding in new
    ]
    summary = (
        f"repro-lint: {len(new)} new finding(s) in {total_files_root}"
        if new
        else f"repro-lint: clean ({total_files_root})"
    )
    if grandfathered:
        summary += f", {grandfathered} grandfathered by baseline"
    lines.append(summary)
    return "\n".join(lines)


def run_lint(args: argparse.Namespace) -> int:
    """Execute ``lint`` from parsed arguments; returns the exit code."""
    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.id}: {rule.description}")
        return 0

    try:
        rules = rules_by_id(args.rule) if args.rule else ALL_RULES
    except ValueError as error:
        print(f"repro-lint: {error}", file=sys.stderr)
        return 2

    root = args.root or default_root()
    if not os.path.isdir(root):
        print(f"repro-lint: scan root {root!r} is not a directory", file=sys.stderr)
        return 2
    findings = run_rules(root, rules)

    if args.update_baseline:
        write_baseline(args.baseline, findings)
        print(
            f"repro-lint: baseline {args.baseline} updated with "
            f"{len(findings)} finding(s)",
            file=sys.stderr,
        )
        return 0

    if args.no_baseline:
        baseline = {}
    else:
        try:
            baseline = load_baseline(args.baseline)
        except ValueError as error:
            print(f"repro-lint: {error}", file=sys.stderr)
            return 2
    new, grandfathered = apply_baseline(findings, baseline)

    if args.format == "json":
        payload = {
            "root": root,
            "rules": [rule.id for rule in rules],
            "new": [finding.to_dict() for finding in new],
            "grandfathered": grandfathered,
        }
        print(json.dumps(payload, indent=2))
    else:
        print(_render_text(new, grandfathered, root))
    return 1 if new else 0


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``python -m repro.lint.cli``)."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Project-invariant static analysis for the repro codebase.",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover - module entry point
    raise SystemExit(main())
