"""Rule: serializable dataclasses must round-trip.

Result records (`ExecutorStats`, `SweepRunResult`, `GcReport`, bench
comparison rows, …) cross process and disk boundaries as JSON.  A dataclass
that can serialize (``to_dict``) but not parse (``from_dict``) — or the
reverse — breaks resumable sweeps, the HTTP wire format, and the bench
history tooling the moment someone round-trips it.  The rule flags every
``@dataclass`` whose body defines exactly one of the pair.
"""

from __future__ import annotations

import ast
from typing import List

from ..engine import ModuleSource
from ..findings import Finding


def _is_dataclass_decorator(node: ast.AST) -> bool:
    """``@dataclass``, ``@dataclass(...)``, or ``@dataclasses.dataclass``."""
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr == "dataclass"
    return isinstance(node, ast.Name) and node.id == "dataclass"


class SerializationParityRule:
    id = "serialization-parity"
    description = (
        "a dataclass defining to_dict must define from_dict, and vice versa"
    )

    def check(self, module: ModuleSource) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not any(_is_dataclass_decorator(d) for d in node.decorator_list):
                continue
            defined = {
                stmt.name
                for stmt in node.body
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            has_to = "to_dict" in defined
            has_from = "from_dict" in defined
            if has_to == has_from:
                continue
            missing, present = (
                ("from_dict", "to_dict") if has_to else ("to_dict", "from_dict")
            )
            findings.append(
                Finding(
                    file=module.path,
                    line=node.lineno,
                    rule=self.id,
                    message=(
                        f"dataclass {node.name} defines {present} but not "
                        f"{missing}; serializable records must round-trip"
                    ),
                )
            )
        return findings
