"""Rule: simulation, fingerprint, and wire paths must be deterministic.

The evaluation pipeline's caching story (result store, simulation cache,
request coalescing, differential fuzzing) relies on the same inputs always
producing the same outputs.  Wall-clock reads and the process-global random
generator break that silently.  This rule flags, in the deterministic
subtree of the package:

* ``time.time()`` (and ``time.time_ns()``) — wall clock;
* ``datetime.now()`` / ``datetime.utcnow()`` / ``datetime.today()`` —
  wall clock, directly or via the ``datetime`` module;
* calls through the module-global random generator (``random.random()``,
  ``random.shuffle()``, …) — unseeded shared state.  Instantiating a
  seeded ``random.Random(seed)`` is the sanctioned pattern and is allowed.

Provenance and CLI timing sites (``api/store.py`` metadata stamps,
``cli.py`` elapsed-time prints, the service layer's timestamps) are outside
the scoped paths by design — recording *when* a result was produced is
fine; folding wall-clock into *what* is produced is not.  Performance
accounting via ``time.perf_counter()`` is likewise allowed: it feeds stats
fields, not results.
"""

from __future__ import annotations

import ast
from typing import List

from ..engine import ModuleSource
from ..findings import Finding

#: Package-relative path prefixes (and exact files) that must stay
#: deterministic.  Everything else — provenance, CLI, service job metadata —
#: is the allowlist.
DETERMINISTIC_PATHS = (
    "routing/",
    "mapping/",
    "graphs/",
    "circuits/",
    "scheduling/",
    "distillation/",
    "kernels/",
    "persistutil.py",
    "service/wire.py",
)

_WALL_CLOCK_TIME = {"time", "time_ns"}
_WALL_CLOCK_DATETIME = {"now", "utcnow", "today"}


def _in_scope(path: str) -> bool:
    return any(
        path == prefix or path.startswith(prefix) for prefix in DETERMINISTIC_PATHS
    )


class DeterminismRule:
    id = "determinism"
    description = (
        "no wall-clock or module-global random in simulation/fingerprint/"
        "wire paths"
    )

    def check(self, module: ModuleSource) -> List[Finding]:
        if not _in_scope(module.path):
            return []
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            owner = func.value
            # Unwrap `datetime.datetime.now()` to the `datetime` class level.
            if (
                isinstance(owner, ast.Attribute)
                and isinstance(owner.value, ast.Name)
                and owner.value.id == "datetime"
            ):
                owner = ast.Name(id=owner.attr, ctx=ast.Load())
            if not isinstance(owner, ast.Name):
                continue
            message = None
            if owner.id == "time" and func.attr in _WALL_CLOCK_TIME:
                message = (
                    f"wall-clock read time.{func.attr}() in a deterministic "
                    "path; results must not depend on the clock"
                )
            elif owner.id == "datetime" and func.attr in _WALL_CLOCK_DATETIME:
                message = (
                    f"wall-clock read datetime.{func.attr}() in a "
                    "deterministic path; results must not depend on the clock"
                )
            elif owner.id == "random" and func.attr != "Random":
                message = (
                    f"module-global random.{func.attr}() in a deterministic "
                    "path; use a seeded random.Random(seed) instance"
                )
            if message is not None:
                findings.append(
                    Finding(
                        file=module.path,
                        line=node.lineno,
                        rule=self.id,
                        message=message,
                    )
                )
        return findings
