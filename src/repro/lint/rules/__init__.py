"""The project-specific rule set shipped with ``repro-msfu lint``."""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..engine import Rule
from .determinism import DeterminismRule
from .locking import LockDisciplineRule
from .persistence import AtomicPersistenceRule, FingerprintSaltingRule
from .serialization import SerializationParityRule

#: Every shipped rule, in gate order (stable for output and docs).
ALL_RULES: List[Rule] = [
    AtomicPersistenceRule(),
    DeterminismRule(),
    FingerprintSaltingRule(),
    LockDisciplineRule(),
    SerializationParityRule(),
]


def rules_by_id(ids: Sequence[str]) -> List[Rule]:
    """Resolve ``--rule`` selections, preserving gate order.

    Raises ``ValueError`` on an unknown id, listing what exists.
    """
    known: Dict[str, Rule] = {rule.id: rule for rule in ALL_RULES}
    unknown = [rule_id for rule_id in ids if rule_id not in known]
    if unknown:
        raise ValueError(
            f"unknown rule id(s) {', '.join(sorted(unknown))}; "
            f"available: {', '.join(sorted(known))}"
        )
    wanted = set(ids)
    return [rule for rule in ALL_RULES if rule.id in wanted]


__all__ = [
    "ALL_RULES",
    "AtomicPersistenceRule",
    "DeterminismRule",
    "FingerprintSaltingRule",
    "LockDisciplineRule",
    "SerializationParityRule",
    "rules_by_id",
]
