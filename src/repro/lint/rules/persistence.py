"""Rules: atomic JSON persistence and schema-salted fingerprints.

Both rules exist because of real bugs in this repo's history:

* **atomic-persistence** — PR 6 shipped a lost-write: a raw ``json.dump``
  into an ``open(..., "w")`` handle could be observed half-written (and a
  PID-keyed scratch-file scheme collided across threads).  The fix,
  :func:`repro.persistutil.atomic_write_json` (mkstemp + ``os.replace``),
  is the only sanctioned way to persist JSON.  The rule flags direct
  ``json.dump(...)`` calls and ``.write(json.dumps(...))`` /
  ``write_text(json.dumps(...))`` patterns everywhere except
  ``persistutil.py`` itself.

* **fingerprint-salting** — every content address must fold in a schema
  tag (:func:`repro.persistutil.tagged_fingerprint`) so bumping a schema
  version re-addresses old payloads instead of misreading them.  A bare
  ``hashlib.blake2b(...)`` construction outside ``persistutil.py`` builds
  an unsalted digest that a future schema bump cannot invalidate, so the
  rule flags it.
"""

from __future__ import annotations

import ast
from typing import List

from ..engine import ModuleSource
from ..findings import Finding

#: The one module allowed to touch the raw primitives.
PRIMITIVE_MODULE = "persistutil.py"


def _is_json_dumps(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "dumps"
        and isinstance(node.func.value, ast.Name)
        and node.func.value.id == "json"
    )


class AtomicPersistenceRule:
    id = "atomic-persistence"
    description = (
        "JSON writes must go through persistutil.atomic_write_json, "
        "never raw json.dump / handle.write(json.dumps(...))"
    )

    def check(self, module: ModuleSource) -> List[Finding]:
        if module.path == PRIMITIVE_MODULE:
            return []
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if (
                func.attr == "dump"
                and isinstance(func.value, ast.Name)
                and func.value.id == "json"
            ):
                findings.append(
                    Finding(
                        file=module.path,
                        line=node.lineno,
                        rule=self.id,
                        message=(
                            "raw json.dump() write; persist JSON via "
                            "persistutil.atomic_write_json so a crash never "
                            "leaves a truncated file"
                        ),
                    )
                )
            elif func.attr in ("write", "write_text") and any(
                _is_json_dumps(arg) for arg in node.args
            ):
                findings.append(
                    Finding(
                        file=module.path,
                        line=node.lineno,
                        rule=self.id,
                        message=(
                            f"non-atomic JSON write via .{func.attr}"
                            "(json.dumps(...)); persist JSON via "
                            "persistutil.atomic_write_json"
                        ),
                    )
                )
        return findings


class FingerprintSaltingRule:
    id = "fingerprint-salting"
    description = (
        "content hashes must use persistutil.tagged_fingerprint "
        "(schema-salted blake2b), not bare hashlib.blake2b"
    )

    def check(self, module: ModuleSource) -> List[Finding]:
        if module.path == PRIMITIVE_MODULE:
            return []
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = None
            if isinstance(func, ast.Attribute):
                name = func.attr
            elif isinstance(func, ast.Name):
                name = func.id
            if name == "blake2b":
                findings.append(
                    Finding(
                        file=module.path,
                        line=node.lineno,
                        rule=self.id,
                        message=(
                            "bare blake2b construction; use "
                            "persistutil.tagged_fingerprint so a schema "
                            "bump re-addresses every digest"
                        ),
                    )
                )
        return findings
