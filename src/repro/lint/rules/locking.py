"""Rule: shared mutable state must stay under its lock.

The sweep service (:mod:`repro.service`) and the kernel loaders
(:mod:`repro.routing.kernel`, the shared :mod:`repro.kernels` runtime)
are the places where threads share mutable state.  Their convention: any attribute that is ever written under
``with self._lock`` (or any ``self._*lock*``) is lock-owned, and every
*other* write to it must also hold the lock.  ``__init__`` /
``__post_init__`` are exempt — construction happens before the object is
shared.

The module-level twin covers :mod:`repro.routing.kernel`'s
``_lock`` / ``_cached`` / ``_tried`` globals: a global ever assigned inside
``with _lock`` must only be assigned under it (import-time initialization
exempt, same reasoning as ``__init__``).

The rule is deliberately syntactic — it sees lock *blocks*, not lock
*ownership*, so a helper that is only ever called with the lock held will
be flagged and needs an inline ``# repro-lint: disable=lock-discipline``
stating that contract.  That trade keeps the checker dependency-free and
the contract written down at the call site.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from ..engine import ModuleSource
from ..findings import Finding

#: Package-relative paths where the lock convention is enforced.
LOCKED_PATHS = ("service/", "routing/kernel.py", "kernels/")

_CONSTRUCTORS = ("__init__", "__post_init__")


def _in_scope(path: str) -> bool:
    return any(path == p or path.startswith(p) for p in LOCKED_PATHS)


def _self_attr_target(target: ast.AST) -> Optional[str]:
    """The ``self._x`` attribute a write target reaches, if any.

    Unwraps subscripts and attribute chains, so ``self._jobs[k] = v`` and
    ``self._stats.count = 1`` both resolve to the owning attribute.
    """
    node = target
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr
        node = node.value
    return None


def _is_self_lock(expr: ast.AST) -> bool:
    return (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
        and "lock" in expr.attr
    )


def _is_module_lock(expr: ast.AST) -> bool:
    return isinstance(expr, ast.Name) and "lock" in expr.id


def _write_targets(node: ast.stmt) -> Iterator[ast.AST]:
    if isinstance(node, ast.Assign):
        yield from node.targets
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        yield node.target


class _ClassWrites(ast.NodeVisitor):
    """Collect every ``self._x`` write in one class, with lock context."""

    def __init__(self) -> None:
        #: (attr, lineno, under_lock, method_name)
        self.writes: List[Tuple[str, int, bool, str]] = []
        self._lock_depth = 0
        self._method: str = "<class body>"

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        previous, self._method = self._method, node.name
        self.generic_visit(node)
        self._method = previous

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        # Nested classes own their own state; handled by their own pass.
        pass

    def visit_With(self, node: ast.With) -> None:
        locked = any(_is_self_lock(item.context_expr) for item in node.items)
        if locked:
            self._lock_depth += 1
        self.generic_visit(node)
        if locked:
            self._lock_depth -= 1

    def _record(self, stmt: ast.stmt) -> None:
        for target in _write_targets(stmt):
            attr = _self_attr_target(target)
            if attr is not None and attr.startswith("_"):
                self.writes.append(
                    (attr, stmt.lineno, self._lock_depth > 0, self._method)
                )

    def visit_Assign(self, node: ast.Assign) -> None:
        self._record(node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record(node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._record(node)
        self.generic_visit(node)


class _ModuleWrites(ast.NodeVisitor):
    """Collect module-global writes (via ``global`` decls) with lock context."""

    def __init__(self) -> None:
        self.writes: List[Tuple[str, int, bool]] = []
        self._lock_depth = 0
        self._globals: List[Set[str]] = []

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        pass  # class/instance state is the class pass's job

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        declared: Set[str] = set()
        for stmt in ast.walk(node):
            if isinstance(stmt, ast.Global):
                declared.update(stmt.names)
        self._globals.append(declared)
        self.generic_visit(node)
        self._globals.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_With(self, node: ast.With) -> None:
        locked = any(_is_module_lock(item.context_expr) for item in node.items)
        if locked:
            self._lock_depth += 1
        self.generic_visit(node)
        if locked:
            self._lock_depth -= 1

    def _record(self, stmt: ast.stmt) -> None:
        for target in _write_targets(stmt):
            if isinstance(target, ast.Name):
                name = target.id
                in_function = bool(self._globals)
                is_global = in_function and any(
                    name in scope for scope in self._globals
                )
                if is_global or (not in_function and self._lock_depth > 0):
                    self.writes.append((name, stmt.lineno, self._lock_depth > 0))

    def visit_Assign(self, node: ast.Assign) -> None:
        self._record(node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record(node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._record(node)
        self.generic_visit(node)


class LockDisciplineRule:
    id = "lock-discipline"
    description = (
        "attributes/globals ever written under a lock must always be "
        "written under it (constructors exempt)"
    )

    def check(self, module: ModuleSource) -> List[Finding]:
        if not _in_scope(module.path):
            return []
        findings: List[Finding] = []

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            collector = _ClassWrites()
            for stmt in node.body:
                collector.visit(stmt)
            guarded = {
                attr for attr, _, under_lock, _ in collector.writes if under_lock
            }
            for attr, lineno, under_lock, method in collector.writes:
                if under_lock or attr not in guarded:
                    continue
                if method in _CONSTRUCTORS:
                    continue
                findings.append(
                    Finding(
                        file=module.path,
                        line=lineno,
                        rule=self.id,
                        message=(
                            f"self.{attr} is written under a lock elsewhere "
                            f"in {node.name} but written without it in "
                            f"{method}()"
                        ),
                    )
                )

        collector = _ModuleWrites()
        collector.visit(module.tree)
        guarded_globals = {
            name for name, _, under_lock in collector.writes if under_lock
        }
        for name, lineno, under_lock in collector.writes:
            if under_lock or name not in guarded_globals:
                continue
            findings.append(
                Finding(
                    file=module.path,
                    line=lineno,
                    rule=self.id,
                    message=(
                        f"global {name} is written under the module lock "
                        "elsewhere but written without it here"
                    ),
                )
            )
        return findings
