"""Rule engine: file walker, ``Rule`` protocol, suppressions, runner.

The engine parses each file once and hands the shared :class:`ModuleSource`
to every rule, so a full run over ``src/repro`` costs one ``ast.parse`` per
file regardless of how many rules are active.

Suppressions
------------
A finding is suppressed when its line carries an inline marker::

    digest = hashlib.blake2b(payload)  # repro-lint: disable=fingerprint-salting

or when the file carries a file-wide marker anywhere (conventionally near
the top)::

    # repro-lint: disable-file=lock-discipline

Both accept a comma-separated rule list.  Suppressions are for sites where
the rule's invariant genuinely does not apply; findings that merely predate
the rule belong in the committed baseline instead, where they stay visible.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Protocol,
    Sequence,
    Set,
    Tuple,
)

from .findings import Finding


class Rule(Protocol):
    """What the engine requires of a rule.

    Rules are plain objects: an ``id`` (stable kebab-case slug used by
    ``--rule``, suppressions, and baselines), a one-line ``description``
    for ``--list-rules`` style output, and a ``check`` that maps one parsed
    module to its findings.
    """

    id: str
    description: str

    def check(self, module: "ModuleSource") -> List[Finding]: ...


@dataclass
class ModuleSource:
    """One parsed source file, shared by every rule."""

    #: Path relative to the scan root, posix separators (baseline-stable).
    path: str
    source: str
    tree: ast.AST
    lines: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()

    def line_text(self, lineno: int) -> str:
        """1-based source line, empty for out-of-range (synthetic nodes)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


_SUPPRESS = re.compile(
    r"#\s*repro-lint:\s*disable(?P<scope>-file)?\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_,\- ]+)"
)


def suppressed_rules(module: ModuleSource) -> Tuple[Dict[int, Set[str]], Set[str]]:
    """Inline and file-wide suppressions declared in ``module``.

    Returns ``(by_line, file_wide)`` where ``by_line`` maps 1-based line
    numbers to the rule ids disabled on that line.
    """
    by_line: Dict[int, Set[str]] = {}
    file_wide: Set[str] = set()
    for lineno, text in enumerate(module.lines, 1):
        match = _SUPPRESS.search(text)
        if not match:
            continue
        rules = {rule.strip() for rule in match.group("rules").split(",")}
        rules.discard("")
        if match.group("scope"):
            file_wide.update(rules)
        else:
            by_line.setdefault(lineno, set()).update(rules)
    return by_line, file_wide


def iter_sources(root: str, rel_prefix: str = "") -> Iterator[ModuleSource]:
    """Walk ``root`` and yield one :class:`ModuleSource` per ``.py`` file.

    Files that fail to parse are skipped (the interpreter or test suite
    reports syntax errors long before lint does); paths are yielded in
    sorted order so output and baselines are deterministic.
    """
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(
            name
            for name in dirnames
            if name != "__pycache__" and not name.startswith(".")
        )
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            full = os.path.join(dirpath, filename)
            rel = os.path.relpath(full, root).replace(os.sep, "/")
            if rel_prefix:
                rel = f"{rel_prefix}/{rel}"
            try:
                with open(full, "r", encoding="utf-8") as handle:
                    source = handle.read()
                tree = ast.parse(source, filename=rel)
            except (OSError, SyntaxError, ValueError):
                continue
            yield ModuleSource(path=rel, source=source, tree=tree)


def check_module(module: ModuleSource, rules: Sequence[Rule]) -> List[Finding]:
    """All findings of ``rules`` on one module, suppressions applied."""
    by_line, file_wide = suppressed_rules(module)
    findings: List[Finding] = []
    for rule in rules:
        if rule.id in file_wide:
            continue
        for finding in rule.check(module):
            if rule.id in by_line.get(finding.line, ()):
                continue
            findings.append(finding)
    return findings


def run_rules(
    root: str,
    rules: Sequence[Rule],
    sources: Optional[Iterable[ModuleSource]] = None,
) -> List[Finding]:
    """Run ``rules`` over every module under ``root``, sorted findings.

    ``sources`` overrides the walker for tests that lint in-memory trees.
    """
    findings: List[Finding] = []
    for module in sources if sources is not None else iter_sources(root):
        findings.extend(check_module(module, rules))
    return sorted(findings)
