"""Shared persistence primitives for the on-disk caches and stores.

Both persistence layers — :class:`repro.api.store.ResultStore` (above the
pipeline) and :class:`repro.routing.simulator.SimulationCache` (below it) —
need the same two disciplines, kept here so durability fixes land in one
place (routing cannot import :mod:`repro.api`, so the helpers live below
both):

* :func:`tagged_fingerprint` — blake2b over a canonical byte encoding,
  salted with a NUL-separated schema/version tag, so equal fingerprints
  name identical payloads and a schema bump re-addresses everything;
* :func:`atomic_write_json` — temporary file + :func:`os.replace`, so a
  killed process never leaves a half-written payload under the final name
  and concurrent writers of the same content are safe;
* :func:`exclusive_write_json` — the *claim* primitive of distributed
  sharding (:mod:`repro.api.sharding`): publish a payload under a name
  only if nothing is there yet, atomically, so N uncoordinated shard
  processes racing for one sweep point elect exactly one winner;
* :func:`write_jsonl_line` — the streaming sink counterpart: one JSON
  document per line, flushed immediately, for ``--stream-output`` logs
  that must be readable while (and after) the producer is killed.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Any, Optional, Union


def tagged_fingerprint(
    tag: str, payload: Union[bytes, str], digest_size: int = 20
) -> str:
    """Hex blake2b content address of ``payload`` salted with ``tag``.

    The tag (e.g. ``"repro-msfu-store/v1"``) is folded in ahead of a NUL
    separator, so bumping a schema version changes every address instead of
    letting old payloads be misread under a new format.
    """
    digest = hashlib.blake2b(digest_size=digest_size)
    digest.update(tag.encode("ascii"))
    digest.update(b"\x00")
    digest.update(payload if isinstance(payload, bytes) else payload.encode("utf-8"))
    return digest.hexdigest()


def atomic_write_json(
    path: Union[str, "os.PathLike[str]"],
    payload: Any,
    indent: Optional[int] = None,
    sort_keys: bool = False,
) -> None:
    """Write ``payload`` as JSON to ``path`` atomically.

    Creates parent directories, writes to a uniquely named temporary file
    beside the target (:func:`tempfile.mkstemp`, so concurrent writers —
    including *threads* of one process, which share a PID — never collide
    on the scratch file), and publishes with :func:`os.replace`; the
    temporary file is removed if the write fails mid-way.
    """
    path = os.fspath(path)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(
        prefix=f"{os.path.basename(path)}.", suffix=".tmp", dir=parent or None
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=indent, sort_keys=sort_keys)
            handle.write("\n")
        os.replace(tmp_path, path)
    finally:
        if os.path.exists(tmp_path):  # pragma: no cover - failed write only
            os.unlink(tmp_path)


def exclusive_write_json(
    path: Union[str, "os.PathLike[str]"],
    payload: Any,
    indent: Optional[int] = None,
    sort_keys: bool = False,
) -> bool:
    """Atomically publish ``payload`` at ``path`` only if nothing is there.

    The exclusive twin of :func:`atomic_write_json`: the payload is fully
    written to a private temporary file first, then *linked* into place
    with :func:`os.link`, which fails (instead of replacing) when the name
    already exists.  Returns ``True`` when this caller published the file,
    ``False`` when another writer got there first — which is exactly the
    one-winner election distributed work-stealing claims need: losers never
    observe a half-written claim, because the link either fully publishes
    the finished file or does nothing.
    """
    path = os.fspath(path)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(
        prefix=f"{os.path.basename(path)}.", suffix=".tmp", dir=parent or None
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=indent, sort_keys=sort_keys)
            handle.write("\n")
        try:
            os.link(tmp_path, path)
        except FileExistsError:
            return False
        return True
    finally:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)


def write_jsonl_line(handle: Any, payload: Any) -> None:
    """Append one JSON document as a single line to an open text handle.

    The streaming-sink discipline: compact separators (one event per
    line, greppable), explicit flush after every line so a consumer —
    or a post-mortem after a SIGKILL — sees every event that finished,
    never a torn tail beyond the last newline.
    """
    handle.write(json.dumps(payload, sort_keys=True, separators=(",", ":")))
    handle.write("\n")
    handle.flush()
