"""Schedule-level optimisations: barriers, qubit renaming, critical-path bounds.

Three aspects of Sections V and VIII of the paper live here:

* :mod:`~repro.scheduling.schedule` — round barriers (abstract ``BARRIER``
  pseudo-gates and their physical multi-target-CNOT expansion), ASAP list
  scheduling and the limited gate-mobility transformations;
* :mod:`~repro.scheduling.renaming` — the qubit reuse-versus-renaming
  policy split (Section V-B): identifying sharing-after-measurement false
  dependencies and rewriting a reusing circuit into its renamed form;
* :mod:`~repro.scheduling.critical_path` — the "Theoretical Lower Bound"
  curves: dependency critical-path latency, minimum factory area, and their
  product, the volume floor no mapping can beat.
"""

from .critical_path import (
    circuit_lower_bound,
    factory_area_lower_bound,
    factory_latency_lower_bound,
    factory_volume_lower_bound,
    lower_bound_summary,
)
from .renaming import (
    count_false_dependencies,
    rename_after_measurement,
    reuse_area_savings,
    sharing_after_measurement_pairs,
)
from .schedule import (
    asap_timesteps,
    expand_barriers_to_cxx,
    insert_round_barriers,
    reorder_commuting_preparations,
    strip_barriers,
    timestep_degree_bound,
)

__all__ = [
    "circuit_lower_bound",
    "factory_area_lower_bound",
    "factory_latency_lower_bound",
    "factory_volume_lower_bound",
    "lower_bound_summary",
    "count_false_dependencies",
    "rename_after_measurement",
    "reuse_area_savings",
    "sharing_after_measurement_pairs",
    "asap_timesteps",
    "expand_barriers_to_cxx",
    "insert_round_barriers",
    "reorder_commuting_preparations",
    "strip_barriers",
    "timestep_degree_bound",
]
