"""Qubit reuse versus renaming (Section V-B).

Between two rounds of a block-code factory, every ancillary qubit is measured
for error checking at the end of the earlier round and re-initialised at the
start of the next round.  Two instructions that share such a qubit therefore
form a *sharing-after-measurement* false dependency: the second round does
not actually need the first round's data, only a fresh qubit.

The paper explores two policies, both supported by the factory builder
(:class:`repro.distillation.block_code.ReusePolicy`):

* **renaming (no reuse)** — always allocate fresh qubits, removing the false
  dependencies at the cost of area;
* **reuse** — recycle the measured qubits, saving area but constraining the
  schedule and raising the interaction-graph degree.

This module provides analysis helpers over circuits with measurements: it
identifies the sharing-after-measurement dependencies and can rewrite a
reusing circuit into its renamed (no-reuse) form, which the tests use to
verify that renaming removes exactly those dependencies.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..circuits.circuit import Circuit


def sharing_after_measurement_pairs(circuit: Circuit) -> List[Tuple[int, int]]:
    """Gate-index pairs that share a qubit across a measurement.

    Returns pairs ``(measure_index, reuse_index)`` where the gate at
    ``reuse_index`` touches a qubit that was measured by the gate at
    ``measure_index`` (with no intervening gate on that qubit).  These are
    exactly the false dependencies introduced by qubit reuse.
    """
    last_measured_by: Dict[int, int] = {}
    pairs: List[Tuple[int, int]] = []
    for index, gate in enumerate(circuit):
        if gate.is_barrier:
            continue
        for qubit in gate.qubits:
            if qubit in last_measured_by:
                pairs.append((last_measured_by[qubit], index))
                del last_measured_by[qubit]
        if gate.kind.is_measurement:
            for qubit in gate.qubits:
                last_measured_by[qubit] = index
    return pairs


def count_false_dependencies(circuit: Circuit) -> int:
    """Number of sharing-after-measurement dependencies in the circuit."""
    return len(sharing_after_measurement_pairs(circuit))


def rename_after_measurement(circuit: Circuit) -> Tuple[Circuit, Dict[int, List[int]]]:
    """Rewrite a circuit so measured qubits are never reused.

    Every time a gate touches a qubit that has been measured, the qubit is
    given a brand-new index from a fresh ``renamed`` register.  Returns the
    rewritten circuit and a map from original qubit index to the list of
    replacement indices it was renamed to (in order of renaming).

    The rewritten circuit has zero sharing-after-measurement dependencies,
    which is the renaming policy's defining property.
    """
    # First pass: count how many fresh qubits are needed.
    measured: Set[int] = set()
    renames_needed = 0
    for gate in circuit:
        if gate.is_barrier:
            continue
        for qubit in gate.qubits:
            if qubit in measured:
                measured.discard(qubit)
                renames_needed += 1
        if gate.kind.is_measurement:
            measured.update(gate.qubits)

    renamed = Circuit(f"{circuit.name}_renamed")
    for register in circuit.registers.values():
        renamed.add_register(register.name, register.size)
    fresh_register = None
    if renames_needed:
        fresh_register = renamed.add_register("renamed", renames_needed)

    current_name: Dict[int, int] = {}
    measured_now: Set[int] = set()
    rename_log: Dict[int, List[int]] = {}
    next_fresh = 0

    for gate in circuit:
        if gate.is_barrier:
            renamed.append(gate)
            continue
        mapping: Dict[int, int] = {}
        for qubit in gate.qubits:
            live_name = current_name.get(qubit, qubit)
            if live_name in measured_now:
                fresh = fresh_register[next_fresh]
                next_fresh += 1
                current_name[qubit] = fresh
                rename_log.setdefault(qubit, []).append(fresh)
                measured_now.discard(live_name)
                live_name = fresh
            mapping[qubit] = live_name
        renamed.append(gate.remap(mapping))
        if gate.kind.is_measurement:
            for qubit in gate.qubits:
                measured_now.add(current_name.get(qubit, qubit))
    return renamed, rename_log


def reuse_area_savings(circuit: Circuit) -> int:
    """How many qubits the reuse policy saves over renaming for this circuit.

    Computed constructively: rewrite the circuit with
    :func:`rename_after_measurement` and count the fresh qubits the renamed
    form needed.  This is the area side of the reuse trade-off — the
    schedule side (the false dependencies reuse introduces) is what
    :func:`count_false_dependencies` measures, and the two together explain
    the paper's Fig. 9 reuse ablation.
    """
    renamed, rename_log = rename_after_measurement(circuit)
    return renamed.num_qubits - circuit.num_qubits
