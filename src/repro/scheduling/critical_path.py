"""Theoretical lower bounds on factory latency and volume.

The "Theoretical Lower Bound" curves of Fig. 7 and the "Critical" row of
Table I use the circuit's dependency critical path: no mapping, however
clever, can execute the schedule faster than its longest chain of dependent
gates.  The corresponding volume lower bound multiplies that latency by the
minimum logical area a factory of the given capacity needs (its logical
qubit count).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..circuits.dag import critical_path_length
from ..distillation.block_code import FactorySpec, ReusePolicy, build_factory


def circuit_lower_bound(circuit_or_gates, durations: Optional[dict] = None) -> int:
    """Critical-path latency (cycles) of any circuit.

    The longest chain of dependent gates, weighted by gate duration: the
    fastest any mapping could possibly run the schedule, since dependent
    gates can never overlap regardless of where their qubits sit.
    ``durations`` defaults to the simulator's cycle model
    (:data:`~repro.circuits.gates.DEFAULT_DURATIONS`), so the bound is
    directly comparable to :func:`repro.routing.simulate` latencies.
    """
    return critical_path_length(circuit_or_gates, durations)


def factory_latency_lower_bound(
    spec: FactorySpec, durations: Optional[dict] = None
) -> int:
    """Critical-path latency of a block-code factory of the given spec.

    Barriers are omitted (they only add dependencies), and the no-reuse
    policy is used so that no false dependency inflates the bound — this is
    the most permissive schedule the factory could possibly follow.
    """
    factory = build_factory(
        spec, reuse_policy=ReusePolicy.NO_REUSE, barriers_between_rounds=False
    )
    return critical_path_length(factory.circuit, durations)


def factory_area_lower_bound(spec: FactorySpec) -> int:
    """Minimum logical area of the factory: the qubits of its largest round.

    A round needs all of its modules live at once (each module holds
    ``5k + 13`` logical qubits including the raw states it is absorbing), and
    rounds can in principle reuse each other's space, so the largest round
    sets the floor.
    """
    per_module = 5 * spec.k + 13
    return max(
        spec.modules_in_round(round_index) * per_module
        for round_index in range(1, spec.levels + 1)
    )


def factory_volume_lower_bound(
    spec: FactorySpec, durations: Optional[dict] = None
) -> int:
    """Critical space-time volume: latency bound times area bound."""
    return factory_latency_lower_bound(spec, durations) * factory_area_lower_bound(spec)


def lower_bound_summary(spec: FactorySpec) -> Dict[str, int]:
    """Latency, area and volume lower bounds for a spec as a dictionary."""
    latency = factory_latency_lower_bound(spec)
    area = factory_area_lower_bound(spec)
    return {"latency": latency, "area": area, "volume": latency * area}
