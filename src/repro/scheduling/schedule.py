"""Gate scheduling utilities: barriers, round slicing and list scheduling.

Section V-A of the paper studies instruction-level scheduling for distillation
circuits.  The main findings reproduced here:

* the block-code structure leaves little gate mobility across rounds, so
  inserting a **barrier** at the end of every round barely lengthens the
  dependency critical path while exposing the per-round planarity that the
  stitching mapper relies on;
* barriers are realised physically as a multi-target CNOT controlled by an
  ancilla prepared in |0>, targeting every qubit the schedule wishes to
  constrain — this module provides both the abstract ``BARRIER`` form and
  that physical expansion;
* a greedy ASAP list schedule groups gates into timesteps, which is what the
  per-timestep dipole-colouring argument of Section VI-B.1 refers to.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..circuits.circuit import Circuit
from ..circuits.dag import asap_levels, build_dependency_dag
from ..circuits.gates import Gate, GateKind, barrier, cxx, prep


def insert_round_barriers(
    circuit: Circuit, round_slices: Sequence[Tuple[int, int]]
) -> Circuit:
    """Insert a machine-wide barrier after each of the given gate slices.

    ``round_slices`` lists ``(start, stop)`` gate-index ranges (as stored in
    :attr:`repro.distillation.block_code.Factory.round_gate_slices`); a
    barrier is appended after every slice except the last.  Returns a new
    circuit over the same registers.
    """
    gates: List[Gate] = []
    for index, (start, stop) in enumerate(round_slices):
        gates.extend(g for g in circuit.gates[start:stop] if not g.is_barrier)
        if index < len(round_slices) - 1:
            gates.append(barrier(tag=f"barrier.after_slice{index}"))
    return circuit.with_gates(gates, name=f"{circuit.name}_barriered")


def strip_barriers(circuit: Circuit) -> Circuit:
    """Remove every barrier pseudo-gate (the no-barrier ablation)."""
    gates = [gate for gate in circuit if not gate.is_barrier]
    return circuit.with_gates(gates, name=f"{circuit.name}_nobarrier")


def expand_barriers_to_cxx(circuit: Circuit) -> Circuit:
    """Replace barrier pseudo-gates with their physical realisation.

    Each barrier becomes a freshly prepared |0> ancilla controlling a
    multi-target CNOT over every qubit allocated so far (Section VIII-A).
    The ancillas are appended to a dedicated ``barrier_anc`` register.
    """
    barrier_count = sum(1 for gate in circuit if gate.is_barrier)
    expanded = Circuit(f"{circuit.name}_physical_barriers")
    for register in circuit.registers.values():
        expanded.add_register(register.name, register.size)
    ancillas = None
    if barrier_count:
        ancillas = expanded.add_register("barrier_anc", barrier_count)

    barrier_index = 0
    machine_qubits = list(range(circuit.num_qubits))
    for gate in circuit:
        if gate.is_barrier:
            ancilla = ancillas[barrier_index]
            barrier_index += 1
            expanded.append(prep(ancilla, tag=gate.tag))
            expanded.append(cxx(ancilla, machine_qubits, tag=gate.tag))
        else:
            expanded.append(gate)
    return expanded


def asap_timesteps(circuit_or_gates) -> List[List[int]]:
    """Group gate indices into ASAP timesteps (unit-duration list schedule)."""
    gates = (
        circuit_or_gates.gates
        if isinstance(circuit_or_gates, Circuit)
        else tuple(circuit_or_gates)
    )
    if not gates:
        return []
    dag = build_dependency_dag(gates)
    levels = asap_levels(dag)
    buckets: List[List[int]] = [[] for _ in range(max(levels) + 1)]
    for index, level in enumerate(levels):
        buckets[level].append(index)
    return buckets


def timestep_degree_bound(circuit_or_gates, include_multi_target: bool = True) -> int:
    """Maximum number of two-qubit interactions any qubit has within a timestep.

    The paper argues (Section VI-B.1) that per timestep the two-qubit part of
    the interaction graph is a disjoint union of paths — degree at most 2 —
    which is what makes the dipole 2-colouring well defined.  The
    single-control multi-target CNOTs are treated separately (the paper views
    them as vertex-disjoint paths rather than stars); pass
    ``include_multi_target=False`` to reproduce the paper's bound.
    """
    gates = (
        circuit_or_gates.gates
        if isinstance(circuit_or_gates, Circuit)
        else tuple(circuit_or_gates)
    )
    worst = 0
    for step in asap_timesteps(gates):
        degree: Dict[int, int] = {}
        for index in step:
            gate = gates[index]
            if not include_multi_target and gate.kind is GateKind.CXX:
                continue
            for a, b in gate.interaction_pairs():
                degree[a] = degree.get(a, 0) + 1
                degree[b] = degree.get(b, 0) + 1
        if degree:
            worst = max(worst, max(degree.values()))
    return worst


def reorder_commuting_preparations(circuit: Circuit) -> Circuit:
    """Hoist state preparations and Hadamards as early as dependencies allow.

    This models the limited gate-mobility optimisation the paper performs by
    hand (Section VIII-A): preparation-layer gates commute with everything
    that does not touch their qubit, so they can be issued at the start of
    their round.  The transformation preserves the relative order of gates
    that share a qubit, so the dependency structure is unchanged.
    """
    early_kinds = {GateKind.PREP, GateKind.H}
    early: List[Gate] = []
    rest: List[Gate] = []
    touched: set = set()
    for gate in circuit:
        if gate.kind in early_kinds and not (set(gate.qubits) & touched):
            early.append(gate)
        else:
            rest.append(gate)
            touched.update(gate.qubits)
    return circuit.with_gates(early + rest, name=f"{circuit.name}_hoisted")
