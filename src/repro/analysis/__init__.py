"""Evaluation machinery: volume accounting, correlation study, capacity sweeps."""

from .correlation import (
    CorrelationStudy,
    MappingSample,
    collect_samples,
    correlation_study,
)
from .sweeps import (
    MAPPING_METHODS,
    METHOD_LABELS,
    FactoryEvaluation,
    best_volume_by_method,
    capacity_sweep,
    evaluate_factory_mapping,
    format_sweep_table,
)
from .volume import (
    EvaluationResult,
    evaluate_mapping,
    mapping_area,
    occupied_bounding_box,
)

__all__ = [
    "CorrelationStudy",
    "MappingSample",
    "collect_samples",
    "correlation_study",
    "MAPPING_METHODS",
    "METHOD_LABELS",
    "FactoryEvaluation",
    "best_volume_by_method",
    "capacity_sweep",
    "evaluate_factory_mapping",
    "format_sweep_table",
    "EvaluationResult",
    "evaluate_mapping",
    "mapping_area",
    "occupied_bounding_box",
]
