"""Area / latency / volume accounting for evaluated mappings.

The paper reports three quantities per factory configuration (Fig. 10,
Table I): circuit latency in cycles, circuit area in logical qubits, and
their product, the space-time ("quantum") volume.  This module defines how a
placement plus a simulation result are turned into those numbers:

* **latency** — the simulator's completion time;
* **area** — the bounding-box area of the tiles the mapping actually uses
  (a compact layout is credited for its compactness; a mapping that spreads
  qubits over a huge grid pays for the space its braids roam over);
* **volume** — area times latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..mapping.placement import Placement
from ..routing.simulator import (
    SimulationCache,
    SimulationResult,
    SimulatorConfig,
    simulate,
)


def occupied_bounding_box(placement: Placement) -> Dict[str, int]:
    """Tight bounding box of the occupied cells.

    Returns ``{"row0", "col0", "row1", "col1", "height", "width", "area"}``
    with half-open upper bounds.  An empty placement has zero area.
    """
    if not placement.positions:
        return {
            "row0": 0,
            "col0": 0,
            "row1": 0,
            "col1": 0,
            "height": 0,
            "width": 0,
            "area": 0,
        }
    rows = [cell[0] for cell in placement.positions.values()]
    cols = [cell[1] for cell in placement.positions.values()]
    row0, row1 = min(rows), max(rows) + 1
    col0, col1 = min(cols), max(cols) + 1
    return {
        "row0": row0,
        "col0": col0,
        "row1": row1,
        "col1": col1,
        "height": row1 - row0,
        "width": col1 - col0,
        "area": (row1 - row0) * (col1 - col0),
    }


def mapping_area(placement: Placement) -> int:
    """The area metric used in all reported results (bounding-box tiles)."""
    return occupied_bounding_box(placement)["area"]


@dataclass(frozen=True)
class EvaluationResult:
    """Latency / area / volume of one circuit under one mapping.

    ``stall_events`` is the legacy retry count, ``distinct_stalls`` /
    ``wakeups`` the event-driven engine's counters — see
    :class:`~repro.routing.simulator.SimulationResult` for the exact
    semantics of the three.
    """

    latency: int
    area: int
    stall_cycles: int
    stall_events: int
    braided_gates: int
    distinct_stalls: int = 0
    wakeups: int = 0

    @property
    def volume(self) -> int:
        """Space-time volume in qubit-cycles."""
        return self.latency * self.area


def evaluate_mapping(
    circuit_or_gates,
    placement: Placement,
    config: Optional[SimulatorConfig] = None,
    cache: Optional[SimulationCache] = None,
) -> EvaluationResult:
    """Simulate a circuit on a placement and report latency/area/volume.

    With ``cache`` given, the simulation is memoized through it (the
    simulator is deterministic, so this never changes results — repeated
    sweep points just skip the re-simulation).
    """
    if cache is not None:
        result: SimulationResult = cache.simulate(circuit_or_gates, placement, config)
    else:
        result = simulate(circuit_or_gates, placement, config)
    return EvaluationResult(
        latency=result.latency,
        area=mapping_area(placement),
        stall_cycles=result.stall_cycles,
        stall_events=result.stall_events,
        braided_gates=result.braided_gates,
        distinct_stalls=result.distinct_stalls,
        wakeups=result.wakeups,
    )
