"""Capacity sweeps driving every mapper through the build-map-simulate flow.

This is the evaluation harness shared by the figures and tables of the
paper's Section VIII.  The heavy lifting now lives in :mod:`repro.api`:
mapping procedures are looked up in the pluggable mapper registry and runs
go through :class:`repro.api.Pipeline`, which caches built factory circuits
across the mappers of a sweep and memoizes simulation results.  Sweeps can
run in parallel: :func:`capacity_sweep` takes ``workers=N``, and
:class:`SweepPlan` / :class:`SweepExecutor` / :func:`run_sweep` (re-exported
from :mod:`repro.api.executor`) expose the full plan-based execution model
with deterministic result ordering.  :func:`evaluate_factory_mapping` and
:func:`capacity_sweep` are kept here as thin, backward-compatible delegates
so existing callers (experiments, benchmarks, notebooks) keep working
unchanged; new code should prefer :mod:`repro.api` directly.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence

# Re-exported for backward compatibility: these names historically lived in
# this module and are imported from here throughout the test-suite.  The
# __all__ below is what marks them as deliberate re-exports for linters.
from ..api.executor import (
    SweepExecutor,
    SweepPlan,
    SweepRunResult,
    run_sweep,
)
from ..api.pipeline import capacity_sweep, evaluate_factory_mapping
from ..api.results import FactoryEvaluation

__all__ = [
    "FactoryEvaluation",
    "MAPPING_METHODS",
    "SweepExecutor",
    "SweepPlan",
    "SweepRunResult",
    "capacity_sweep",
    "evaluate_factory_mapping",
    "run_sweep",
]

#: Mapping methods shipped with the toolchain, in the order the paper
#: introduces them.  The authoritative list is the mapper registry
#: (:func:`repro.api.available_mappers`), which also includes any
#: third-party registrations.
MAPPING_METHODS = (
    "random",
    "linear",
    "force_directed",
    "graph_partition",
    "hierarchical_stitching",
)

#: Short labels used in printed tables, matching Table I's row names.
METHOD_LABELS = {
    "random": "Random",
    "linear": "Line",
    "force_directed": "FD",
    "graph_partition": "GP",
    "hierarchical_stitching": "HS",
    "critical": "Critical",
}


def best_volume_by_method(
    results: Iterable[FactoryEvaluation],
) -> Dict[str, Dict[int, FactoryEvaluation]]:
    """Group results as ``{method: {capacity: best evaluation}}``.

    When the same (method, capacity) appears more than once — e.g. with and
    without qubit reuse — the lowest-volume entry wins, which is how the
    paper's final plots pick each procedure's best configuration
    (Section VIII-C.2).
    """
    table: Dict[str, Dict[int, FactoryEvaluation]] = {}
    for result in results:
        by_capacity = table.setdefault(result.method, {})
        existing = by_capacity.get(result.capacity)
        if existing is None or result.volume < existing.volume:
            by_capacity[result.capacity] = result
    return table


def format_sweep_table(
    results: Sequence[FactoryEvaluation], value: str = "volume"
) -> str:
    """Render a sweep as a fixed-width table (capacities as columns).

    ``value`` selects which field to show: ``"volume"``, ``"latency"`` or
    ``"area"``.
    """
    if value not in ("volume", "latency", "area"):
        raise ValueError(f"unknown value field {value!r}")
    capacities = sorted({result.capacity for result in results})
    methods = []
    for result in results:
        if result.method not in methods:
            methods.append(result.method)
    grouped = best_volume_by_method(results)

    header = ["method".ljust(24)] + [
        f"K={capacity}".rjust(12) for capacity in capacities
    ]
    lines = ["".join(header)]
    for method in methods:
        row = [METHOD_LABELS.get(method, method).ljust(24)]
        for capacity in capacities:
            entry = grouped.get(method, {}).get(capacity)
            if entry is None:
                row.append("-".rjust(12))
            else:
                row.append(f"{getattr(entry, value):.3g}".rjust(12))
        lines.append("".join(row))
    return "\n".join(lines)
