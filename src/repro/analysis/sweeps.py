"""Capacity sweeps driving every mapper through the build-map-simulate flow.

This is the evaluation harness shared by the figures and tables of the
paper's Section VIII: given a factory configuration (per-module capacity,
number of levels, qubit-reuse policy) and a mapping method, it builds the
factory circuit, produces the placement, runs the braid simulator and
reports latency, area and space-time volume together with the theoretical
lower bounds.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Sequence

from ..distillation.block_code import FactorySpec, ReusePolicy, build_factory
from ..graphs.interaction import interaction_graph
from ..mapping.force_directed import ForceDirectedConfig, force_directed_refine
from ..mapping.graph_partition import graph_partition_placement
from ..mapping.linear import linear_factory_placement
from ..mapping.random_map import random_circuit_placement
from ..mapping.stitching import StitchingConfig, hierarchical_stitching
from ..routing.simulator import SimulatorConfig
from ..scheduling.critical_path import (
    factory_area_lower_bound,
    factory_latency_lower_bound,
)
from .volume import EvaluationResult, evaluate_mapping

#: Mapping methods understood by the sweep harness, in the order the paper
#: introduces them.
MAPPING_METHODS = (
    "random",
    "linear",
    "force_directed",
    "graph_partition",
    "hierarchical_stitching",
)

#: Short labels used in printed tables, matching Table I's row names.
METHOD_LABELS = {
    "random": "Random",
    "linear": "Line",
    "force_directed": "FD",
    "graph_partition": "GP",
    "hierarchical_stitching": "HS",
    "critical": "Critical",
}


@dataclass(frozen=True)
class FactoryEvaluation:
    """One (method, capacity, levels, reuse) evaluation data point."""

    method: str
    capacity: int
    levels: int
    reuse: bool
    latency: int
    area: int
    volume: int
    critical_latency: int
    critical_area: int
    stall_cycles: int

    @property
    def critical_volume(self) -> int:
        """Lower-bound volume (critical latency times minimum area)."""
        return self.critical_latency * self.critical_area

    @property
    def volume_over_critical(self) -> float:
        """How far above the lower bound this configuration landed."""
        if self.critical_volume == 0:
            return float("inf")
        return self.volume / self.critical_volume


def _reuse_policy(reuse: bool) -> ReusePolicy:
    return ReusePolicy.REUSE if reuse else ReusePolicy.NO_REUSE


def evaluate_factory_mapping(
    method: str,
    capacity: int,
    levels: int = 1,
    reuse: bool = False,
    seed: int = 0,
    fd_config: Optional[ForceDirectedConfig] = None,
    stitch_config: Optional[StitchingConfig] = None,
    sim_config: Optional[SimulatorConfig] = None,
) -> FactoryEvaluation:
    """Build, map and simulate one factory configuration.

    ``capacity`` is the total output capacity of the factory (``k`` for a
    single-level factory, ``k**2`` for a two-level one, matching the x-axes
    of Fig. 7 and Fig. 10).
    """
    if method not in MAPPING_METHODS:
        raise ValueError(
            f"unknown mapping method {method!r}; expected one of {MAPPING_METHODS}"
        )
    spec = FactorySpec.from_capacity(capacity, levels)
    reuse_policy = _reuse_policy(reuse)
    sim_config = sim_config or SimulatorConfig()

    if method == "hierarchical_stitching":
        stitched = hierarchical_stitching(
            spec, reuse_policy=reuse_policy, config=stitch_config
        )
        hop_config = replace(sim_config, hops=stitched.hops)
        evaluation = evaluate_mapping(
            stitched.factory.circuit, stitched.placement, hop_config
        )
    else:
        # Barriers model the end-of-round checkpoints of the block-code
        # protocol (Section II-G); every mapper is evaluated on the same
        # barriered schedule so the comparison isolates mapping quality.
        factory = build_factory(
            spec, reuse_policy=reuse_policy, barriers_between_rounds=True
        )
        if method == "random":
            placement = random_circuit_placement(factory.circuit, seed=seed)
        elif method == "linear":
            placement = linear_factory_placement(factory)
        elif method == "force_directed":
            initial = linear_factory_placement(factory)
            graph = interaction_graph(factory.circuit)
            placement = force_directed_refine(
                graph, initial, fd_config or ForceDirectedConfig(seed=seed)
            )
        elif method == "graph_partition":
            placement = graph_partition_placement(factory.circuit, seed=seed)
        else:  # pragma: no cover - guarded above
            raise AssertionError(method)
        evaluation = evaluate_mapping(factory.circuit, placement, sim_config)

    return FactoryEvaluation(
        method=method,
        capacity=capacity,
        levels=levels,
        reuse=reuse,
        latency=evaluation.latency,
        area=evaluation.area,
        volume=evaluation.volume,
        critical_latency=factory_latency_lower_bound(spec, dict(sim_config.durations)),
        critical_area=factory_area_lower_bound(spec),
        stall_cycles=evaluation.stall_cycles,
    )


def capacity_sweep(
    methods: Sequence[str],
    capacities: Sequence[int],
    levels: int = 1,
    reuse: bool = False,
    seed: int = 0,
    fd_config: Optional[ForceDirectedConfig] = None,
    stitch_config: Optional[StitchingConfig] = None,
    sim_config: Optional[SimulatorConfig] = None,
) -> List[FactoryEvaluation]:
    """Evaluate every (method, capacity) combination.

    Results are returned in (capacity-major, method-minor) order so tables
    can be assembled by simple grouping.
    """
    results: List[FactoryEvaluation] = []
    for capacity in capacities:
        for method in methods:
            results.append(
                evaluate_factory_mapping(
                    method,
                    capacity,
                    levels=levels,
                    reuse=reuse,
                    seed=seed,
                    fd_config=fd_config,
                    stitch_config=stitch_config,
                    sim_config=sim_config,
                )
            )
    return results


def best_volume_by_method(
    results: Iterable[FactoryEvaluation],
) -> Dict[str, Dict[int, FactoryEvaluation]]:
    """Group results as ``{method: {capacity: best evaluation}}``.

    When the same (method, capacity) appears more than once — e.g. with and
    without qubit reuse — the lowest-volume entry wins, which is how the
    paper's final plots pick each procedure's best configuration
    (Section VIII-C.2).
    """
    table: Dict[str, Dict[int, FactoryEvaluation]] = {}
    for result in results:
        by_capacity = table.setdefault(result.method, {})
        existing = by_capacity.get(result.capacity)
        if existing is None or result.volume < existing.volume:
            by_capacity[result.capacity] = result
    return table


def format_sweep_table(results: Sequence[FactoryEvaluation], value: str = "volume") -> str:
    """Render a sweep as a fixed-width table (capacities as columns).

    ``value`` selects which field to show: ``"volume"``, ``"latency"`` or
    ``"area"``.
    """
    if value not in ("volume", "latency", "area"):
        raise ValueError(f"unknown value field {value!r}")
    capacities = sorted({result.capacity for result in results})
    methods = []
    for result in results:
        if result.method not in methods:
            methods.append(result.method)
    grouped = best_volume_by_method(results)

    header = ["method".ljust(24)] + [f"K={capacity}".rjust(12) for capacity in capacities]
    lines = ["".join(header)]
    for method in methods:
        row = [METHOD_LABELS.get(method, method).ljust(24)]
        for capacity in capacities:
            entry = grouped.get(method, {}).get(capacity)
            if entry is None:
                row.append("-".rjust(12))
            else:
                row.append(f"{getattr(entry, value):.3g}".rjust(12))
        lines.append("".join(row))
    return "\n".join(lines)
