"""Metric-versus-latency correlation study (Fig. 6).

The paper motivates its force-directed heuristics by showing, over a
population of randomized mappings of a distillation circuit, how strongly
each geometric metric of the mapping correlates with the latency realised by
the braid simulator:

* number of edge crossings      r =  0.831
* average edge Manhattan length r =  0.601
* average edge spacing          r = -0.625

This module draws that population (random placements with distinct seeds),
simulates every mapping, computes the three metrics and the Pearson
correlation coefficients, reproducing the bottom row of Fig. 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional

from ..api.results import filter_fields
from ..circuits.circuit import Circuit
from ..graphs.interaction import interaction_graph
from ..graphs.metrics import mapping_metrics, pearson_correlation
from ..mapping.random_map import random_placements
from ..routing.simulator import SimulatorConfig, simulate


@dataclass(frozen=True)
class MappingSample:
    """One randomized mapping's metrics and simulated latency."""

    seed: int
    edge_crossings: float
    average_edge_length: float
    average_edge_spacing: float
    latency: int

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict of the sample."""
        return {
            "seed": self.seed,
            "edge_crossings": self.edge_crossings,
            "average_edge_length": self.average_edge_length,
            "average_edge_spacing": self.average_edge_spacing,
            "latency": self.latency,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MappingSample":
        """Inverse of :meth:`to_dict`."""
        return cls(**filter_fields(cls, data))


@dataclass(frozen=True)
class CorrelationStudy:
    """The full Fig. 6 result: per-sample data plus the three r-values."""

    samples: List[MappingSample]
    crossings_r: float
    length_r: float
    spacing_r: float

    def as_dict(self) -> Dict[str, float]:
        """The r-values keyed like the paper's metric names."""
        return {
            "edge_crossings_r": self.crossings_r,
            "edge_length_r": self.length_r,
            "edge_spacing_r": self.spacing_r,
        }

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict: per-sample data plus the three r-values."""
        return {
            "samples": [sample.to_dict() for sample in self.samples],
            "crossings_r": self.crossings_r,
            "length_r": self.length_r,
            "spacing_r": self.spacing_r,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CorrelationStudy":
        """Inverse of :meth:`to_dict`."""
        payload = dict(filter_fields(cls, data))
        payload["samples"] = [
            MappingSample.from_dict(sample) for sample in payload.get("samples", [])
        ]
        return cls(**payload)


def collect_samples(
    circuit: Circuit,
    num_mappings: int = 30,
    seed: int = 0,
    slack: float = 1.5,
    config: Optional[SimulatorConfig] = None,
) -> List[MappingSample]:
    """Simulate ``num_mappings`` random placements of ``circuit``.

    A generous grid slack is used so that randomized mappings span a wide
    range of edge lengths and crossings, as in the paper's study.
    """
    graph = interaction_graph(circuit)
    qubits = list(range(circuit.num_qubits))
    placements = random_placements(
        qubits, count=num_mappings, base_seed=seed, slack=slack
    )
    samples: List[MappingSample] = []
    for index, placement in enumerate(placements):
        # One pass through the exact metrics engine (bucketed crossing
        # pruning, vectorized spacing sums); the randomized mappings here
        # are the least compact layouts the engine sees.
        metrics = mapping_metrics(graph, placement.as_float_positions())
        result = simulate(circuit, placement, config)
        samples.append(
            MappingSample(
                seed=seed + index,
                edge_crossings=metrics["edge_crossings"],
                average_edge_length=metrics["average_edge_length"],
                average_edge_spacing=metrics["average_edge_spacing"],
                latency=result.latency,
            )
        )
    return samples


def correlation_study(
    circuit: Circuit,
    num_mappings: int = 30,
    seed: int = 0,
    slack: float = 1.5,
    config: Optional[SimulatorConfig] = None,
) -> CorrelationStudy:
    """Run the full Fig. 6 study and return samples plus r-values."""
    samples = collect_samples(
        circuit, num_mappings=num_mappings, seed=seed, slack=slack, config=config
    )
    latencies = [float(sample.latency) for sample in samples]
    return CorrelationStudy(
        samples=samples,
        crossings_r=pearson_correlation(
            [s.edge_crossings for s in samples], latencies
        ),
        length_r=pearson_correlation(
            [s.average_edge_length for s in samples], latencies
        ),
        spacing_r=pearson_correlation(
            [s.average_edge_spacing for s in samples], latencies
        ),
    )
