"""Multilevel recursive graph bisection (METIS-style, pure Python).

Section VI-B.2 of the paper uses a recursive bisectioning technique in the
style of METIS / Scotch: vertices are *coarsened* by heavy-edge matching, a
minimum-weight cut is found on the contracted graph, the cut is projected
back (*uncoarsened*) and refined to repair discrepancies introduced by the
coarsening, and the whole procedure recurses on both halves.  Each graph
bisection is matched by a bisection of the physical grid, which yields the
graph-partitioning (GP) mapping evaluated throughout the paper.

This module implements the graph side of that procedure: coarsening,
balanced bisection with Kernighan-Lin-style boundary refinement, and the
recursive driver that returns a hierarchy of vertex blocks.  The grid side
(matching grid bisections and final cell assignment) lives in
:mod:`repro.mapping.graph_partition`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx


@dataclass
class Bisection:
    """Result of bisecting a vertex set into two balanced halves."""

    left: List[int]
    right: List[int]
    cut_weight: float


def heavy_edge_matching(graph: nx.Graph, seed: int = 0) -> List[Tuple[int, ...]]:
    """Contract vertices pairwise along heavy edges.

    Visits vertices in random order and matches each unmatched vertex with
    its unmatched neighbour of maximum edge weight; unmatched leftovers form
    singleton groups.  Returns the list of vertex groups (size 1 or 2) that
    become the super-vertices of the coarser graph.
    """
    rng = random.Random(seed)
    vertices = list(graph.nodes())
    rng.shuffle(vertices)
    matched: Set[int] = set()
    groups: List[Tuple[int, ...]] = []
    for vertex in vertices:
        if vertex in matched:
            continue
        best_neighbor = None
        best_weight = -1.0
        for neighbor in graph.neighbors(vertex):
            if neighbor in matched or neighbor == vertex:
                continue
            weight = graph[vertex][neighbor].get("weight", 1)
            if weight > best_weight:
                best_weight = weight
                best_neighbor = neighbor
        if best_neighbor is None:
            matched.add(vertex)
            groups.append((vertex,))
        else:
            matched.add(vertex)
            matched.add(best_neighbor)
            groups.append((vertex, best_neighbor))
    return groups


def contract(
    graph: nx.Graph, groups: Sequence[Tuple[int, ...]]
) -> Tuple[nx.Graph, Dict[int, int]]:
    """Build the coarse graph induced by ``groups``.

    Returns the coarse graph (nodes are group indices, carrying a ``size``
    attribute equal to the number of original vertices they represent) and
    the fine-vertex to coarse-node map.
    """
    coarse = nx.Graph()
    membership: Dict[int, int] = {}
    for index, group in enumerate(groups):
        size = sum(graph.nodes[v].get("size", 1) for v in group)
        coarse.add_node(index, size=size)
        for vertex in group:
            membership[vertex] = index
    for a, b, data in graph.edges(data=True):
        ca, cb = membership[a], membership[b]
        if ca == cb:
            continue
        weight = data.get("weight", 1)
        if coarse.has_edge(ca, cb):
            coarse[ca][cb]["weight"] += weight
        else:
            coarse.add_edge(ca, cb, weight=weight)
    return coarse, membership


def cut_weight(graph: nx.Graph, left: Set[int]) -> float:
    """Total weight of edges crossing the partition boundary."""
    weight = 0.0
    for a, b, data in graph.edges(data=True):
        if (a in left) != (b in left):
            weight += data.get("weight", 1)
    return weight


def _vertex_size(graph: nx.Graph, vertex: int) -> int:
    return graph.nodes[vertex].get("size", 1)


def _initial_bisection(
    graph: nx.Graph, target_left: int, seed: int = 0
) -> Set[int]:
    """Greedy BFS-based initial bisection growing a region of ``target_left`` size."""
    rng = random.Random(seed)
    vertices = list(graph.nodes())
    if not vertices:
        return set()
    start = max(vertices, key=lambda v: graph.degree(v, weight="weight"))
    left: Set[int] = set()
    left_size = 0
    frontier = [start]
    visited = {start}
    while frontier and left_size < target_left:
        vertex = frontier.pop(0)
        if left_size + _vertex_size(graph, vertex) > target_left and left:
            continue
        left.add(vertex)
        left_size += _vertex_size(graph, vertex)
        neighbors = sorted(
            (n for n in graph.neighbors(vertex) if n not in visited),
            key=lambda n: -graph[vertex][n].get("weight", 1),
        )
        for neighbor in neighbors:
            visited.add(neighbor)
            frontier.append(neighbor)
        if not frontier:
            remaining = [v for v in vertices if v not in visited]
            if remaining:
                pick = rng.choice(remaining)
                visited.add(pick)
                frontier.append(pick)
    return left


def _refine_bisection(
    graph: nx.Graph,
    left: Set[int],
    target_left: int,
    max_passes: int = 4,
    balance_tolerance: int = 1,
) -> Set[int]:
    """Kernighan-Lin style boundary refinement of a bisection.

    Repeatedly moves the boundary vertex with the best gain (reduction in cut
    weight) to the other side, subject to keeping the left-side vertex count
    within ``balance_tolerance`` of ``target_left``.
    """
    left = set(left)
    all_vertices = set(graph.nodes())

    def gain(vertex: int) -> float:
        internal = 0.0
        external = 0.0
        in_left = vertex in left
        for neighbor in graph.neighbors(vertex):
            weight = graph[vertex][neighbor].get("weight", 1)
            if (neighbor in left) == in_left:
                internal += weight
            else:
                external += weight
        return external - internal

    for _ in range(max_passes):
        moved_any = False
        boundary = [
            v
            for v in all_vertices
            if any(((n in left) != (v in left)) for n in graph.neighbors(v))
        ]
        boundary.sort(key=gain, reverse=True)
        for vertex in boundary:
            vertex_gain = gain(vertex)
            if vertex_gain <= 0:
                break
            left_size = sum(_vertex_size(graph, v) for v in left)
            size = _vertex_size(graph, vertex)
            if vertex in left:
                new_left_size = left_size - size
            else:
                new_left_size = left_size + size
            if abs(new_left_size - target_left) > balance_tolerance + max(
                0, abs(left_size - target_left)
            ):
                continue
            if vertex in left:
                left.remove(vertex)
            else:
                left.add(vertex)
            moved_any = True
        if not moved_any:
            break
    return left


def bisect(
    graph: nx.Graph,
    target_left: Optional[int] = None,
    seed: int = 0,
    coarsen_threshold: int = 32,
) -> Bisection:
    """Bisect the graph into two balanced halves with small cut weight.

    If the graph is larger than ``coarsen_threshold`` vertices, it is first
    coarsened via heavy-edge matching, bisected recursively, and the result
    projected back and refined — the classic multilevel scheme.
    """
    vertices = list(graph.nodes())
    total_size = sum(_vertex_size(graph, v) for v in vertices)
    if target_left is None:
        target_left = total_size // 2
    if len(vertices) <= 1:
        return Bisection(left=list(vertices), right=[], cut_weight=0.0)

    if len(vertices) > coarsen_threshold:
        groups = heavy_edge_matching(graph, seed=seed)
        if len(groups) < len(vertices):
            coarse, membership = contract(graph, groups)
            coarse_result = bisect(
                coarse,
                target_left=target_left,
                seed=seed + 1,
                coarsen_threshold=coarsen_threshold,
            )
            coarse_left = set(coarse_result.left)
            projected_left = {
                v for v in vertices if membership[v] in coarse_left
            }
            refined = _refine_bisection(graph, projected_left, target_left)
            left = sorted(refined)
            right = sorted(set(vertices) - refined)
            return Bisection(
                left=left, right=right, cut_weight=cut_weight(graph, refined)
            )

    initial = _initial_bisection(graph, target_left, seed=seed)
    refined = _refine_bisection(graph, initial, target_left)
    left = sorted(refined)
    right = sorted(set(vertices) - refined)
    return Bisection(left=left, right=right, cut_weight=cut_weight(graph, refined))


def recursive_bisection(
    graph: nx.Graph,
    num_parts: int,
    seed: int = 0,
) -> List[List[int]]:
    """Partition the graph into ``num_parts`` balanced blocks recursively.

    The recursion splits the requested part count as evenly as possible at
    every level (left gets ``ceil(parts/2)`` parts), so non-power-of-two part
    counts are supported.  Returns the blocks in recursion order.
    """
    if num_parts < 1:
        raise ValueError(f"num_parts must be >= 1, got {num_parts}")
    vertices = list(graph.nodes())
    if num_parts == 1 or len(vertices) <= 1:
        return [sorted(vertices)]
    left_parts = (num_parts + 1) // 2
    right_parts = num_parts - left_parts
    total = len(vertices)
    target_left = round(total * left_parts / num_parts)
    result = bisect(graph, target_left=target_left, seed=seed)
    left_graph = graph.subgraph(result.left).copy()
    right_graph = graph.subgraph(result.right).copy()
    blocks = recursive_bisection(left_graph, left_parts, seed=seed * 2 + 1)
    blocks += recursive_bisection(right_graph, right_parts, seed=seed * 2 + 2)
    return blocks
