"""Community detection and clustering utilities for interaction graphs.

Section VI-B.1 of the paper uses community structure in two ways:

* the force-directed annealer alternates between local force moves and
  higher-level *community* moves — repulsing distinct communities away from
  each other or pulling a fragmented community back together — to escape
  local minima;
* the KMeans clustering algorithm is used to locate the spatial centroids of
  the clusters a community has broken into, so that an attraction force of
  the right magnitude can rejoin them.

This module provides community detection (greedy modularity with a
label-propagation fallback) plus a small dependency-free KMeans implementation
operating on 2-D placement coordinates.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import networkx as nx

Position = Tuple[float, float]


def detect_communities(
    graph: nx.Graph, max_communities: Optional[int] = None, seed: int = 0
) -> List[List[int]]:
    """Partition the graph's vertices into communities.

    Uses greedy modularity maximisation (Clauset-Newman-Moore, one of the
    classic approaches cited in the paper's Section VI-B.1 reference list).
    Isolated vertices are grouped into their own trailing community.  If
    ``max_communities`` is given, the smallest communities are merged until
    the bound is met.
    """
    if graph.number_of_nodes() == 0:
        return []
    connected_nodes = [node for node, degree in graph.degree() if degree > 0]
    isolated = [node for node, degree in graph.degree() if degree == 0]

    communities: List[List[int]] = []
    if connected_nodes:
        core = graph.subgraph(connected_nodes)
        try:
            detected = nx.community.greedy_modularity_communities(core, weight="weight")
            communities = [sorted(c) for c in detected]
        except (nx.NetworkXError, ZeroDivisionError):
            detected = nx.community.label_propagation_communities(core)
            communities = [sorted(c) for c in detected]
    if isolated:
        communities.append(sorted(isolated))

    if max_communities is not None and len(communities) > max_communities:
        communities.sort(key=len, reverse=True)
        kept = communities[: max_communities - 1]
        merged = sorted(
            q for community in communities[max_communities - 1 :] for q in community
        )
        kept.append(merged)
        communities = kept
    return communities


def community_of(communities: Sequence[Sequence[int]]) -> Dict[int, int]:
    """Invert a community list into a ``{vertex: community index}`` map."""
    assignment: Dict[int, int] = {}
    for index, community in enumerate(communities):
        for vertex in community:
            assignment[vertex] = index
    return assignment


def community_centroid(
    community: Sequence[int], positions: Mapping[int, Position]
) -> Position:
    """Spatial centroid of the placed vertices of one community."""
    placed = [positions[v] for v in community if v in positions]
    if not placed:
        return (0.0, 0.0)
    return (
        sum(p[0] for p in placed) / len(placed),
        sum(p[1] for p in placed) / len(placed),
    )


def kmeans(
    points: Sequence[Position],
    num_clusters: int,
    max_iterations: int = 50,
    seed: int = 0,
) -> Tuple[List[Position], List[int]]:
    """Small 2-D KMeans used to find cluster centroids within a community.

    Returns ``(centroids, assignment)`` where ``assignment[i]`` is the
    cluster index of ``points[i]``.  Initialisation follows the kmeans++
    heuristic (choose each next seed with probability proportional to the
    squared distance from the nearest existing seed).
    """
    if num_clusters < 1:
        raise ValueError(f"num_clusters must be >= 1, got {num_clusters}")
    if not points:
        return [], []
    num_clusters = min(num_clusters, len(points))
    rng = random.Random(seed)

    # kmeans++ seeding.
    centroids: List[Position] = [points[rng.randrange(len(points))]]
    while len(centroids) < num_clusters:
        distances = [
            min((p[0] - c[0]) ** 2 + (p[1] - c[1]) ** 2 for c in centroids)
            for p in points
        ]
        total = sum(distances)
        if total <= 0:
            centroids.append(points[rng.randrange(len(points))])
            continue
        threshold = rng.random() * total
        cumulative = 0.0
        for point, distance in zip(points, distances):
            cumulative += distance
            if cumulative >= threshold:
                centroids.append(point)
                break

    assignment = [0] * len(points)
    for _ in range(max_iterations):
        changed = False
        for index, point in enumerate(points):
            best = min(
                range(len(centroids)),
                key=lambda c: (point[0] - centroids[c][0]) ** 2
                + (point[1] - centroids[c][1]) ** 2,
            )
            if best != assignment[index]:
                assignment[index] = best
                changed = True
        new_centroids: List[Position] = []
        for cluster in range(len(centroids)):
            members = [
                points[i] for i in range(len(points)) if assignment[i] == cluster
            ]
            if members:
                new_centroids.append(
                    (
                        sum(p[0] for p in members) / len(members),
                        sum(p[1] for p in members) / len(members),
                    )
                )
            else:
                new_centroids.append(centroids[cluster])
        centroids = new_centroids
        if not changed:
            break
    return centroids, assignment


def community_fragmentation(
    community: Sequence[int],
    positions: Mapping[int, Position],
    cluster_gap: float = 3.0,
    seed: int = 0,
) -> Tuple[List[Position], List[List[int]]]:
    """Detect whether a community has fragmented into spatial clusters.

    Runs KMeans with ``k = 2`` and reports the clusters only if their
    centroids are more than ``cluster_gap`` apart — otherwise the community is
    considered contiguous and a single cluster is returned.  The force-directed
    annealer uses the centroids to aim its community-joining attraction force.
    """
    placed = [v for v in community if v in positions]
    if len(placed) < 2:
        return (
            [community_centroid(community, positions)],
            [list(community)],
        )
    points = [positions[v] for v in placed]
    centroids, assignment = kmeans(points, num_clusters=2, seed=seed)
    if len(centroids) < 2:
        return [centroids[0]], [list(placed)]
    gap = math.hypot(
        centroids[0][0] - centroids[1][0], centroids[0][1] - centroids[1][1]
    )
    if gap <= cluster_gap:
        return [community_centroid(placed, positions)], [list(placed)]
    clusters: List[List[int]] = [[], []]
    for vertex, cluster in zip(placed, assignment):
        clusters[cluster].append(vertex)
    clusters = [c for c in clusters if c]
    return centroids[: len(clusters)], clusters
