"""Program interaction graphs.

Section VI of the paper defines the *program interaction graph* ``G = (V, E)``
of a schedule: vertices are the logical qubits of the computation and edges
are the two-qubit interactions (CNOT braids, injections, and the
control-target pairs of multi-target CXX gates).  All of the paper's mapping
algorithms operate on this graph, so this module is the bridge between the
circuit IR and the mappers.

Edges carry a ``weight`` attribute equal to the number of gates between the
endpoints, and a ``gates`` attribute listing the gate indices, so mappers can
weight frequently-interacting pairs more heavily and analyses can recover the
originating schedule positions.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

from ..circuits.circuit import Circuit
from ..circuits.gates import Gate


def interaction_graph(
    circuit_or_gates, include_qubits: Optional[Iterable[int]] = None
) -> nx.Graph:
    """Build the interaction graph of a circuit or gate sequence.

    Parameters
    ----------
    circuit_or_gates:
        A :class:`~repro.circuits.circuit.Circuit` or an iterable of gates.
    include_qubits:
        Optional collection of qubits that must appear as vertices even if
        they participate in no two-qubit gate (e.g. the raw-state qubits of a
        factory round, which the mapper still has to place).
    """
    gates: Sequence[Gate]
    if isinstance(circuit_or_gates, Circuit):
        gates = circuit_or_gates.gates
        default_vertices: Iterable[int] = range(circuit_or_gates.num_qubits)
    else:
        gates = tuple(circuit_or_gates)
        default_vertices = ()

    graph = nx.Graph()
    vertices = include_qubits if include_qubits is not None else default_vertices
    graph.add_nodes_from(vertices)

    for gate_index, gate in enumerate(gates):
        if gate.is_barrier:
            continue
        for qubit in gate.qubits:
            if qubit not in graph:
                graph.add_node(qubit)
        for a, b in gate.interaction_pairs():
            if graph.has_edge(a, b):
                graph[a][b]["weight"] += 1
                graph[a][b]["gates"].append(gate_index)
            else:
                graph.add_edge(a, b, weight=1, gates=[gate_index])
    return graph


def interaction_edges(circuit_or_gates) -> List[Tuple[int, int]]:
    """Flat list of two-qubit interaction pairs, one per gate occurrence."""
    gates: Sequence[Gate]
    if isinstance(circuit_or_gates, Circuit):
        gates = circuit_or_gates.gates
    else:
        gates = tuple(circuit_or_gates)
    edges: List[Tuple[int, int]] = []
    for gate in gates:
        if gate.is_barrier:
            continue
        edges.extend(gate.interaction_pairs())
    return edges


def degree_statistics(graph: nx.Graph) -> Dict[str, float]:
    """Basic degree statistics used in the qubit-reuse analysis (Section VIII-C).

    Returns a dict with ``min``, ``max`` and ``mean`` vertex degree.  The
    paper observes that qubit reuse increases the average degree of the
    interaction graph (false dependencies add edges), which is why the
    force-directed mapper prefers the no-reuse policy for large factories.
    """
    if graph.number_of_nodes() == 0:
        return {"min": 0.0, "max": 0.0, "mean": 0.0}
    degrees = [degree for _node, degree in graph.degree()]
    return {
        "min": float(min(degrees)),
        "max": float(max(degrees)),
        "mean": float(sum(degrees)) / len(degrees),
    }


def subgraph_for_qubits(graph: nx.Graph, qubits: Iterable[int]) -> nx.Graph:
    """Induced subgraph on ``qubits`` (copied, so it can be mutated freely)."""
    return graph.subgraph(list(qubits)).copy()


def merge_graphs(graphs: Sequence[nx.Graph]) -> nx.Graph:
    """Union of interaction graphs over a shared qubit index space.

    Edge weights are summed when the same edge appears in several inputs.
    Used when re-assembling per-round subgraphs into a factory-wide graph.
    """
    merged = nx.Graph()
    for graph in graphs:
        merged.add_nodes_from(graph.nodes())
        for a, b, data in graph.edges(data=True):
            weight = data.get("weight", 1)
            if merged.has_edge(a, b):
                merged[a][b]["weight"] += weight
            else:
                merged.add_edge(a, b, weight=weight)
    return merged
