"""Mapping-quality metrics: edge length, edge spacing and edge crossings.

Section VI-A of the paper studies three heuristics for predicting braid
congestion from a qubit mapping, and Fig. 6 reports their correlation with
simulated circuit latency:

* **edge (Manhattan) length** — longer braids occupy more channel area and
  are more likely to conflict (r = 0.601),
* **edge spacing** — the average distance between braid midpoints; larger
  spacing means braids are spread out and conflict less (r = -0.625),
* **edge crossings** — two braids whose endpoint-to-endpoint segments cross
  must serialise (r = 0.831, the strongest predictor).

All metrics take an interaction graph together with a *position map*
``{qubit: (row, col)}``; they are agnostic to how the mapping was produced so
every mapper and the correlation experiment can share them.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

import networkx as nx

Position = Tuple[float, float]
PositionMap = Mapping[int, Position]


def _edge_endpoints(
    graph: nx.Graph, positions: PositionMap
) -> List[Tuple[Position, Position]]:
    """Collect the placed endpoint coordinates of every edge in the graph."""
    endpoints: List[Tuple[Position, Position]] = []
    for a, b in graph.edges():
        if a not in positions or b not in positions:
            raise KeyError(f"edge ({a}, {b}) has an unplaced endpoint")
        endpoints.append((positions[a], positions[b]))
    return endpoints


def manhattan_distance(p: Position, q: Position) -> float:
    """Manhattan (L1) distance between two grid positions."""
    return abs(p[0] - q[0]) + abs(p[1] - q[1])


def euclidean_distance(p: Position, q: Position) -> float:
    """Euclidean (L2) distance between two grid positions."""
    return math.hypot(p[0] - q[0], p[1] - q[1])


def total_edge_length(
    graph: nx.Graph, positions: PositionMap, weighted: bool = True
) -> float:
    """Sum of Manhattan edge lengths (optionally weighted by interaction count)."""
    total = 0.0
    for a, b, data in graph.edges(data=True):
        weight = data.get("weight", 1) if weighted else 1
        total += weight * manhattan_distance(positions[a], positions[b])
    return total


def average_edge_length(graph: nx.Graph, positions: PositionMap) -> float:
    """Average Manhattan edge length of the mapping (Fig. 6, middle metric)."""
    if graph.number_of_edges() == 0:
        return 0.0
    return total_edge_length(graph, positions, weighted=False) / graph.number_of_edges()


def edge_midpoint(p: Position, q: Position) -> Position:
    """Midpoint of a placed edge, used by the spacing metric and repulsion force."""
    return ((p[0] + q[0]) / 2.0, (p[1] + q[1]) / 2.0)


def average_edge_spacing(graph: nx.Graph, positions: PositionMap) -> float:
    """Average pairwise distance between edge midpoints (Fig. 6, right metric).

    Larger values mean braids are more spread out over the mesh and are less
    likely to contend for the same channels.
    """
    midpoints = [
        edge_midpoint(positions[a], positions[b]) for a, b in graph.edges()
    ]
    if len(midpoints) < 2:
        return 0.0
    total = 0.0
    count = 0
    for p, q in itertools.combinations(midpoints, 2):
        total += euclidean_distance(p, q)
        count += 1
    return total / count


def _orientation(p: Position, q: Position, r: Position) -> int:
    """Orientation of the ordered triple (p, q, r): 0 collinear, 1 cw, 2 ccw."""
    value = (q[1] - p[1]) * (r[0] - q[0]) - (q[0] - p[0]) * (r[1] - q[1])
    if abs(value) < 1e-12:
        return 0
    return 1 if value > 0 else 2


def _on_segment(p: Position, q: Position, r: Position) -> bool:
    """Whether collinear point ``q`` lies on segment ``pr``."""
    return (
        min(p[0], r[0]) - 1e-12 <= q[0] <= max(p[0], r[0]) + 1e-12
        and min(p[1], r[1]) - 1e-12 <= q[1] <= max(p[1], r[1]) + 1e-12
    )


def segments_intersect(
    a1: Position, a2: Position, b1: Position, b2: Position
) -> bool:
    """Whether segments ``a1-a2`` and ``b1-b2`` intersect (shared endpoints excluded).

    Edges that merely meet at a shared qubit are not counted as crossings —
    they serialise through the dependency DAG rather than through routing
    conflicts.
    """
    endpoints_a = {a1, a2}
    endpoints_b = {b1, b2}
    if endpoints_a & endpoints_b:
        return False

    o1 = _orientation(a1, a2, b1)
    o2 = _orientation(a1, a2, b2)
    o3 = _orientation(b1, b2, a1)
    o4 = _orientation(b1, b2, a2)

    if o1 != o2 and o3 != o4:
        return True
    if o1 == 0 and _on_segment(a1, b1, a2):
        return True
    if o2 == 0 and _on_segment(a1, b2, a2):
        return True
    if o3 == 0 and _on_segment(b1, a1, b2):
        return True
    if o4 == 0 and _on_segment(b1, a2, b2):
        return True
    return False


def count_edge_crossings(graph: nx.Graph, positions: PositionMap) -> int:
    """Count pairs of placed edges whose straight segments cross (Fig. 6, left).

    This is the geometric crossing count over the geodesic (straight-line)
    paths between endpoints, matching the paper's definition in VI-A.3.  The
    routine is O(m^2) in the number of edges, which is acceptable for
    factory-scale interaction graphs (a few thousand edges).
    """
    endpoints = _edge_endpoints(graph, positions)
    crossings = 0
    for (a1, a2), (b1, b2) in itertools.combinations(endpoints, 2):
        if segments_intersect(a1, a2, b1, b2):
            crossings += 1
    return crossings


def mapping_metrics(graph: nx.Graph, positions: PositionMap) -> Dict[str, float]:
    """All three Fig. 6 metrics for a mapping, as a dictionary.

    Keys: ``edge_crossings``, ``average_edge_length``, ``average_edge_spacing``.
    """
    return {
        "edge_crossings": float(count_edge_crossings(graph, positions)),
        "average_edge_length": average_edge_length(graph, positions),
        "average_edge_spacing": average_edge_spacing(graph, positions),
    }


def mapping_cost(
    graph: nx.Graph,
    positions: PositionMap,
    length_weight: float = 1.0,
    spacing_weight: float = 1.0,
    crossing_weight: float = 4.0,
) -> float:
    """Scalar cost combining the three metrics (lower is better).

    The force-directed annealer of Section VI-B.1 accepts or rejects vertex
    moves based on "a cost metric ... a function of the combination of
    average edge length, average edge spacing, and number of edge crossings".
    Crossings get the largest default weight because they correlate most
    strongly with latency (r = 0.831).
    """
    metrics = mapping_metrics(graph, positions)
    spacing = metrics["average_edge_spacing"]
    spacing_term = 1.0 / (1.0 + spacing)
    return (
        crossing_weight * metrics["edge_crossings"]
        + length_weight * metrics["average_edge_length"]
        + spacing_weight * spacing_term
    )


def pearson_correlation(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation coefficient between two equal-length samples.

    Used to reproduce the r-values of Fig. 6.  Returns 0.0 when either sample
    has zero variance (a degenerate but non-erroneous case).
    """
    if len(xs) != len(ys):
        raise ValueError("samples must have equal length")
    n = len(xs)
    if n < 2:
        return 0.0
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x <= 0 or var_y <= 0:
        return 0.0
    # Multiply the square roots rather than square-rooting the product:
    # var_x * var_y underflows to 0.0 for near-denormal variances, which
    # would divide by zero despite the positive-variance guard above.
    denominator = math.sqrt(var_x) * math.sqrt(var_y)
    if denominator == 0.0:
        return 0.0
    return cov / denominator
