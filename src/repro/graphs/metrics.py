"""Mapping-quality metrics: edge length, edge spacing and edge crossings.

Section VI-A of the paper studies three heuristics for predicting braid
congestion from a qubit mapping, and Fig. 6 reports their correlation with
simulated circuit latency:

* **edge (Manhattan) length** — longer braids occupy more channel area and
  are more likely to conflict (r = 0.601),
* **edge spacing** — the average distance between braid midpoints; larger
  spacing means braids are spread out and conflict less (r = -0.625),
* **edge crossings** — two braids whose endpoint-to-endpoint segments cross
  must serialise (r = 0.831, the strongest predictor).

All metrics take an interaction graph together with a *position map*
``{qubit: (row, col)}``; they are agnostic to how the mapping was produced so
every mapper and the correlation experiment can share them.

Two implementations of the quadratic metrics exist side by side:

* the **fast engine** (the default): crossing counting hashes every edge
  segment into the grid buckets its bounding box overlaps, so only segment
  pairs whose bounding boxes share a bucket are orientation-tested —
  near-linear on the compact placements the mappers produce; spacing keeps
  the full pairwise sum (every midpoint pair contributes to the exact
  mean, so pruning is impossible) but evaluates it in vectorized blocks;
* the ``*_reference`` functions keep the original O(m^2) pairwise loops as
  a brute-force oracle for parity tests and benchmarks.

:class:`MappingCostTracker` maintains all three metrics *incrementally*
under single-vertex moves (only edges incident to the moved vertices are
re-tested against their bucket neighbourhoods), which is what lets the
force-directed annealer of Section VI-B.1 accept or reject every move
against the exact combined cost at any graph size.  The tracker ships
three interchangeable engines — ``compiled`` (the runtime-built C kernel
of :mod:`repro.kernels.metrics`), ``vector`` (numpy) and ``scalar``
(pure Python, the retained oracle) — that are **bit-identical** on every
value they produce: distances use only correctly-rounded IEEE operations
(``sqrt(dr*dr + dc*dc)``, never ``hypot``), every row reduction is a
binary tree fold over the row zero-padded to a power-of-two length, and
the C build disables FMA contraction.  ``REPRO_METRICS_ENGINE`` forces
an engine; the differential fuzz harness (tests/test_metrics_fuzz.py)
pins the parity.
"""

from __future__ import annotations

import itertools
import math
import os
import weakref
from collections import defaultdict
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

import networkx as nx

from ..kernels import metrics as _metrics_kernel

try:  # Optional: vectorises the O(m^2) spacing sums when present.
    import numpy as _np
except ImportError:  # pragma: no cover - the container bakes numpy in
    _np = None

Position = Tuple[float, float]
PositionMap = Mapping[int, Position]


def _placed_edges(
    graph: nx.Graph, positions: PositionMap
) -> List[Tuple[int, int, Position, Position]]:
    """Every non-loop edge with its endpoint vertices and placed coordinates."""
    edges: List[Tuple[int, int, Position, Position]] = []
    for a, b in graph.edges():
        if a == b:
            continue  # a self-loop has a degenerate (point) segment
        if a not in positions or b not in positions:
            raise KeyError(f"edge ({a}, {b}) has an unplaced endpoint")
        edges.append((a, b, positions[a], positions[b]))
    return edges


def manhattan_distance(p: Position, q: Position) -> float:
    """Manhattan (L1) distance between two grid positions."""
    return abs(p[0] - q[0]) + abs(p[1] - q[1])


def euclidean_distance(p: Position, q: Position) -> float:
    """Euclidean (L2) distance between two grid positions."""
    return math.hypot(p[0] - q[0], p[1] - q[1])


def total_edge_length(
    graph: nx.Graph, positions: PositionMap, weighted: bool = True
) -> float:
    """Sum of Manhattan edge lengths (optionally weighted by interaction count)."""
    total = 0.0
    for a, b, data in graph.edges(data=True):
        weight = data.get("weight", 1) if weighted else 1
        total += weight * manhattan_distance(positions[a], positions[b])
    return total


def _non_loop_edge_count(graph: nx.Graph) -> int:
    """Number of edges between distinct vertices (self-loops excluded).

    Every Fig. 6 metric ignores self-loops — a qubit does not braid with
    itself — so they share this denominator and agree with
    :class:`MappingCostTracker`, which skips loops when indexing edges.
    """
    return sum(1 for a, b in graph.edges() if a != b)


def average_edge_length(graph: nx.Graph, positions: PositionMap) -> float:
    """Average Manhattan edge length of the mapping (Fig. 6, middle metric)."""
    edges = _non_loop_edge_count(graph)
    if edges == 0:
        return 0.0
    # Self-loops contribute zero length, so the unweighted total needs no
    # loop filtering — only the denominator does.
    return total_edge_length(graph, positions, weighted=False) / edges


def edge_midpoint(p: Position, q: Position) -> Position:
    """Midpoint of a placed edge, used by the spacing metric and repulsion force."""
    return ((p[0] + q[0]) / 2.0, (p[1] + q[1]) / 2.0)


def _edge_midpoints(graph: nx.Graph, positions: PositionMap) -> List[Position]:
    """Midpoints of every non-loop edge (self-loops carry no braid)."""
    return [
        edge_midpoint(positions[a], positions[b])
        for a, b in graph.edges()
        if a != b
    ]


def _pairwise_distance_sum(midpoints: Sequence[Position]) -> float:
    """Exact sum of Euclidean distances over all unordered midpoint pairs.

    Uses numpy block evaluation when available (identical result up to
    floating-point summation order); falls back to the pairwise loop.
    """
    n = len(midpoints)
    if n < 2:
        return 0.0
    if _np is not None and n >= 64:
        arr = _np.asarray(midpoints, dtype=float)
        total = 0.0
        chunk = 256
        for start in range(0, n - 1, chunk):
            block = arr[start : start + chunk]
            b = len(block)
            # Rectangle of this block against every row from `start` on; the
            # leading b columns are the block-vs-block square (keep its
            # strict upper triangle), the rest are full cross pairs.
            d_row = block[:, 0:1] - arr[start:, 0][None, :]
            d_col = block[:, 1:2] - arr[start:, 1][None, :]
            distances = _np.hypot(d_row, d_col)
            upper = _np.triu(distances[:, :b], k=1).sum()
            total += float(upper + distances[:, b:].sum())
        return total
    total = 0.0
    for p, q in itertools.combinations(midpoints, 2):
        total += math.hypot(p[0] - q[0], p[1] - q[1])
    return total


def average_edge_spacing(graph: nx.Graph, positions: PositionMap) -> float:
    """Average pairwise distance between edge midpoints (Fig. 6, right metric).

    Larger values mean braids are more spread out over the mesh and are less
    likely to contend for the same channels.  The value is exact; see
    :func:`average_edge_spacing_reference` for the plain pairwise loop.
    """
    midpoints = _edge_midpoints(graph, positions)
    if len(midpoints) < 2:
        return 0.0
    pairs = len(midpoints) * (len(midpoints) - 1) // 2
    return _pairwise_distance_sum(midpoints) / pairs


def average_edge_spacing_reference(graph: nx.Graph, positions: PositionMap) -> float:
    """Brute-force O(m^2) oracle for :func:`average_edge_spacing`."""
    midpoints = _edge_midpoints(graph, positions)
    if len(midpoints) < 2:
        return 0.0
    total = 0.0
    count = 0
    for p, q in itertools.combinations(midpoints, 2):
        total += euclidean_distance(p, q)
        count += 1
    return total / count


def _orientation(p: Position, q: Position, r: Position) -> int:
    """Orientation of the ordered triple (p, q, r): 0 collinear, 1 cw, 2 ccw."""
    value = (q[1] - p[1]) * (r[0] - q[0]) - (q[0] - p[0]) * (r[1] - q[1])
    if abs(value) < 1e-12:
        return 0
    return 1 if value > 0 else 2


def _on_segment(p: Position, q: Position, r: Position) -> bool:
    """Whether collinear point ``q`` lies on segment ``pr``."""
    return (
        min(p[0], r[0]) - 1e-12 <= q[0] <= max(p[0], r[0]) + 1e-12
        and min(p[1], r[1]) - 1e-12 <= q[1] <= max(p[1], r[1]) + 1e-12
    )


def _segments_cross(
    a1: Position, a2: Position, b1: Position, b2: Position
) -> bool:
    """Purely geometric segment-intersection test (no endpoint exclusion)."""
    o1 = _orientation(a1, a2, b1)
    o2 = _orientation(a1, a2, b2)
    o3 = _orientation(b1, b2, a1)
    o4 = _orientation(b1, b2, a2)

    if o1 != o2 and o3 != o4:
        return True
    if o1 == 0 and _on_segment(a1, b1, a2):
        return True
    if o2 == 0 and _on_segment(a1, b2, a2):
        return True
    if o3 == 0 and _on_segment(b1, a1, b2):
        return True
    if o4 == 0 and _on_segment(b1, a2, b2):
        return True
    return False


def segments_intersect(
    a1: Position, a2: Position, b1: Position, b2: Position
) -> bool:
    """Whether segments ``a1-a2`` and ``b1-b2`` intersect (shared coordinates excluded).

    Edges that merely meet at a shared qubit are not counted as crossings —
    they serialise through the dependency DAG rather than through routing
    conflicts.  This helper can only see coordinates, so it excludes shared
    *coordinate* endpoints; :func:`count_edge_crossings` instead excludes by
    graph endpoint identity, which is the correct rule when two distinct
    vertices coincide in position.
    """
    endpoints_a = {a1, a2}
    endpoints_b = {b1, b2}
    if endpoints_a & endpoints_b:
        return False
    return _segments_cross(a1, a2, b1, b2)


# ----------------------------------------------------------------------
# Bucketed segment index
# ----------------------------------------------------------------------
class _SegmentGrid:
    """Uniform spatial hash of segments, bucketed by bounding-box coverage.

    Each segment is registered in every grid bucket its axis-aligned
    bounding box overlaps.  Two segments can only intersect if their
    bounding boxes overlap, and overlapping boxes always share at least one
    bucket, so the per-bucket candidate lists are a sound pruning of the
    O(m^2) pair space.
    """

    def __init__(self, bucket_size: float) -> None:
        if bucket_size <= 0:
            raise ValueError(f"bucket_size must be positive, got {bucket_size}")
        self.bucket_size = float(bucket_size)
        self._buckets: Dict[Tuple[int, int], Set[int]] = defaultdict(set)

    def cells(self, p: Position, q: Position) -> List[Tuple[int, int]]:
        """The bucket keys overlapped by the bounding box of segment ``p-q``."""
        size = self.bucket_size
        row_lo = math.floor(min(p[0], q[0]) / size)
        row_hi = math.floor(max(p[0], q[0]) / size)
        col_lo = math.floor(min(p[1], q[1]) / size)
        col_hi = math.floor(max(p[1], q[1]) / size)
        return [
            (row, col)
            for row in range(row_lo, row_hi + 1)
            for col in range(col_lo, col_hi + 1)
        ]

    def insert(self, index: int, cells: Iterable[Tuple[int, int]]) -> None:
        for cell in cells:
            self._buckets[cell].add(index)

    def remove(self, index: int, cells: Iterable[Tuple[int, int]]) -> None:
        for cell in cells:
            bucket = self._buckets.get(cell)
            if bucket is not None:
                bucket.discard(index)
                if not bucket:
                    del self._buckets[cell]

    def candidates(self, cells: Iterable[Tuple[int, int]]) -> Set[int]:
        """Indices of every registered segment sharing a bucket with ``cells``."""
        found: Set[int] = set()
        buckets = self._buckets
        for cell in cells:
            bucket = buckets.get(cell)
            if bucket:
                found.update(bucket)
        return found


def _auto_bucket_size(
    ends: Sequence[Tuple[int, int, Position, Position]]
) -> float:
    """Bucket size matched to the average segment extent of the layout.

    A bucket around the mean bounding-box span keeps both failure modes in
    check: much smaller buckets make long segments pay for many insertions,
    much larger ones stop pruning pairs at all.
    """
    if not ends:
        return 1.0
    total_span = 0.0
    for _, _, p, q in ends:
        total_span += max(abs(p[0] - q[0]), abs(p[1] - q[1]))
    return max(2.0, total_span / (4.0 * len(ends)))


def count_edge_crossings(
    graph: nx.Graph, positions: PositionMap, bucket_size: Optional[float] = None
) -> int:
    """Count pairs of placed edges whose straight segments cross (Fig. 6, left).

    This is the geometric crossing count over the geodesic (straight-line)
    paths between endpoints, matching the paper's definition in VI-A.3.
    Pairs of edges sharing a graph endpoint are excluded *by vertex
    identity* — two edges between four distinct qubits count even when some
    of their endpoints coincide in position.  Candidate pairs are pruned
    through a spatial bucket grid (see :class:`_SegmentGrid`); the result is
    identical to :func:`count_edge_crossings_reference`.
    """
    edges = _placed_edges(graph, positions)
    if len(edges) < 2:
        return 0
    if bucket_size is None:
        bucket_size = _auto_bucket_size(edges)
    grid = _SegmentGrid(bucket_size)
    crossings = 0
    for index, (a, b, pa, pb) in enumerate(edges):
        cells = grid.cells(pa, pb)
        row_lo, row_hi = min(pa[0], pb[0]), max(pa[0], pb[0])
        col_lo, col_hi = min(pa[1], pb[1]), max(pa[1], pb[1])
        for other in grid.candidates(cells):
            c, d, pc, pd = edges[other]
            if a == c or a == d or b == c or b == d:
                continue
            # Cheap bounding-box rejection before the orientation tests:
            # sharing a bucket does not imply overlapping boxes.  The margin
            # matches the collinearity tolerance of ``_on_segment``.
            if (
                max(pc[0], pd[0]) < row_lo - 1e-12
                or min(pc[0], pd[0]) > row_hi + 1e-12
                or max(pc[1], pd[1]) < col_lo - 1e-12
                or min(pc[1], pd[1]) > col_hi + 1e-12
            ):
                continue
            if _segments_cross(pa, pb, pc, pd):
                crossings += 1
        # Insert after querying: each unordered pair is tested exactly once,
        # when the later of the two edges is the query.
        grid.insert(index, cells)
    return crossings


def count_edge_crossings_reference(graph: nx.Graph, positions: PositionMap) -> int:
    """Brute-force O(m^2) oracle for :func:`count_edge_crossings`.

    Same semantics (vertex-identity endpoint exclusion), plain pairwise loop.
    """
    edges = _placed_edges(graph, positions)
    crossings = 0
    for (a, b, pa, pb), (c, d, pc, pd) in itertools.combinations(edges, 2):
        if a == c or a == d or b == c or b == d:
            continue
        if _segments_cross(pa, pb, pc, pd):
            crossings += 1
    return crossings


def mapping_metrics(graph: nx.Graph, positions: PositionMap) -> Dict[str, float]:
    """All three Fig. 6 metrics for a mapping, as a dictionary.

    Keys: ``edge_crossings``, ``average_edge_length``, ``average_edge_spacing``.
    """
    return {
        "edge_crossings": float(count_edge_crossings(graph, positions)),
        "average_edge_length": average_edge_length(graph, positions),
        "average_edge_spacing": average_edge_spacing(graph, positions),
    }


def combine_metric_cost(
    crossings: float,
    avg_length: float,
    avg_spacing: float,
    length_weight: float = 1.0,
    spacing_weight: float = 1.0,
    crossing_weight: float = 4.0,
) -> float:
    """The scalar Fig. 6 cost formula shared by :func:`mapping_cost` and the tracker."""
    return (
        crossing_weight * crossings
        + length_weight * avg_length
        + spacing_weight * (1.0 / (1.0 + avg_spacing))
    )


def mapping_cost(
    graph: nx.Graph,
    positions: PositionMap,
    length_weight: float = 1.0,
    spacing_weight: float = 1.0,
    crossing_weight: float = 4.0,
) -> float:
    """Scalar cost combining the three metrics (lower is better).

    The force-directed annealer of Section VI-B.1 accepts or rejects vertex
    moves based on "a cost metric ... a function of the combination of
    average edge length, average edge spacing, and number of edge crossings".
    Crossings get the largest default weight because they correlate most
    strongly with latency (r = 0.831).
    """
    metrics = mapping_metrics(graph, positions)
    return combine_metric_cost(
        metrics["edge_crossings"],
        metrics["average_edge_length"],
        metrics["average_edge_spacing"],
        length_weight=length_weight,
        spacing_weight=spacing_weight,
        crossing_weight=crossing_weight,
    )


# ----------------------------------------------------------------------
# Incremental cost tracking
# ----------------------------------------------------------------------
#
# The tracker below is split into a shared Python core (positions, edge
# bookkeeping, the scalar metric sums, move snapshots) and three
# interchangeable *engines* that own the geometry state — segment
# endpoints, midpoints, the bucket grid and the per-edge spacing row-sum
# cache R[i] = treefold_j dist(mid_i, mid_j):
#
# ============  =========================  ==============================
# engine        geometry state             crossing / spacing evaluation
# ============  =========================  ==============================
# ``compiled``  flat numpy arrays          C kernel (repro.kernels.metrics)
# ``vector``    flat numpy arrays          numpy + dict bucket grid
# ``scalar``    Python lists               pure Python (retained oracle)
# ============  =========================  ==============================
#
# The engines are **bit-identical** on every float they produce.  Three
# rules make that possible:
#
# * midpoint distances are ``sqrt(dr*dr + dc*dc)`` — one multiply per
#   axis, one add, one correctly-rounded sqrt; never ``hypot`` (libm
#   hypots differ across platforms and numpy);
# * every reduction over a distance row is a binary **tree fold** of the
#   row zero-padded to a power-of-two length — the same tree shape in C,
#   numpy (stride-halving adds) and Python (pairwise list halving);
# * the tiny k-term sums of a move delta (old-row totals, intra-changed
#   midpoint terms, the length updates, the final cost assembly) run in
#   shared Python code, so each engine contributes only the big
#   tree-folded terms it computed under the rules above.
#
# The C kernel is compiled with ``-ffp-contract=off`` so no FMA ever
# fuses the multiply-adds the Python engines evaluate separately.

_GRID_MARGIN = 4  # dense-grid slack (cells) around the initial extent


def tracker_engines() -> List[str]:
    """Tracker engine names usable in this environment.

    Always includes ``scalar``; ``vector`` needs numpy and ``compiled``
    additionally needs the runtime-built metrics kernel.
    """
    engines = ["scalar"]
    if _np is not None:
        engines.append("vector")
        if _metrics_kernel.available():
            engines.append("compiled")
    return engines


def _pow2_pad(count: int) -> int:
    """Smallest power of two >= count (1 for an empty row)."""
    pad = 1
    while pad < count:
        pad <<= 1
    return pad


def _dist(ar: float, ac: float, br: float, bc: float) -> float:
    """Canonical midpoint distance: sqrt(dr*dr + dc*dc), never hypot."""
    dr = ar - br
    dc = ac - bc
    return math.sqrt(dr * dr + dc * dc)


def _treefold_list(values: Sequence[float], pad: int) -> float:
    """Binary tree fold of ``values`` zero-padded to ``pad`` entries."""
    buf = list(values)
    buf.extend([0.0] * (pad - len(buf)))
    while len(buf) > 1:
        buf = [buf[2 * i] + buf[2 * i + 1] for i in range(len(buf) // 2)]
    return buf[0]


def _intra_crossings(
    changed: Sequence[int],
    segs: Sequence[Tuple[Position, Position]],
    end_u: Sequence[int],
    end_v: Sequence[int],
) -> int:
    """Changed-vs-changed crossing block on explicit segments.

    ``segs`` is aligned with ``changed`` (old or proposed geometry); the
    block is tiny (k^2/2 pairs) so it runs without bucket pruning, in
    every engine, with the exact :func:`_segments_cross` arithmetic.
    """
    count = 0
    for t in range(len(changed)):
        i = changed[t]
        a, b = end_u[i], end_v[i]
        p, q = segs[t]
        for u in range(t + 1, len(changed)):
            j = changed[u]
            if a == end_u[j] or a == end_v[j] or b == end_u[j] or b == end_v[j]:
                continue
            pc, pd = segs[u]
            if _segments_cross(p, q, pc, pd):
                count += 1
    return count


# --- auto bucket-size memo -------------------------------------------------
#
# Repeated tracker builds over the same graph at the same layout extent
# (the bench oracles re-evaluate one placement many times; refinement
# pipelines rebuild trackers per stage) used to re-run the O(m) sizing
# scan every time.  The memo keys on the graph object (weakly — dropping
# the graph drops its entry) plus the layout extent, because the sizing
# only depends on segment spans, which the extent bounds.

_BUCKET_SIZE_MEMO: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
_BUCKET_AUTO_SIZINGS = 0


def bucket_auto_sizing_count() -> int:
    """How many times the auto bucket sizing scan actually ran (tests)."""
    return _BUCKET_AUTO_SIZINGS


def _auto_bucket_size_cached(
    graph: nx.Graph, ends: Sequence[Tuple[int, int, Position, Position]]
) -> float:
    global _BUCKET_AUTO_SIZINGS
    if not ends:
        return 1.0
    min_r = min_c = math.inf
    max_r = max_c = -math.inf
    for _, _, p, q in ends:
        for row, col in (p, q):
            if row < min_r:
                min_r = row
            if row > max_r:
                max_r = row
            if col < min_c:
                min_c = col
            if col > max_c:
                max_c = col
    key = (len(ends), min_r, max_r, min_c, max_c)
    try:
        per_graph = _BUCKET_SIZE_MEMO.get(graph)
    except TypeError:  # graph not weak-referenceable: skip the cache
        per_graph = None
        cacheable = False
    else:
        cacheable = True
    if per_graph is not None and key in per_graph:
        return per_graph[key]
    _BUCKET_AUTO_SIZINGS += 1
    size = _auto_bucket_size(ends)
    if cacheable:
        if per_graph is None:
            try:
                per_graph = _BUCKET_SIZE_MEMO.setdefault(graph, {})
            except TypeError:
                return size
        per_graph[key] = size
    return size


# --- scalar engine ---------------------------------------------------------
class _ScalarTrackerEngine:
    """Pure-Python engine: list geometry, dict bucket grid (the oracle)."""

    name = "scalar"

    def __init__(self, edges, ends, mids, bucket_size):
        self._eu = [a for a, _, _ in edges]
        self._ev = [b for _, b, _ in edges]
        self._seg: List[Tuple[Position, Position]] = list(ends)
        self._mid: List[Position] = list(mids)
        m = len(ends)
        self._m = m
        self._pad = _pow2_pad(m)
        self._grid = _SegmentGrid(bucket_size)
        self._cells: List[List[Tuple[int, int]]] = []
        self.crossings = 0
        for index, (p, q) in enumerate(self._seg):
            cells = self._grid.cells(p, q)
            # Insert after querying: each unordered pair counted once.
            self.crossings += self._count_against(
                p, q, self._eu[index], self._ev[index],
                self._grid.candidates(cells), frozenset(),
            )
            self._grid.insert(index, cells)
            self._cells.append(cells)
        self._R: List[float] = []
        for i in range(m):
            row, col = self._mid[i]
            dists = [_dist(row, col, mr, mc) for mr, mc in self._mid]
            self._R.append(_treefold_list(dists, self._pad))
        self.spacing_sum = _treefold_list(self._R, self._pad) * 0.5

    def _count_against(self, p, q, a, b, candidates, skip):
        """Crossings of segment ``p-q`` (vertices a,b) vs candidate edges."""
        row_lo, row_hi = min(p[0], q[0]) - 1e-12, max(p[0], q[0]) + 1e-12
        col_lo, col_hi = min(p[1], q[1]) - 1e-12, max(p[1], q[1]) + 1e-12
        eu, ev, seg = self._eu, self._ev, self._seg
        count = 0
        for other in candidates:
            if other in skip:
                continue
            c, d = eu[other], ev[other]
            if a == c or a == d or b == c or b == d:
                continue
            pc, pd = seg[other]
            if (
                max(pc[0], pd[0]) < row_lo
                or min(pc[0], pd[0]) > row_hi
                or max(pc[1], pd[1]) < col_lo
                or min(pc[1], pd[1]) > col_hi
            ):
                continue
            if _segments_cross(p, q, pc, pd):
                count += 1
        return count

    def row_sum(self, index: int) -> float:
        return self._R[index]

    def eval(self, changed, new_ends, new_mids):
        """(newrows, old_crossings, new_crossings) for a proposed move.

        Pure: evaluates against the committed geometry.  The grid still
        holds the changed edges, so candidate sets are filtered through
        ``changed`` and the changed-vs-changed blocks run separately.
        """
        changed_set = set(changed)
        old_cross = 0
        new_cross = 0
        grid = self._grid
        for t, i in enumerate(changed):
            p, q = self._seg[i]
            old_cross += self._count_against(
                p, q, self._eu[i], self._ev[i],
                grid.candidates(self._cells[i]), changed_set,
            )
            np_, nq = new_ends[t]
            new_cross += self._count_against(
                np_, nq, self._eu[i], self._ev[i],
                grid.candidates(grid.cells(np_, nq)), changed_set,
            )
        old_segs = [self._seg[i] for i in changed]
        old_cross += _intra_crossings(changed, old_segs, self._eu, self._ev)
        new_cross += _intra_crossings(changed, new_ends, self._eu, self._ev)
        newrows = []
        for t in range(len(changed)):
            row, col = new_mids[t]
            dists = [_dist(row, col, mr, mc) for mr, mc in self._mid]
            for i in changed:
                dists[i] = 0.0
            newrows.append(_treefold_list(dists, self._pad))
        return newrows, old_cross, new_cross

    def eval_many(self, moves):
        return [self.eval(*move) for move in moves]

    def flush(self, changed, new_ends, new_mids):
        """Fold a committed move into the geometry, grid and R cache."""
        mid = self._mid
        R = self._R
        m = self._m
        # Phase A: elementwise row-sum adjustment against the old midpoints,
        # in ascending changed order (the canonical order all engines use).
        for t, i in enumerate(changed):
            new_row, new_col = new_mids[t]
            old_row, old_col = mid[i]
            for j in range(m):
                mr, mc = mid[j]
                R[j] += _dist(new_row, new_col, mr, mc) - _dist(
                    old_row, old_col, mr, mc
                )
        # Phase B: write the new geometry.
        for t, i in enumerate(changed):
            self._seg[i] = new_ends[t]
            mid[i] = new_mids[t]
        # Phase C: fresh tree-folded rows for the changed edges themselves.
        for i in changed:
            row, col = mid[i]
            dists = [_dist(row, col, mr, mc) for mr, mc in mid]
            R[i] = _treefold_list(dists, self._pad)
        for t, i in enumerate(changed):
            self._grid.remove(i, self._cells[i])
            p, q = self._seg[i]
            cells = self._grid.cells(p, q)
            self._grid.insert(i, cells)
            self._cells[i] = cells


# --- vector engine ---------------------------------------------------------
def _np_pairs_crossing_count(seg, end_u, end_v, idx, query, query_u, query_v):
    """Crossing count over explicit (query segment, candidate index) pairs.

    Replays exactly the arithmetic of :func:`_segments_cross` (same
    products, same 1e-12 tolerances) over the pair arrays, so the count
    agrees with the scalar path on every input.  ``query`` rows are
    ``(p_row, p_col, q_row, q_col)`` segments; vertex-identity exclusion
    uses ``query_u``/``query_v`` against the candidate endpoint arrays.
    """
    cand_u = end_u[idx]
    cand_v = end_v[idx]
    keep = (
        (cand_u != query_u)
        & (cand_u != query_v)
        & (cand_v != query_u)
        & (cand_v != query_v)
    )
    if not keep.any():
        return 0
    cand = seg[idx[keep]]
    query = query[keep]
    b1r, b1c, b2r, b2c = cand[:, 0], cand[:, 1], cand[:, 2], cand[:, 3]
    pr, pc, qr, qc = query[:, 0], query[:, 1], query[:, 2], query[:, 3]
    tol = 1e-12

    def orient(v1r, v1c, v2r, v2c, wr, wc):
        value = (v2c - v1c) * (wr - v2r) - (v2r - v1r) * (wc - v2c)
        return _np.where(_np.abs(value) < tol, 0, _np.where(value > 0, 1, 2))

    o1 = orient(pr, pc, qr, qc, b1r, b1c)
    o2 = orient(pr, pc, qr, qc, b2r, b2c)
    o3 = orient(b1r, b1c, b2r, b2c, pr, pc)
    o4 = orient(b1r, b1c, b2r, b2c, qr, qc)
    crossing = (o1 != o2) & (o3 != o4)

    def on_segment(ar, ac, br_, bc_, cr, cc):
        return (
            (_np.minimum(ar, cr) - tol <= br_)
            & (br_ <= _np.maximum(ar, cr) + tol)
            & (_np.minimum(ac, cc) - tol <= bc_)
            & (bc_ <= _np.maximum(ac, cc) + tol)
        )

    crossing |= (o1 == 0) & on_segment(pr, pc, b1r, b1c, qr, qc)
    crossing |= (o2 == 0) & on_segment(pr, pc, b2r, b2c, qr, qc)
    crossing |= (o3 == 0) & on_segment(b1r, b1c, pr, pc, b2r, b2c)
    crossing |= (o4 == 0) & on_segment(b1r, b1c, qr, qc, b2r, b2c)
    return int(crossing.sum())


class _VectorTrackerEngine:
    """numpy engine: flat arrays, dict bucket grid, vectorized predicates."""

    name = "vector"

    def __init__(self, edges, ends, mids, bucket_size):
        self._eu = [a for a, _, _ in edges]
        self._ev = [b for _, b, _ in edges]
        m = len(ends)
        self._m = m
        self._pad = _pow2_pad(m)
        self._end_u = _np.asarray(self._eu)
        self._end_v = _np.asarray(self._ev)
        self._seg = _np.asarray(
            [(p[0], p[1], q[0], q[1]) for p, q in ends], dtype=float
        ).reshape(m, 4)
        self._mid = _np.asarray(mids, dtype=float).reshape(m, 2)
        self._grid = _SegmentGrid(bucket_size)
        self._cells: List[List[Tuple[int, int]]] = []
        self.crossings = 0
        for index, (p, q) in enumerate(ends):
            cells = self._grid.cells(p, q)
            cand = self._grid.candidates(cells)
            if cand:
                self.crossings += self._count_pairs(index, p, q, cand)
            self._grid.insert(index, cells)
            self._cells.append(cells)
        if m:
            dr = self._mid[:, 0][:, None] - self._mid[:, 0][None, :]
            dc = self._mid[:, 1][:, None] - self._mid[:, 1][None, :]
            self._R = self._fold_rows(_np.sqrt(dr * dr + dc * dc))
        else:
            self._R = _np.zeros(0, dtype=float)
        self.spacing_sum = self._fold(self._R) * 0.5

    def _fold(self, values):
        buf = _np.zeros(self._pad, dtype=float)
        buf[: values.shape[0]] = values
        while buf.shape[0] > 1:
            buf = buf[0::2] + buf[1::2]
        return float(buf[0])

    def _fold_rows(self, matrix):
        buf = _np.zeros((matrix.shape[0], self._pad), dtype=float)
        buf[:, : matrix.shape[1]] = matrix
        while buf.shape[1] > 1:
            buf = buf[:, 0::2] + buf[:, 1::2]
        return buf[:, 0]

    def _count_pairs(self, index, p, q, candidates):
        idx = _np.fromiter(candidates, dtype=_np.intp, count=len(candidates))
        n = idx.size
        query = _np.empty((n, 4))
        query[:] = (p[0], p[1], q[0], q[1])
        a, b = self._eu[index], self._ev[index]
        return _np_pairs_crossing_count(
            self._seg, self._end_u, self._end_v,
            idx, query, _np.full(n, a), _np.full(n, b),
        )

    def row_sum(self, index: int) -> float:
        return float(self._R[index])

    def eval(self, changed, new_ends, new_mids):
        changed_set = set(changed)
        old_cross = 0
        new_cross = 0
        grid = self._grid
        for t, i in enumerate(changed):
            old_cand = grid.candidates(self._cells[i]) - changed_set
            if old_cand:
                p = (float(self._seg[i, 0]), float(self._seg[i, 1]))
                q = (float(self._seg[i, 2]), float(self._seg[i, 3]))
                old_cross += self._count_pairs(i, p, q, old_cand)
            np_, nq = new_ends[t]
            new_cand = grid.candidates(grid.cells(np_, nq)) - changed_set
            if new_cand:
                new_cross += self._count_pairs(i, np_, nq, new_cand)
        old_segs = [
            (
                (float(self._seg[i, 0]), float(self._seg[i, 1])),
                (float(self._seg[i, 2]), float(self._seg[i, 3])),
            )
            for i in changed
        ]
        old_cross += _intra_crossings(changed, old_segs, self._eu, self._ev)
        new_cross += _intra_crossings(changed, new_ends, self._eu, self._ev)
        nm = _np.asarray(new_mids, dtype=float).reshape(len(changed), 2)
        dr = nm[:, 0:1] - self._mid[:, 0][None, :]
        dc = nm[:, 1:2] - self._mid[:, 1][None, :]
        dists = _np.sqrt(dr * dr + dc * dc)
        dists[:, list(changed)] = 0.0
        newrows = [float(value) for value in self._fold_rows(dists)]
        return newrows, old_cross, new_cross

    def eval_many(self, moves):
        return [self.eval(*move) for move in moves]

    def flush(self, changed, new_ends, new_mids):
        mid = self._mid
        R = self._R
        for t, i in enumerate(changed):
            new_row, new_col = new_mids[t]
            old_row, old_col = float(mid[i, 0]), float(mid[i, 1])
            dr = mid[:, 0] - new_row
            dc = mid[:, 1] - new_col
            d_new = _np.sqrt(dr * dr + dc * dc)
            dr = mid[:, 0] - old_row
            dc = mid[:, 1] - old_col
            d_old = _np.sqrt(dr * dr + dc * dc)
            R += d_new - d_old
        for t, i in enumerate(changed):
            p, q = new_ends[t]
            self._seg[i, 0] = p[0]
            self._seg[i, 1] = p[1]
            self._seg[i, 2] = q[0]
            self._seg[i, 3] = q[1]
            mid[i, 0] = new_mids[t][0]
            mid[i, 1] = new_mids[t][1]
        for i in changed:
            dr = mid[i, 0] - mid[:, 0]
            dc = mid[i, 1] - mid[:, 1]
            R[i] = self._fold(_np.sqrt(dr * dr + dc * dc))
        for t, i in enumerate(changed):
            self._grid.remove(i, self._cells[i])
            p, q = new_ends[t]
            cells = self._grid.cells(p, q)
            self._grid.insert(i, cells)
            self._cells[i] = cells


# --- compiled engine -------------------------------------------------------
class _CompiledTrackerEngine:
    """C-kernel engine: flat numpy state driven through raw ctypes calls.

    The dense cell grid covers the initial layout extent plus a small
    margin; segments drifting outside are *clamped* to the border cells,
    which is a sound (if coarser) pruning — the exact bbox + orientation
    tests behind it keep the counts identical to the dict grid.  Buffer
    addresses are cached once per (re)allocation so the per-proposal path
    costs one ctypes call, not an argument-marshalling pass.
    """

    name = "compiled"

    def __init__(self, edges, ends, mids, bucket_size, kern, end_u, end_v):
        self._kern = kern
        self._bucket = float(bucket_size)
        m = len(ends)
        self._m = m
        pad = _pow2_pad(m)
        self._eu_arr = _np.ascontiguousarray(end_u)
        self._ev_arr = _np.ascontiguousarray(end_v)
        self._seg = _np.ascontiguousarray(
            _np.asarray(
                [(p[0], p[1], q[0], q[1]) for p, q in ends], dtype=float
            ).reshape(m, 4)
        )
        self._mid = _np.ascontiguousarray(
            _np.asarray(mids, dtype=float).reshape(m, 2)
        )
        self._R = _np.zeros(m, dtype=float)
        self._scratch = _np.zeros(max(pad, 4 * m, 1), dtype=float)
        self._stamp = _np.zeros(max(m, 1), dtype=_np.int64)
        self._gen = _np.zeros(1, dtype=_np.int64)
        # Per-edge crossing-count cache (kept exact by mc_commit) and the
        # changed-edge flag array the kernel scans use for O(1) skips.
        self._crossC = _np.zeros(max(m, 1), dtype=_np.int64)
        self._cflag = _np.zeros(max(m, 1), dtype=_np.int64)
        if m:
            bucket = self._bucket
            row_cells = _np.floor(self._seg[:, (0, 2)] / bucket).astype(_np.int64)
            col_cells = _np.floor(self._seg[:, (1, 3)] / bucket).astype(_np.int64)
            origin_row = int(row_cells.min()) - _GRID_MARGIN
            origin_col = int(col_cells.min()) - _GRID_MARGIN
            n_rows = int(row_cells.max()) + _GRID_MARGIN - origin_row + 1
            n_cols = int(col_cells.max()) + _GRID_MARGIN - origin_col + 1
        else:
            origin_row = origin_col = 0
            n_rows = n_cols = 1
        self._n_cells = n_rows * n_cols
        cap = 8
        self._ip = _np.array(
            [m, pad, origin_row, origin_col, n_rows, n_cols, cap],
            dtype=_np.int64,
        )
        self._cell_count = _np.zeros(self._n_cells, dtype=_np.int64)
        self._edge_range = _np.zeros(max(4 * m, 1), dtype=_np.int64)
        self._cell_items = _np.zeros(self._n_cells * cap, dtype=_np.int64)
        # Per-move staging buffers (k <= m always).
        self._changed_buf = _np.zeros(max(m, 1), dtype=_np.int64)
        self._newseg_buf = _np.zeros((max(m, 1), 4), dtype=float)
        self._newmid_buf = _np.zeros((max(m, 1), 2), dtype=float)
        self._newrow_buf = _np.zeros(max(m, 1), dtype=float)
        self._cross_buf = _np.zeros(2, dtype=_np.int64)
        self._cache_pointers()
        while self._kern.grid_build(
            self._ip_p, self._seg_p, self._bucket,
            self._cc_p, self._ci_p, self._er_p,
        ) != 0:
            self._grow_cell_items()
        self.spacing_sum = float(
            self._kern.spacing_init(
                self._ip_p, self._mid_p, self._R_p, self._scratch_p
            )
        )
        self.crossings = int(
            self._kern.count_crossings(
                self._ip_p, self._seg_p, self._eu_p, self._ev_p, self._er_p,
                self._cc_p, self._ci_p, self._stamp_p, self._gen_p,
                self._crossC_p,
            )
        )

    def _cache_pointers(self):
        self._ip_p = self._ip.ctypes.data
        self._seg_p = self._seg.ctypes.data
        self._mid_p = self._mid.ctypes.data
        self._eu_p = self._eu_arr.ctypes.data
        self._ev_p = self._ev_arr.ctypes.data
        self._R_p = self._R.ctypes.data
        self._scratch_p = self._scratch.ctypes.data
        self._stamp_p = self._stamp.ctypes.data
        self._gen_p = self._gen.ctypes.data
        self._cc_p = self._cell_count.ctypes.data
        self._ci_p = self._cell_items.ctypes.data
        self._er_p = self._edge_range.ctypes.data
        self._crossC_p = self._crossC.ctypes.data
        self._cflag_p = self._cflag.ctypes.data
        self._changed_p = self._changed_buf.ctypes.data
        self._newseg_p = self._newseg_buf.ctypes.data
        self._newmid_p = self._newmid_buf.ctypes.data
        self._newrow_p = self._newrow_buf.ctypes.data
        self._cross_p = self._cross_buf.ctypes.data

    def _grow_cell_items(self):
        cap = int(self._ip[6]) * 2
        self._ip[6] = cap
        self._cell_items = _np.zeros(self._n_cells * cap, dtype=_np.int64)
        self._ci_p = self._cell_items.ctypes.data

    def _rebuild_grid(self):
        while True:
            self._grow_cell_items()
            if self._kern.grid_build(
                self._ip_p, self._seg_p, self._bucket,
                self._cc_p, self._ci_p, self._er_p,
            ) == 0:
                return

    def _stage(self, changed, new_ends, new_mids):
        k = len(changed)
        self._changed_buf[:k] = changed
        self._newseg_buf[:k] = [
            (p[0], p[1], q[0], q[1]) for p, q in new_ends
        ]
        self._newmid_buf[:k] = new_mids
        return k

    def row_sum(self, index: int) -> float:
        return float(self._R[index])

    def eval(self, changed, new_ends, new_mids):
        k = self._stage(changed, new_ends, new_mids)
        self._kern.eval(
            self._ip_p, self._bucket, k,
            self._changed_p, self._newseg_p, self._newmid_p,
            self._seg_p, self._mid_p, self._eu_p, self._ev_p,
            self._crossC_p, self._cflag_p,
            self._cc_p, self._ci_p, self._stamp_p, self._gen_p,
            self._scratch_p, self._newrow_p, self._cross_p,
        )
        return (
            self._newrow_buf[:k].tolist(),
            int(self._cross_buf[0]),
            int(self._cross_buf[1]),
        )

    def eval_many(self, moves):
        if not moves:
            return []
        n = len(moves)
        offsets = [0]
        changed_flat: List[int] = []
        seg_rows: List[Tuple[float, float, float, float]] = []
        mid_rows: List[Position] = []
        for changed, new_ends, new_mids in moves:
            changed_flat.extend(changed)
            seg_rows.extend((p[0], p[1], q[0], q[1]) for p, q in new_ends)
            mid_rows.extend(new_mids)
            offsets.append(len(changed_flat))
        total = len(changed_flat)
        koff = _np.asarray(offsets, dtype=_np.int64)
        changed_arr = _np.asarray(changed_flat, dtype=_np.int64)
        seg_arr = _np.asarray(seg_rows, dtype=float).reshape(total, 4)
        mid_arr = _np.asarray(mid_rows, dtype=float).reshape(total, 2)
        newrow = _np.zeros(max(total, 1), dtype=float)
        cross = _np.zeros(2 * n, dtype=_np.int64)
        self._kern.eval_moves(
            self._ip_p, self._bucket, n,
            koff.ctypes.data, changed_arr.ctypes.data,
            seg_arr.ctypes.data, mid_arr.ctypes.data,
            self._seg_p, self._mid_p, self._eu_p, self._ev_p,
            self._crossC_p, self._cflag_p,
            self._cc_p, self._ci_p, self._stamp_p, self._gen_p,
            self._scratch_p, newrow.ctypes.data, cross.ctypes.data,
        )
        results = []
        for v in range(n):
            lo, hi = offsets[v], offsets[v + 1]
            results.append(
                (newrow[lo:hi].tolist(), int(cross[2 * v]), int(cross[2 * v + 1]))
            )
        return results

    def flush(self, changed, new_ends, new_mids):
        k = self._stage(changed, new_ends, new_mids)
        status = self._kern.commit(
            self._ip_p, self._bucket, k,
            self._changed_p, self._newseg_p, self._newmid_p,
            self._seg_p, self._mid_p, self._R_p,
            self._cc_p, self._ci_p, self._er_p, self._scratch_p,
            self._eu_p, self._ev_p, self._stamp_p, self._gen_p,
            self._crossC_p, self._cflag_p,
        )
        if status != 0:
            # A cell overflowed its capacity: seg/mid/R are already
            # updated, so rebuilding the whole grid from seg is enough.
            self._rebuild_grid()


def _int64_vertex_arrays(edges):
    """(end_u, end_v) as int64 arrays, or None when ids are not integers."""
    try:
        end_u = _np.asarray([a for a, _, _ in edges], dtype=_np.int64)
        end_v = _np.asarray([b for _, b, _ in edges], dtype=_np.int64)
    except (TypeError, ValueError, OverflowError):
        return None
    return end_u, end_v


class MappingCostTracker:
    """Exact Fig. 6 metrics maintained incrementally under vertex moves.

    Holds the crossing count, the total (and weighted) Manhattan edge
    length, and the pairwise midpoint-distance sum behind the spacing
    metric for one placed interaction graph.  :meth:`apply` moves a batch
    of vertices and updates every metric by *delta*: only the edges
    incident to the moved vertices are re-tested, against their bucket
    neighbourhoods for crossings and against the cached per-edge midpoint
    row sums for spacing — O(deg * local density) per move instead of
    O(m^2) per recompute.

    An annealer's dominant path is *propose, inspect, reject*: use
    :meth:`evaluate` (pure) plus :meth:`commit_evaluated`, or the batched
    :meth:`evaluate_many` for a whole sweep of independent proposals.
    :meth:`apply` keeps the historical move-then-revert protocol:
    :meth:`revert_last` restores the pre-move state exactly and in O(1),
    because the heavy geometry updates are deferred until the *next*
    evaluation needs them (a reverted move never touches the engine).

    ``engine`` selects the evaluation backend (``compiled`` / ``vector``
    / ``scalar``, see the section comment above; ``None`` honours
    ``REPRO_METRICS_ENGINE`` and then auto-selects the fastest available).
    All engines are bit-identical on every reported value.

    Vertices present in ``positions`` but not in the graph (or isolated
    in it) may be moved freely; they contribute nothing to any metric.
    """

    def __init__(
        self,
        graph: nx.Graph,
        positions: PositionMap,
        length_weight: float = 1.0,
        spacing_weight: float = 1.0,
        crossing_weight: float = 4.0,
        bucket_size: Optional[float] = None,
        engine: Optional[str] = None,
    ) -> None:
        self.graph = graph
        self.length_weight = length_weight
        self.spacing_weight = spacing_weight
        self.crossing_weight = crossing_weight

        self._positions: Dict[int, Position] = {
            vertex: (float(pos[0]), float(pos[1]))
            for vertex, pos in positions.items()
        }
        self._edges: List[Tuple[int, int, float]] = []
        self._incident: Dict[int, List[int]] = defaultdict(list)
        for a, b, data in graph.edges(data=True):
            if a == b:
                continue
            if a not in self._positions or b not in self._positions:
                raise KeyError(f"edge ({a}, {b}) has an unplaced endpoint")
            index = len(self._edges)
            self._edges.append((a, b, float(data.get("weight", 1))))
            self._incident[a].append(index)
            self._incident[b].append(index)

        self._ends: List[Tuple[Position, Position]] = [
            (self._positions[a], self._positions[b]) for a, b, _ in self._edges
        ]
        self._mids: List[Position] = [
            edge_midpoint(p, q) for p, q in self._ends
        ]

        if bucket_size is None:
            bucket_size = _auto_bucket_size_cached(
                graph,
                [(a, b, p, q) for (a, b, _), (p, q) in zip(self._edges, self._ends)],
            )
        if bucket_size <= 0:
            raise ValueError(f"bucket_size must be positive, got {bucket_size}")

        self._engine = self._build_engine(engine, float(bucket_size))
        self.engine: str = self._engine.name

        self.total_edge_length = 0.0
        self.total_weighted_length = 0.0
        for (p, q), (_, _, weight) in zip(self._ends, self._edges):
            length = manhattan_distance(p, q)
            self.total_edge_length += length
            self.total_weighted_length += weight * length
        self.crossings: int = self._engine.crossings
        self.spacing_sum: float = self._engine.spacing_sum
        #: Cached combined cost of the committed state (pure function of
        #: the three sums above; refreshed on commit and revert).
        self._cost_value: float = self._cost_from(
            self.crossings, self.total_edge_length, self.spacing_sum
        )

        #: Committed move whose geometry the engine has not absorbed yet.
        self._pending: Optional[tuple] = None
        #: Result of the last :meth:`evaluate`, awaiting commit.
        self._pending_eval: Optional[tuple] = None
        #: Snapshot for :meth:`revert_last`; ``None`` when nothing to revert.
        self._last_move: Optional[tuple] = None

    def _build_engine(self, requested: Optional[str], bucket_size: float):
        name = requested if requested is not None else (
            os.environ.get("REPRO_METRICS_ENGINE") or "auto"
        )
        if name not in ("auto", "compiled", "vector", "scalar"):
            raise ValueError(
                f"unknown tracker engine {name!r}; "
                "expected 'compiled', 'vector', 'scalar' or 'auto'"
            )
        explicit = name != "auto"
        if name == "auto":
            if _np is not None and _metrics_kernel.available():
                name = "compiled"
            elif _np is not None and len(self._edges) >= 64:
                name = "vector"
            else:
                name = "scalar"
        if name == "compiled":
            kern = _metrics_kernel.load() if _np is not None else None
            ids = _int64_vertex_arrays(self._edges) if kern is not None else None
            if kern is None or ids is None:
                if explicit:
                    reason = (
                        "the metrics kernel (or numpy) is unavailable"
                        if kern is None
                        else "vertex ids are not int64-representable"
                    )
                    raise ValueError(f"engine 'compiled' unusable: {reason}")
                name = "vector" if _np is not None else "scalar"
            else:
                return _CompiledTrackerEngine(
                    self._edges, self._ends, self._mids, bucket_size,
                    kern, ids[0], ids[1],
                )
        if name == "vector":
            if _np is None:
                if explicit:
                    raise ValueError("engine 'vector' requires numpy")
                name = "scalar"
            else:
                return _VectorTrackerEngine(
                    self._edges, self._ends, self._mids, bucket_size
                )
        return _ScalarTrackerEngine(
            self._edges, self._ends, self._mids, bucket_size
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Number of (non-loop) tracked edges."""
        return len(self._edges)

    def position(self, vertex: int) -> Position:
        """The tracked position of ``vertex``."""
        return self._positions[vertex]

    def metrics(self) -> Dict[str, float]:
        """The three Fig. 6 metrics, keyed like :func:`mapping_metrics`."""
        m = len(self._edges)
        pairs = m * (m - 1) // 2
        return {
            "edge_crossings": float(self.crossings),
            "average_edge_length": self.total_edge_length / m if m else 0.0,
            "average_edge_spacing": self.spacing_sum / pairs if pairs else 0.0,
        }

    def cost(self) -> float:
        """The combined scalar cost, identical to :func:`mapping_cost`."""
        return self._cost_value

    def _cost_from(
        self, crossings: int, total_length: float, spacing_sum: float
    ) -> float:
        m = len(self._edges)
        pairs = m * (m - 1) // 2
        return combine_metric_cost(
            float(crossings),
            total_length / m if m else 0.0,
            spacing_sum / pairs if pairs else 0.0,
            length_weight=self.length_weight,
            spacing_weight=self.spacing_weight,
            crossing_weight=self.crossing_weight,
        )

    # ------------------------------------------------------------------
    # Move evaluation
    # ------------------------------------------------------------------
    def _flush_pending(self) -> None:
        if self._pending is not None:
            changed, new_ends, new_mids = self._pending
            self._pending = None
            self._engine.flush(changed, new_ends, new_mids)

    def _prepare(self, updates: Mapping[int, Position]):
        moves: Dict[int, Position] = {}
        for vertex, pos in updates.items():
            if vertex in self._positions:
                moves[vertex] = (float(pos[0]), float(pos[1]))
        moved_from = {vertex: self._positions[vertex] for vertex in moves}
        changed: List[int] = sorted(
            {index for vertex in moves for index in self._incident.get(vertex, ())}
        )
        return moves, moved_from, changed

    def _geometry_for(self, moves: Mapping[int, Position], changed: Sequence[int]):
        positions = self._positions
        new_ends: List[Tuple[Position, Position]] = []
        new_mids: List[Position] = []
        for index in changed:
            a, b, _ = self._edges[index]
            p = moves[a] if a in moves else positions[a]
            q = moves[b] if b in moves else positions[b]
            new_ends.append((p, q))
            new_mids.append(edge_midpoint(p, q))
        return new_ends, new_mids

    def _assemble_delta(self, changed, new_ends, new_mids, newrows, old_cross, new_cross):
        """Cost delta + post-move sums from an engine evaluation (pure).

        Runs the tiny k-term arithmetic in shared Python code so every
        engine produces bit-identical deltas: the engines contribute only
        the tree-folded rows and the crossing counts.
        """
        engine = self._engine
        ends = self._ends
        edges = self._edges
        mids = self._mids
        sqrt = math.sqrt
        total_length = self.total_edge_length
        weighted_length = self.total_weighted_length
        for t, index in enumerate(changed):
            p_old, q_old = ends[index]
            p, q = new_ends[t]
            old_len = abs(p_old[0] - q_old[0]) + abs(p_old[1] - q_old[1])
            new_len = abs(p[0] - q[0]) + abs(p[1] - q[1])
            total_length += new_len - old_len
            weighted_length += edges[index][2] * (new_len - old_len)
        old_spacing = 0.0
        for index in changed:
            old_spacing += engine.row_sum(index)
        old_mids = [mids[index] for index in changed]
        k = len(changed)
        for t in range(k):
            row, col = old_mids[t]
            for u in range(t + 1, k):
                other_row, other_col = old_mids[u]
                dr = row - other_row
                dc = col - other_col
                old_spacing -= sqrt(dr * dr + dc * dc)
        new_spacing = 0.0
        for value in newrows:
            new_spacing += value
        for t in range(k):
            row, col = new_mids[t]
            for u in range(t + 1, k):
                other_row, other_col = new_mids[u]
                dr = row - other_row
                dc = col - other_col
                new_spacing += sqrt(dr * dr + dc * dc)
        crossings_after = self.crossings + (new_cross - old_cross)
        spacing_after = self.spacing_sum + (new_spacing - old_spacing)
        cost_after = self._cost_from(crossings_after, total_length, spacing_after)
        delta = cost_after - self._cost_value
        return delta, (total_length, weighted_length, crossings_after, spacing_after), cost_after

    def evaluate(self, updates: Mapping[int, Position]) -> float:
        """Cost delta of moving vertices to new positions, without moving.

        Pure with respect to the tracked state: nothing changes until
        :meth:`commit_evaluated` (which reuses this evaluation — no
        geometry test runs twice).  Unknown vertices are ignored; moves
        that touch no edge cost 0.0.
        """
        moves, moved_from, changed = self._prepare(updates)
        if not moves or not changed:
            self._pending_eval = (moves, moved_from, changed, None)
            return 0.0
        self._flush_pending()
        new_ends, new_mids = self._geometry_for(moves, changed)
        newrows, old_cross, new_cross = self._engine.eval(
            changed, new_ends, new_mids
        )
        delta, sums_after, cost_after = self._assemble_delta(
            changed, new_ends, new_mids, newrows, old_cross, new_cross
        )
        self._pending_eval = (
            moves, moved_from, changed, (new_ends, new_mids, sums_after, cost_after)
        )
        return delta

    def evaluate_many(
        self, updates_list: Sequence[Mapping[int, Position]]
    ) -> List[float]:
        """Cost deltas of independent proposals against the current state.

        Every proposal is evaluated as if applied alone (none is
        committed); the compiled engine folds the whole batch into one
        kernel call.  Bit-identical to calling :meth:`evaluate` per item.
        """
        self._flush_pending()
        deltas = [0.0] * len(updates_list)
        engine_moves = []
        slots = []
        for slot, updates in enumerate(updates_list):
            moves, _, changed = self._prepare(updates)
            if moves and changed:
                new_ends, new_mids = self._geometry_for(moves, changed)
                engine_moves.append((changed, new_ends, new_mids))
                slots.append(slot)
        if engine_moves:
            results = self._engine.eval_many(engine_moves)
            for slot, move, result in zip(slots, engine_moves, results):
                changed, new_ends, new_mids = move
                newrows, old_cross, new_cross = result
                delta, _, _ = self._assemble_delta(
                    changed, new_ends, new_mids, newrows, old_cross, new_cross
                )
                deltas[slot] = delta
        return deltas

    def commit_evaluated(self) -> None:
        """Make the last :meth:`evaluate` move the committed state.

        Cheap: positions, endpoints, midpoints and the metric sums come
        from the stored evaluation; the engine's heavy geometry update is
        deferred until the next evaluation needs it, so a subsequent
        :meth:`revert_last` stays O(1).
        """
        if self._pending_eval is None:
            raise RuntimeError("no evaluate() to commit")
        moves, moved_from, changed, record = self._pending_eval
        self._pending_eval = None
        if record is None:
            self._positions.update(moves)
            self._last_move = (moved_from, [], [], [], None)
            return
        new_ends, new_mids, sums_after, cost_after = record
        ends_before = [self._ends[index] for index in changed]
        mids_before = [self._mids[index] for index in changed]
        sums_before = (
            self.total_edge_length,
            self.total_weighted_length,
            self.crossings,
            self.spacing_sum,
            self._cost_value,
        )
        self._positions.update(moves)
        for t, index in enumerate(changed):
            self._ends[index] = new_ends[t]
            self._mids[index] = new_mids[t]
        (
            self.total_edge_length,
            self.total_weighted_length,
            self.crossings,
            self.spacing_sum,
        ) = sums_after
        self._cost_value = cost_after
        self._pending = (changed, new_ends, new_mids)
        self._last_move = (moved_from, changed, ends_before, mids_before, sums_before)

    def apply(self, updates: Mapping[int, Position]) -> float:
        """Move vertices to new positions; returns the combined-cost delta.

        ``updates`` maps vertices to their new ``(row, col)`` positions.
        Unknown vertices are ignored.  Undo with :meth:`revert_last`
        (cheap, restores the pre-move state exactly) or by applying the
        inverse mapping.
        """
        delta = self.evaluate(updates)
        self.commit_evaluated()
        return delta

    def revert_last(self) -> None:
        """Undo the most recent :meth:`apply`, restoring its pre-move state.

        Exact and cheap: positions, endpoints, midpoints and the metric
        sums are restored from the commit-time snapshot, and the engine
        update is simply cancelled when still pending (the common case —
        no crossing test or spacing fold runs at all).  One-shot: raises
        :class:`RuntimeError` if there is no un-reverted apply.
        """
        if self._last_move is None:
            raise RuntimeError("no apply() to revert")
        moved_from, changed, ends_before, mids_before, sums_before = self._last_move
        self._last_move = None
        self._pending_eval = None
        self._positions.update(moved_from)
        if not changed:
            return
        if self._pending is not None:
            # The engine never saw this move: dropping it is the undo.
            self._pending = None
        else:
            # An evaluation in between already flushed the move; push the
            # old geometry back through the engine.
            self._engine.flush(changed, ends_before, mids_before)
        for t, index in enumerate(changed):
            self._ends[index] = ends_before[t]
            self._mids[index] = mids_before[t]
        (
            self.total_edge_length,
            self.total_weighted_length,
            self.crossings,
            self.spacing_sum,
            self._cost_value,
        ) = sums_before


def pearson_correlation(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation coefficient between two equal-length samples.

    Used to reproduce the r-values of Fig. 6.  Returns 0.0 when either sample
    has zero variance (a degenerate but non-erroneous case).
    """
    if len(xs) != len(ys):
        raise ValueError("samples must have equal length")
    n = len(xs)
    if n < 2:
        return 0.0
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x <= 0 or var_y <= 0:
        return 0.0
    # Multiply the square roots rather than square-rooting the product:
    # var_x * var_y underflows to 0.0 for near-denormal variances, which
    # would divide by zero despite the positive-variance guard above.
    denominator = math.sqrt(var_x) * math.sqrt(var_y)
    if denominator == 0.0:
        return 0.0
    return cov / denominator
