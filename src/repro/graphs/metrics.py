"""Mapping-quality metrics: edge length, edge spacing and edge crossings.

Section VI-A of the paper studies three heuristics for predicting braid
congestion from a qubit mapping, and Fig. 6 reports their correlation with
simulated circuit latency:

* **edge (Manhattan) length** — longer braids occupy more channel area and
  are more likely to conflict (r = 0.601),
* **edge spacing** — the average distance between braid midpoints; larger
  spacing means braids are spread out and conflict less (r = -0.625),
* **edge crossings** — two braids whose endpoint-to-endpoint segments cross
  must serialise (r = 0.831, the strongest predictor).

All metrics take an interaction graph together with a *position map*
``{qubit: (row, col)}``; they are agnostic to how the mapping was produced so
every mapper and the correlation experiment can share them.

Two implementations of the quadratic metrics exist side by side:

* the **fast engine** (the default): crossing counting hashes every edge
  segment into the grid buckets its bounding box overlaps, so only segment
  pairs whose bounding boxes share a bucket are orientation-tested —
  near-linear on the compact placements the mappers produce; spacing keeps
  the full pairwise sum (every midpoint pair contributes to the exact
  mean, so pruning is impossible) but evaluates it in vectorized blocks;
* the ``*_reference`` functions keep the original O(m^2) pairwise loops as
  a brute-force oracle for parity tests and benchmarks.

:class:`MappingCostTracker` maintains all three metrics *incrementally*
under single-vertex moves (only edges incident to the moved vertices are
re-tested against their bucket neighbourhoods), which is what lets the
force-directed annealer of Section VI-B.1 accept or reject every move
against the exact combined cost at any graph size.
"""

from __future__ import annotations

import itertools
import math
from collections import defaultdict
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

import networkx as nx

try:  # Optional: vectorises the O(m^2) spacing sums when present.
    import numpy as _np
except ImportError:  # pragma: no cover - the container bakes numpy in
    _np = None

Position = Tuple[float, float]
PositionMap = Mapping[int, Position]


def _placed_edges(
    graph: nx.Graph, positions: PositionMap
) -> List[Tuple[int, int, Position, Position]]:
    """Every non-loop edge with its endpoint vertices and placed coordinates."""
    edges: List[Tuple[int, int, Position, Position]] = []
    for a, b in graph.edges():
        if a == b:
            continue  # a self-loop has a degenerate (point) segment
        if a not in positions or b not in positions:
            raise KeyError(f"edge ({a}, {b}) has an unplaced endpoint")
        edges.append((a, b, positions[a], positions[b]))
    return edges


def manhattan_distance(p: Position, q: Position) -> float:
    """Manhattan (L1) distance between two grid positions."""
    return abs(p[0] - q[0]) + abs(p[1] - q[1])


def euclidean_distance(p: Position, q: Position) -> float:
    """Euclidean (L2) distance between two grid positions."""
    return math.hypot(p[0] - q[0], p[1] - q[1])


def total_edge_length(
    graph: nx.Graph, positions: PositionMap, weighted: bool = True
) -> float:
    """Sum of Manhattan edge lengths (optionally weighted by interaction count)."""
    total = 0.0
    for a, b, data in graph.edges(data=True):
        weight = data.get("weight", 1) if weighted else 1
        total += weight * manhattan_distance(positions[a], positions[b])
    return total


def _non_loop_edge_count(graph: nx.Graph) -> int:
    """Number of edges between distinct vertices (self-loops excluded).

    Every Fig. 6 metric ignores self-loops — a qubit does not braid with
    itself — so they share this denominator and agree with
    :class:`MappingCostTracker`, which skips loops when indexing edges.
    """
    return sum(1 for a, b in graph.edges() if a != b)


def average_edge_length(graph: nx.Graph, positions: PositionMap) -> float:
    """Average Manhattan edge length of the mapping (Fig. 6, middle metric)."""
    edges = _non_loop_edge_count(graph)
    if edges == 0:
        return 0.0
    # Self-loops contribute zero length, so the unweighted total needs no
    # loop filtering — only the denominator does.
    return total_edge_length(graph, positions, weighted=False) / edges


def edge_midpoint(p: Position, q: Position) -> Position:
    """Midpoint of a placed edge, used by the spacing metric and repulsion force."""
    return ((p[0] + q[0]) / 2.0, (p[1] + q[1]) / 2.0)


def _edge_midpoints(graph: nx.Graph, positions: PositionMap) -> List[Position]:
    """Midpoints of every non-loop edge (self-loops carry no braid)."""
    return [
        edge_midpoint(positions[a], positions[b])
        for a, b in graph.edges()
        if a != b
    ]


def _pairwise_distance_sum(midpoints: Sequence[Position]) -> float:
    """Exact sum of Euclidean distances over all unordered midpoint pairs.

    Uses numpy block evaluation when available (identical result up to
    floating-point summation order); falls back to the pairwise loop.
    """
    n = len(midpoints)
    if n < 2:
        return 0.0
    if _np is not None and n >= 64:
        arr = _np.asarray(midpoints, dtype=float)
        total = 0.0
        chunk = 256
        for start in range(0, n - 1, chunk):
            block = arr[start : start + chunk]
            b = len(block)
            # Rectangle of this block against every row from `start` on; the
            # leading b columns are the block-vs-block square (keep its
            # strict upper triangle), the rest are full cross pairs.
            d_row = block[:, 0:1] - arr[start:, 0][None, :]
            d_col = block[:, 1:2] - arr[start:, 1][None, :]
            distances = _np.hypot(d_row, d_col)
            upper = _np.triu(distances[:, :b], k=1).sum()
            total += float(upper + distances[:, b:].sum())
        return total
    total = 0.0
    for p, q in itertools.combinations(midpoints, 2):
        total += math.hypot(p[0] - q[0], p[1] - q[1])
    return total


def average_edge_spacing(graph: nx.Graph, positions: PositionMap) -> float:
    """Average pairwise distance between edge midpoints (Fig. 6, right metric).

    Larger values mean braids are more spread out over the mesh and are less
    likely to contend for the same channels.  The value is exact; see
    :func:`average_edge_spacing_reference` for the plain pairwise loop.
    """
    midpoints = _edge_midpoints(graph, positions)
    if len(midpoints) < 2:
        return 0.0
    pairs = len(midpoints) * (len(midpoints) - 1) // 2
    return _pairwise_distance_sum(midpoints) / pairs


def average_edge_spacing_reference(graph: nx.Graph, positions: PositionMap) -> float:
    """Brute-force O(m^2) oracle for :func:`average_edge_spacing`."""
    midpoints = _edge_midpoints(graph, positions)
    if len(midpoints) < 2:
        return 0.0
    total = 0.0
    count = 0
    for p, q in itertools.combinations(midpoints, 2):
        total += euclidean_distance(p, q)
        count += 1
    return total / count


def _orientation(p: Position, q: Position, r: Position) -> int:
    """Orientation of the ordered triple (p, q, r): 0 collinear, 1 cw, 2 ccw."""
    value = (q[1] - p[1]) * (r[0] - q[0]) - (q[0] - p[0]) * (r[1] - q[1])
    if abs(value) < 1e-12:
        return 0
    return 1 if value > 0 else 2


def _on_segment(p: Position, q: Position, r: Position) -> bool:
    """Whether collinear point ``q`` lies on segment ``pr``."""
    return (
        min(p[0], r[0]) - 1e-12 <= q[0] <= max(p[0], r[0]) + 1e-12
        and min(p[1], r[1]) - 1e-12 <= q[1] <= max(p[1], r[1]) + 1e-12
    )


def _segments_cross(
    a1: Position, a2: Position, b1: Position, b2: Position
) -> bool:
    """Purely geometric segment-intersection test (no endpoint exclusion)."""
    o1 = _orientation(a1, a2, b1)
    o2 = _orientation(a1, a2, b2)
    o3 = _orientation(b1, b2, a1)
    o4 = _orientation(b1, b2, a2)

    if o1 != o2 and o3 != o4:
        return True
    if o1 == 0 and _on_segment(a1, b1, a2):
        return True
    if o2 == 0 and _on_segment(a1, b2, a2):
        return True
    if o3 == 0 and _on_segment(b1, a1, b2):
        return True
    if o4 == 0 and _on_segment(b1, a2, b2):
        return True
    return False


def segments_intersect(
    a1: Position, a2: Position, b1: Position, b2: Position
) -> bool:
    """Whether segments ``a1-a2`` and ``b1-b2`` intersect (shared coordinates excluded).

    Edges that merely meet at a shared qubit are not counted as crossings —
    they serialise through the dependency DAG rather than through routing
    conflicts.  This helper can only see coordinates, so it excludes shared
    *coordinate* endpoints; :func:`count_edge_crossings` instead excludes by
    graph endpoint identity, which is the correct rule when two distinct
    vertices coincide in position.
    """
    endpoints_a = {a1, a2}
    endpoints_b = {b1, b2}
    if endpoints_a & endpoints_b:
        return False
    return _segments_cross(a1, a2, b1, b2)


# ----------------------------------------------------------------------
# Bucketed segment index
# ----------------------------------------------------------------------
class _SegmentGrid:
    """Uniform spatial hash of segments, bucketed by bounding-box coverage.

    Each segment is registered in every grid bucket its axis-aligned
    bounding box overlaps.  Two segments can only intersect if their
    bounding boxes overlap, and overlapping boxes always share at least one
    bucket, so the per-bucket candidate lists are a sound pruning of the
    O(m^2) pair space.
    """

    def __init__(self, bucket_size: float) -> None:
        if bucket_size <= 0:
            raise ValueError(f"bucket_size must be positive, got {bucket_size}")
        self.bucket_size = float(bucket_size)
        self._buckets: Dict[Tuple[int, int], Set[int]] = defaultdict(set)

    def cells(self, p: Position, q: Position) -> List[Tuple[int, int]]:
        """The bucket keys overlapped by the bounding box of segment ``p-q``."""
        size = self.bucket_size
        row_lo = math.floor(min(p[0], q[0]) / size)
        row_hi = math.floor(max(p[0], q[0]) / size)
        col_lo = math.floor(min(p[1], q[1]) / size)
        col_hi = math.floor(max(p[1], q[1]) / size)
        return [
            (row, col)
            for row in range(row_lo, row_hi + 1)
            for col in range(col_lo, col_hi + 1)
        ]

    def insert(self, index: int, cells: Iterable[Tuple[int, int]]) -> None:
        for cell in cells:
            self._buckets[cell].add(index)

    def remove(self, index: int, cells: Iterable[Tuple[int, int]]) -> None:
        for cell in cells:
            bucket = self._buckets.get(cell)
            if bucket is not None:
                bucket.discard(index)
                if not bucket:
                    del self._buckets[cell]

    def candidates(self, cells: Iterable[Tuple[int, int]]) -> Set[int]:
        """Indices of every registered segment sharing a bucket with ``cells``."""
        found: Set[int] = set()
        buckets = self._buckets
        for cell in cells:
            bucket = buckets.get(cell)
            if bucket:
                found.update(bucket)
        return found


def _auto_bucket_size(
    ends: Sequence[Tuple[int, int, Position, Position]]
) -> float:
    """Bucket size matched to the average segment extent of the layout.

    A bucket around the mean bounding-box span keeps both failure modes in
    check: much smaller buckets make long segments pay for many insertions,
    much larger ones stop pruning pairs at all.
    """
    if not ends:
        return 1.0
    total_span = 0.0
    for _, _, p, q in ends:
        total_span += max(abs(p[0] - q[0]), abs(p[1] - q[1]))
    return max(2.0, total_span / (4.0 * len(ends)))


def count_edge_crossings(
    graph: nx.Graph, positions: PositionMap, bucket_size: Optional[float] = None
) -> int:
    """Count pairs of placed edges whose straight segments cross (Fig. 6, left).

    This is the geometric crossing count over the geodesic (straight-line)
    paths between endpoints, matching the paper's definition in VI-A.3.
    Pairs of edges sharing a graph endpoint are excluded *by vertex
    identity* — two edges between four distinct qubits count even when some
    of their endpoints coincide in position.  Candidate pairs are pruned
    through a spatial bucket grid (see :class:`_SegmentGrid`); the result is
    identical to :func:`count_edge_crossings_reference`.
    """
    edges = _placed_edges(graph, positions)
    if len(edges) < 2:
        return 0
    if bucket_size is None:
        bucket_size = _auto_bucket_size(edges)
    grid = _SegmentGrid(bucket_size)
    crossings = 0
    for index, (a, b, pa, pb) in enumerate(edges):
        cells = grid.cells(pa, pb)
        row_lo, row_hi = min(pa[0], pb[0]), max(pa[0], pb[0])
        col_lo, col_hi = min(pa[1], pb[1]), max(pa[1], pb[1])
        for other in grid.candidates(cells):
            c, d, pc, pd = edges[other]
            if a == c or a == d or b == c or b == d:
                continue
            # Cheap bounding-box rejection before the orientation tests:
            # sharing a bucket does not imply overlapping boxes.  The margin
            # matches the collinearity tolerance of ``_on_segment``.
            if (
                max(pc[0], pd[0]) < row_lo - 1e-12
                or min(pc[0], pd[0]) > row_hi + 1e-12
                or max(pc[1], pd[1]) < col_lo - 1e-12
                or min(pc[1], pd[1]) > col_hi + 1e-12
            ):
                continue
            if _segments_cross(pa, pb, pc, pd):
                crossings += 1
        # Insert after querying: each unordered pair is tested exactly once,
        # when the later of the two edges is the query.
        grid.insert(index, cells)
    return crossings


def count_edge_crossings_reference(graph: nx.Graph, positions: PositionMap) -> int:
    """Brute-force O(m^2) oracle for :func:`count_edge_crossings`.

    Same semantics (vertex-identity endpoint exclusion), plain pairwise loop.
    """
    edges = _placed_edges(graph, positions)
    crossings = 0
    for (a, b, pa, pb), (c, d, pc, pd) in itertools.combinations(edges, 2):
        if a == c or a == d or b == c or b == d:
            continue
        if _segments_cross(pa, pb, pc, pd):
            crossings += 1
    return crossings


def mapping_metrics(graph: nx.Graph, positions: PositionMap) -> Dict[str, float]:
    """All three Fig. 6 metrics for a mapping, as a dictionary.

    Keys: ``edge_crossings``, ``average_edge_length``, ``average_edge_spacing``.
    """
    return {
        "edge_crossings": float(count_edge_crossings(graph, positions)),
        "average_edge_length": average_edge_length(graph, positions),
        "average_edge_spacing": average_edge_spacing(graph, positions),
    }


def combine_metric_cost(
    crossings: float,
    avg_length: float,
    avg_spacing: float,
    length_weight: float = 1.0,
    spacing_weight: float = 1.0,
    crossing_weight: float = 4.0,
) -> float:
    """The scalar Fig. 6 cost formula shared by :func:`mapping_cost` and the tracker."""
    return (
        crossing_weight * crossings
        + length_weight * avg_length
        + spacing_weight * (1.0 / (1.0 + avg_spacing))
    )


def mapping_cost(
    graph: nx.Graph,
    positions: PositionMap,
    length_weight: float = 1.0,
    spacing_weight: float = 1.0,
    crossing_weight: float = 4.0,
) -> float:
    """Scalar cost combining the three metrics (lower is better).

    The force-directed annealer of Section VI-B.1 accepts or rejects vertex
    moves based on "a cost metric ... a function of the combination of
    average edge length, average edge spacing, and number of edge crossings".
    Crossings get the largest default weight because they correlate most
    strongly with latency (r = 0.831).
    """
    metrics = mapping_metrics(graph, positions)
    return combine_metric_cost(
        metrics["edge_crossings"],
        metrics["average_edge_length"],
        metrics["average_edge_spacing"],
        length_weight=length_weight,
        spacing_weight=spacing_weight,
        crossing_weight=crossing_weight,
    )


# ----------------------------------------------------------------------
# Incremental cost tracking
# ----------------------------------------------------------------------
class MappingCostTracker:
    """Exact Fig. 6 metrics maintained incrementally under vertex moves.

    Holds the crossing count, the total (and weighted) Manhattan edge
    length, and the pairwise midpoint-distance sum behind the spacing
    metric for one placed interaction graph.  :meth:`apply` moves a batch of
    vertices and updates every metric by *delta*: only the edges incident to
    the moved vertices are re-tested, against their bucket neighbourhoods
    for crossings and against the midpoint set for spacing — O(deg * local
    density) per move instead of O(m^2) per recompute.

    Applying the inverse update dict restores the previous state (crossing
    counts exactly; the floating-point sums up to summation round-off), so
    an annealer can propose, inspect the returned cost delta, and revert.

    Vertices present in ``positions`` but not in the graph (or isolated in
    it) may be moved freely; they contribute nothing to any metric.
    """

    def __init__(
        self,
        graph: nx.Graph,
        positions: PositionMap,
        length_weight: float = 1.0,
        spacing_weight: float = 1.0,
        crossing_weight: float = 4.0,
        bucket_size: Optional[float] = None,
    ) -> None:
        self.graph = graph
        self.length_weight = length_weight
        self.spacing_weight = spacing_weight
        self.crossing_weight = crossing_weight

        self._positions: Dict[int, Position] = {
            vertex: (float(pos[0]), float(pos[1]))
            for vertex, pos in positions.items()
        }
        self._edges: List[Tuple[int, int, float]] = []
        self._incident: Dict[int, List[int]] = defaultdict(list)
        for a, b, data in graph.edges(data=True):
            if a == b:
                continue
            if a not in self._positions or b not in self._positions:
                raise KeyError(f"edge ({a}, {b}) has an unplaced endpoint")
            index = len(self._edges)
            self._edges.append((a, b, float(data.get("weight", 1))))
            self._incident[a].append(index)
            self._incident[b].append(index)

        self._ends: List[Tuple[Position, Position]] = [
            (self._positions[a], self._positions[b]) for a, b, _ in self._edges
        ]
        self._use_numpy = _np is not None and len(self._edges) >= 64
        if self._use_numpy:
            self._mid = _np.asarray(
                [edge_midpoint(p, q) for p, q in self._ends], dtype=float
            ).reshape(len(self._ends), 2)
            # Flat endpoint/vertex arrays for the vectorised crossing test.
            self._seg = _np.asarray(
                [(p[0], p[1], q[0], q[1]) for p, q in self._ends], dtype=float
            ).reshape(len(self._ends), 4)
            self._end_u = _np.asarray([a for a, _, _ in self._edges])
            self._end_v = _np.asarray([b for _, b, _ in self._edges])
        else:
            self._mid_list: List[Position] = [
                edge_midpoint(p, q) for p, q in self._ends
            ]

        self.total_edge_length = 0.0
        self.total_weighted_length = 0.0
        for (p, q), (_, _, weight) in zip(self._ends, self._edges):
            length = manhattan_distance(p, q)
            self.total_edge_length += length
            self.total_weighted_length += weight * length

        self.spacing_sum = _pairwise_distance_sum(self._midpoints_seq())

        if bucket_size is None:
            bucket_size = _auto_bucket_size(
                [(a, b, p, q) for (a, b, _), (p, q) in zip(self._edges, self._ends)]
            )
        self._grid = _SegmentGrid(bucket_size)
        self._cells: List[List[Tuple[int, int]]] = []
        self.crossings = 0
        for index, (p, q) in enumerate(self._ends):
            cells = self._grid.cells(p, q)
            self.crossings += self._crossings_with_candidates(
                index, p, q, self._grid.candidates(cells)
            )
            self._grid.insert(index, cells)
            self._cells.append(cells)

        #: Snapshot for :meth:`revert_last`; ``None`` when nothing to revert.
        self._last_move: Optional[tuple] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Number of (non-loop) tracked edges."""
        return len(self._edges)

    def position(self, vertex: int) -> Position:
        """The tracked position of ``vertex``."""
        return self._positions[vertex]

    def metrics(self) -> Dict[str, float]:
        """The three Fig. 6 metrics, keyed like :func:`mapping_metrics`."""
        m = len(self._edges)
        pairs = m * (m - 1) // 2
        return {
            "edge_crossings": float(self.crossings),
            "average_edge_length": self.total_edge_length / m if m else 0.0,
            "average_edge_spacing": self.spacing_sum / pairs if pairs else 0.0,
        }

    def cost(self) -> float:
        """The combined scalar cost, identical to :func:`mapping_cost`."""
        metrics = self.metrics()
        return combine_metric_cost(
            metrics["edge_crossings"],
            metrics["average_edge_length"],
            metrics["average_edge_spacing"],
            length_weight=self.length_weight,
            spacing_weight=self.spacing_weight,
            crossing_weight=self.crossing_weight,
        )

    # ------------------------------------------------------------------
    # Delta updates
    # ------------------------------------------------------------------
    def apply(self, updates: Mapping[int, Position]) -> float:
        """Move vertices to new positions; returns the combined-cost delta.

        ``updates`` maps vertices to their new ``(row, col)`` positions.
        Unknown vertices are ignored.  Undo with :meth:`revert_last`
        (cheap, restores the pre-move state exactly) or by applying the
        inverse mapping.
        """
        moves: Dict[int, Position] = {}
        for vertex, pos in updates.items():
            if vertex in self._positions:
                moves[vertex] = (float(pos[0]), float(pos[1]))
        moved_from = {vertex: self._positions[vertex] for vertex in moves}
        if not moves:
            self._last_move = (moved_from, [], [], [], [], (0.0, 0.0, 0, 0.0))
            return 0.0
        cost_before = self.cost()

        changed: List[int] = sorted(
            {index for vertex in moves for index in self._incident.get(vertex, ())}
        )
        if not changed:
            # Isolated vertices: position bookkeeping only.
            self._positions.update(moves)
            self._last_move = (moved_from, [], [], [], [], (0.0, 0.0, 0, 0.0))
            return 0.0

        # Snapshot everything revert_last() needs to restore the pre-move
        # state without re-running any geometry test.
        ends_before = [self._ends[index] for index in changed]
        cells_before = [self._cells[index] for index in changed]
        mid_before = [self._midpoint_of(index) for index in changed]
        sums_before = (
            self.total_edge_length,
            self.total_weighted_length,
            self.crossings,
            self.spacing_sum,
        )

        changed_set = set(changed)
        for index in changed:
            self._grid.remove(index, self._cells[index])

        old_crossings = self._crossings_of_changed(changed, changed_set)
        old_spacing = self._spacing_contribution(changed)

        self._positions.update(moves)
        for index in changed:
            a, b, weight = self._edges[index]
            p_old, q_old = self._ends[index]
            old_length = manhattan_distance(p_old, q_old)
            p, q = self._positions[a], self._positions[b]
            self._ends[index] = (p, q)
            new_length = manhattan_distance(p, q)
            self.total_edge_length += new_length - old_length
            self.total_weighted_length += weight * (new_length - old_length)
            midpoint = edge_midpoint(p, q)
            if self._use_numpy:
                self._mid[index, 0] = midpoint[0]
                self._mid[index, 1] = midpoint[1]
                self._seg[index, 0] = p[0]
                self._seg[index, 1] = p[1]
                self._seg[index, 2] = q[0]
                self._seg[index, 3] = q[1]
            else:
                self._mid_list[index] = midpoint

        new_crossings = self._crossings_of_changed(changed, changed_set)
        new_spacing = self._spacing_contribution(changed)

        for index in changed:
            p, q = self._ends[index]
            cells = self._grid.cells(p, q)
            self._grid.insert(index, cells)
            self._cells[index] = cells

        self.crossings += new_crossings - old_crossings
        self.spacing_sum += new_spacing - old_spacing
        self._last_move = (
            moved_from,
            changed,
            ends_before,
            cells_before,
            mid_before,
            sums_before,
        )
        return self.cost() - cost_before

    def revert_last(self) -> None:
        """Undo the most recent :meth:`apply`, restoring its pre-move state.

        Exact and cheap: positions, endpoints, midpoints, bucket cells and
        the metric sums are restored from the snapshot taken by
        :meth:`apply` — no crossing tests or spacing sums are re-run (an
        annealer's rejected proposals are its dominant path).  One-shot:
        raises :class:`RuntimeError` if there is no un-reverted apply.
        """
        if self._last_move is None:
            raise RuntimeError("no apply() to revert")
        moved_from, changed, ends_before, cells_before, mid_before, sums = (
            self._last_move
        )
        self._last_move = None
        self._positions.update(moved_from)
        for position, index in enumerate(changed):
            self._grid.remove(index, self._cells[index])
            self._grid.insert(index, cells_before[position])
            self._cells[index] = cells_before[position]
            p, q = ends_before[position]
            self._ends[index] = (p, q)
            midpoint = mid_before[position]
            if self._use_numpy:
                self._mid[index, 0] = midpoint[0]
                self._mid[index, 1] = midpoint[1]
                self._seg[index, 0] = p[0]
                self._seg[index, 1] = p[1]
                self._seg[index, 2] = q[0]
                self._seg[index, 3] = q[1]
            else:
                self._mid_list[index] = midpoint
        if changed:
            (
                self.total_edge_length,
                self.total_weighted_length,
                self.crossings,
                self.spacing_sum,
            ) = sums

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _midpoints_seq(self) -> Sequence[Position]:
        if self._use_numpy:
            return [tuple(row) for row in self._mid]
        return self._mid_list

    def _crossings_with_candidates(
        self, index: int, p: Position, q: Position, candidates: Set[int]
    ) -> int:
        """Crossings of edge ``index`` (at ``p-q``) against ``candidates``."""
        if self._use_numpy and len(candidates) >= 16:
            return self._crossings_vectorised(index, p, q, candidates)
        a, b, _ = self._edges[index]
        ends = self._ends
        edges = self._edges
        row_lo, row_hi = min(p[0], q[0]) - 1e-12, max(p[0], q[0]) + 1e-12
        col_lo, col_hi = min(p[1], q[1]) - 1e-12, max(p[1], q[1]) + 1e-12
        count = 0
        for other in candidates:
            if other == index:
                continue
            c, d, _ = edges[other]
            if a == c or a == d or b == c or b == d:
                continue
            pc, pd = ends[other]
            if (
                max(pc[0], pd[0]) < row_lo
                or min(pc[0], pd[0]) > row_hi
                or max(pc[1], pd[1]) < col_lo
                or min(pc[1], pd[1]) > col_hi
            ):
                continue
            if _segments_cross(p, q, pc, pd):
                count += 1
        return count

    def _crossings_vectorised(
        self, index: int, p: Position, q: Position, candidates: Set[int]
    ) -> int:
        """Numpy form of the candidate crossing test for one query edge."""
        idx = _np.fromiter(candidates, dtype=_np.intp, count=len(candidates))
        a, b, _ = self._edges[index]
        n = idx.size
        query = _np.empty((n, 4))
        query[:] = (p[0], p[1], q[0], q[1])
        keep = idx != index
        return self._pairs_crossing_count(
            idx[keep], query[keep], _np.full(n, a)[keep], _np.full(n, b)[keep]
        )

    def _pairs_crossing_count(
        self,
        idx: "_np.ndarray",
        query: "_np.ndarray",
        query_u: "_np.ndarray",
        query_v: "_np.ndarray",
    ) -> int:
        """Crossing count over explicit (query segment, candidate index) pairs.

        Replays exactly the arithmetic of :func:`_segments_cross` (same
        products, same 1e-12 tolerances) over the pair arrays, so the count
        agrees with the scalar path on every input.  ``query`` rows are
        ``(p_row, p_col, q_row, q_col)`` segments; vertex-identity exclusion
        uses ``query_u``/``query_v`` against the candidate endpoint arrays.
        """
        end_u = self._end_u[idx]
        end_v = self._end_v[idx]
        keep = (
            (end_u != query_u)
            & (end_u != query_v)
            & (end_v != query_u)
            & (end_v != query_v)
        )
        if not keep.any():
            return 0
        seg = self._seg[idx[keep]]
        query = query[keep]
        b1r, b1c, b2r, b2c = seg[:, 0], seg[:, 1], seg[:, 2], seg[:, 3]
        pr, pc, qr, qc = query[:, 0], query[:, 1], query[:, 2], query[:, 3]
        tol = 1e-12

        def orient(v1r, v1c, v2r, v2c, wr, wc):
            value = (v2c - v1c) * (wr - v2r) - (v2r - v1r) * (wc - v2c)
            return _np.where(_np.abs(value) < tol, 0, _np.where(value > 0, 1, 2))

        o1 = orient(pr, pc, qr, qc, b1r, b1c)
        o2 = orient(pr, pc, qr, qc, b2r, b2c)
        o3 = orient(b1r, b1c, b2r, b2c, pr, pc)
        o4 = orient(b1r, b1c, b2r, b2c, qr, qc)
        crossing = (o1 != o2) & (o3 != o4)

        def on_segment(ar, ac, br_, bc_, cr, cc):
            return (
                (_np.minimum(ar, cr) - tol <= br_)
                & (br_ <= _np.maximum(ar, cr) + tol)
                & (_np.minimum(ac, cc) - tol <= bc_)
                & (bc_ <= _np.maximum(ac, cc) + tol)
            )

        crossing |= (o1 == 0) & on_segment(pr, pc, b1r, b1c, qr, qc)
        crossing |= (o2 == 0) & on_segment(pr, pc, b2r, b2c, qr, qc)
        crossing |= (o3 == 0) & on_segment(b1r, b1c, pr, pc, b2r, b2c)
        crossing |= (o4 == 0) & on_segment(b1r, b1c, qr, qc, b2r, b2c)
        return int(crossing.sum())

    def _crossings_of_changed(
        self, changed: Sequence[int], changed_set: Set[int]
    ) -> int:
        """Crossings involving at least one changed edge, each pair once.

        Must be called while the changed edges are removed from the grid:
        grid candidates then cover exactly the changed-vs-unchanged pairs,
        and the (small) changed-vs-changed block is enumerated directly.
        """
        count = 0
        if self._use_numpy:
            # One vectorised pass over every (changed edge, candidate) pair.
            idx_parts: List["_np.ndarray"] = []
            query_parts: List["_np.ndarray"] = []
            u_parts: List["_np.ndarray"] = []
            v_parts: List["_np.ndarray"] = []
            for index in changed:
                p, q = self._ends[index]
                cand = self._grid.candidates(self._grid.cells(p, q))
                if not cand:
                    continue
                arr = _np.fromiter(cand, dtype=_np.intp, count=len(cand))
                n = arr.size
                query = _np.empty((n, 4))
                query[:] = (p[0], p[1], q[0], q[1])
                a, b, _ = self._edges[index]
                idx_parts.append(arr)
                query_parts.append(query)
                u_parts.append(_np.full(n, a))
                v_parts.append(_np.full(n, b))
            if idx_parts:
                count += self._pairs_crossing_count(
                    _np.concatenate(idx_parts),
                    _np.vstack(query_parts),
                    _np.concatenate(u_parts),
                    _np.concatenate(v_parts),
                )
        else:
            for index in changed:
                p, q = self._ends[index]
                cells = self._grid.cells(p, q)
                count += self._crossings_with_candidates(
                    index, p, q, self._grid.candidates(cells)
                )
        for position, index in enumerate(changed):
            a, b, _ = self._edges[index]
            p, q = self._ends[index]
            for other in changed[position + 1 :]:
                c, d, _ = self._edges[other]
                if a == c or a == d or b == c or b == d:
                    continue
                pc, pd = self._ends[other]
                if _segments_cross(p, q, pc, pd):
                    count += 1
        return count

    def _spacing_contribution(self, changed: Sequence[int]) -> float:
        """Sum of midpoint distances over pairs touching a changed edge.

        Cross pairs (changed, unchanged) appear once in the per-edge sums;
        intra-changed pairs appear twice, so one copy is subtracted.
        """
        if len(self._edges) < 2:
            return 0.0
        total = 0.0
        if self._use_numpy:
            mid = self._mid
            for index in changed:
                row, col = mid[index, 0], mid[index, 1]
                total += float(
                    _np.hypot(mid[:, 0] - row, mid[:, 1] - col).sum()
                )
        else:
            mid_list = self._mid_list
            for index in changed:
                row, col = mid_list[index]
                for other_row, other_col in mid_list:
                    total += math.hypot(other_row - row, other_col - col)
        for position, index in enumerate(changed):
            row, col = self._midpoint_of(index)
            for other in changed[position + 1 :]:
                other_row, other_col = self._midpoint_of(other)
                total -= math.hypot(other_row - row, other_col - col)
        return total

    def _midpoint_of(self, index: int) -> Position:
        if self._use_numpy:
            return (float(self._mid[index, 0]), float(self._mid[index, 1]))
        return self._mid_list[index]


def pearson_correlation(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation coefficient between two equal-length samples.

    Used to reproduce the r-values of Fig. 6.  Returns 0.0 when either sample
    has zero variance (a degenerate but non-erroneous case).
    """
    if len(xs) != len(ys):
        raise ValueError("samples must have equal length")
    n = len(xs)
    if n < 2:
        return 0.0
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x <= 0 or var_y <= 0:
        return 0.0
    # Multiply the square roots rather than square-rooting the product:
    # var_x * var_y underflows to 0.0 for near-denormal variances, which
    # would divide by zero despite the positive-variance guard above.
    denominator = math.sqrt(var_x) * math.sqrt(var_y)
    if denominator == 0.0:
        return 0.0
    return cov / denominator
