"""Planarity analysis of factory interaction graphs.

Fig. 4 of the paper shows that a *single-level* factory has a planar
interaction graph, while the permutation edges of a multi-level factory
destroy planarity.  The hierarchical-stitching mapper exploits exactly this:
each round decomposes into disjoint planar module subgraphs which can be
embedded nearly optimally, and only the (non-planar) permutation edges need
special treatment.

This module wraps :mod:`networkx`'s planarity check and provides the
per-round / per-module planar decomposition used by the stitcher and the
test-suite.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import networkx as nx

from ..distillation.block_code import Factory
from .interaction import interaction_graph, subgraph_for_qubits


def is_planar(graph: nx.Graph) -> bool:
    """Whether the graph admits a planar embedding."""
    planar, _embedding = nx.check_planarity(graph, counterexample=False)
    return planar


def planar_embedding_positions(graph: nx.Graph) -> Dict[int, Tuple[float, float]]:
    """A planar (crossing-free) straight-line drawing of a planar graph.

    Uses networkx's combinatorial-embedding based planar layout.  Raises
    :class:`networkx.NetworkXException` if the graph is not planar.
    """
    positions = nx.planar_layout(graph)
    return {node: (float(x), float(y)) for node, (x, y) in positions.items()}


def round_interaction_graphs(factory: Factory) -> List[nx.Graph]:
    """Interaction graph of each round of a factory (barriers excluded).

    Round ``r``'s graph contains the qubits active during that round and the
    edges induced by the round's own gates — permutation edges to the next
    round are *not* included because they belong to the boundary, not the
    round.
    """
    graphs: List[nx.Graph] = []
    for round_index in range(1, factory.spec.levels + 1):
        gates = factory.round_gates(round_index)
        qubits = factory.round_qubits(round_index)
        graphs.append(interaction_graph(gates, include_qubits=qubits))
    return graphs


def module_interaction_graphs(factory: Factory, round_index: int) -> List[nx.Graph]:
    """Per-module interaction subgraphs of one round.

    Because modules within a round never interact (Section VII-A), the
    round's graph is the disjoint union of these subgraphs; each of them is
    planar (Fig. 4a) and small enough to embed nearly optimally.
    """
    round_graph = round_interaction_graphs(factory)[round_index - 1]
    graphs: List[nx.Graph] = []
    for module in factory.rounds[round_index - 1]:
        graphs.append(subgraph_for_qubits(round_graph, module.all_qubits))
    return graphs


def modules_are_disjoint(factory: Factory, round_index: int) -> bool:
    """Check that no edge of a round connects two different modules."""
    round_graph = round_interaction_graphs(factory)[round_index - 1]
    owner: Dict[int, int] = {}
    for module in factory.rounds[round_index - 1]:
        for qubit in module.all_qubits:
            owner[qubit] = module.module_index
    for a, b in round_graph.edges():
        if owner.get(a) != owner.get(b):
            return False
    return True


def permutation_edge_list(factory: Factory) -> List[Tuple[int, int]]:
    """The inter-round permutation edges as (producer qubit, first consumer gate qubit).

    Each permutation edge corresponds to the injection gates of the consumer
    module acting on a producer-round output qubit; we return the
    (producer output qubit, consumer ancilla qubit) pairs observed in the
    circuit so the stitcher can route them explicitly.
    """
    consumer_inputs = {
        edge.producer_qubit: (edge.consumer_module, edge.round_index)
        for edge in factory.permutation_edges
    }
    pairs: List[Tuple[int, int]] = []
    for gate in factory.circuit:
        if gate.is_barrier:
            continue
        for a, b in gate.interaction_pairs():
            if a in consumer_inputs:
                pairs.append((a, b))
            elif b in consumer_inputs:
                pairs.append((b, a))
    return pairs


def planar_round_fraction(factory: Factory) -> float:
    """Fraction of rounds whose interaction graph is planar.

    Single-level factories should report 1.0; the per-round graphs of
    multi-level factories should as well, because the non-planarity only
    arises once permutation edges are merged in (Fig. 4b vs 4c).
    """
    graphs = round_interaction_graphs(factory)
    if not graphs:
        return 1.0
    planar = sum(1 for graph in graphs if is_planar(graph))
    return planar / len(graphs)
