"""The sweep service: HTTP API, job queue, and wire-format validation.

``repro-msfu serve`` exposes the evaluation pipeline as a long-running
shared endpoint: clients POST ``EvaluationRequest``/``SweepPlan`` JSON,
identical in-flight requests coalesce into one evaluation, warm clients
revalidate by fingerprint ETag (``304``), and every result persists
through the content-addressed :class:`~repro.api.store.ResultStore` so a
killed server resumes its jobs on restart.  See
:mod:`repro.service.server` for the endpoint table.
"""

from .jobs import Job, JobManager, JobState, plan_fingerprint
from .server import (
    SERVICE_VERSION,
    EvaluateOutcome,
    ServiceCounters,
    SweepService,
    build_handler,
    create_server,
    serve,
)
from .wire import (
    WireFormatError,
    decode_evaluation_request,
    decode_sweep_plan,
    validate_mapper_name,
    validate_plan_mappers,
)

__all__ = [
    "Job",
    "JobManager",
    "JobState",
    "plan_fingerprint",
    "SERVICE_VERSION",
    "EvaluateOutcome",
    "ServiceCounters",
    "SweepService",
    "build_handler",
    "create_server",
    "serve",
    "WireFormatError",
    "decode_evaluation_request",
    "decode_sweep_plan",
    "validate_mapper_name",
    "validate_plan_mappers",
]
