"""Structured validation of the JSON wire format.

``EvaluationRequest.from_dict`` / ``SweepPlan.from_dict`` are exact
inverses of ``to_dict`` and assume well-formed input: handed a malformed
payload they surface raw ``KeyError``/``TypeError``s from deep inside the
decoders.  That is fine for trusted round trips but useless as an error
contract for a network service (or a ``--plan`` file typed by a human).

This module is the validating front door both the sweep service and
``repro-msfu sweep run --plan`` decode through:

* :class:`WireFormatError` — a :class:`ValueError` carrying the dotted
  ``field`` path of the offending value (``requests[3].capacity``), so an
  HTTP 400 body or an exit-2 CLI message can say exactly what to fix;
* :func:`decode_evaluation_request` / :func:`decode_sweep_plan` — type- and
  range-checked decoding into the existing request/plan classes;
* :func:`validate_plan_mappers` — registry validation of every mapper name
  a plan references, with the registered names listed in the message (the
  same fail-fast contract the grid flags already have), applied *before*
  any work is queued so an unknown name can never become a mid-run
  traceback in a worker process.
"""

from __future__ import annotations

from typing import Any, List, Mapping, Optional

from ..api.executor import SweepPlan
from ..api.mappers import available_mappers
from ..api.pipeline import EvaluationRequest
from ..api.sharding import SHARD_STRATEGIES, ShardSpec


class WireFormatError(ValueError):
    """A wire payload failed validation; ``field`` names the offending value.

    ``field`` is a dotted path into the payload (``capacity``,
    ``requests[3].method``) or ``None`` when the problem is the payload as
    a whole (e.g. not a JSON object).  ``str()`` always includes the path.
    """

    def __init__(self, message: str, field: Optional[str] = None) -> None:
        self.field = field
        super().__init__(f"{field}: {message}" if field else message)

    def to_dict(self) -> dict:
        """The JSON body a 400 response carries."""
        return {"error": {"message": str(self), "field": self.field}}


def _path(prefix: str, key: str) -> str:
    return f"{prefix}.{key}" if prefix else key


def _require_int(value: Any, field: str, minimum: Optional[int] = None) -> int:
    # bool is an int subclass; "capacity": true must not validate.
    if isinstance(value, bool) or not isinstance(value, int):
        raise WireFormatError(
            f"expected an integer, got {type(value).__name__}", field
        )
    if minimum is not None and value < minimum:
        raise WireFormatError(f"must be >= {minimum}, got {value}", field)
    return value


#: Top-level request keys, with their human-readable type requirement.
_REQUEST_KEYS = {
    "method",
    "capacity",
    "levels",
    "reuse",
    "seed",
    "fd_config",
    "stitch_config",
    "sim_config",
    "options",
}


def decode_evaluation_request(
    data: Any, field_prefix: str = ""
) -> EvaluationRequest:
    """Decode one ``EvaluationRequest.to_dict`` payload, validating it.

    Raises :class:`WireFormatError` naming the offending field on any shape
    problem — a missing/mistyped key, an unknown key (almost always a
    typo'd option name), or a config sub-object the typed decoders reject.
    """
    if not isinstance(data, Mapping):
        raise WireFormatError(
            f"expected a JSON object describing an evaluation request, "
            f"got {type(data).__name__}",
            field_prefix or None,
        )
    unknown = sorted(set(data) - _REQUEST_KEYS)
    if unknown:
        raise WireFormatError(
            f"unknown key(s) {', '.join(map(repr, unknown))}; "
            f"valid keys are {', '.join(sorted(_REQUEST_KEYS))}",
            _path(field_prefix, unknown[0]),
        )

    method = data.get("method")
    if not isinstance(method, str) or not method:
        raise WireFormatError(
            "expected a non-empty mapper name string"
            + ("" if "method" in data else " (key is missing)"),
            _path(field_prefix, "method"),
        )
    if "capacity" not in data:
        raise WireFormatError("key is missing", _path(field_prefix, "capacity"))
    _require_int(data["capacity"], _path(field_prefix, "capacity"), minimum=1)
    if "levels" in data and data["levels"] is not None:
        _require_int(data["levels"], _path(field_prefix, "levels"), minimum=1)
    if "seed" in data and data["seed"] is not None:
        _require_int(data["seed"], _path(field_prefix, "seed"))
    if "reuse" in data and data["reuse"] is not None:
        if not isinstance(data["reuse"], bool):
            raise WireFormatError(
                f"expected a boolean, got {type(data['reuse']).__name__}",
                _path(field_prefix, "reuse"),
            )
    for key in ("fd_config", "stitch_config", "sim_config", "options"):
        value = data.get(key)
        if value is not None and not isinstance(value, Mapping):
            raise WireFormatError(
                f"expected a JSON object or null, got {type(value).__name__}",
                _path(field_prefix, key),
            )

    # The shape is right; the typed config decoders enforce the rest
    # (unknown config fields, malformed durations tables, ...).
    try:
        return EvaluationRequest.from_dict(data)
    except (KeyError, TypeError, ValueError) as error:
        key = next(
            (
                k
                for k in ("fd_config", "stitch_config", "sim_config")
                if data.get(k) and _mentions(error, data[k])
            ),
            None,
        )
        raise WireFormatError(
            f"could not be decoded: {error}",
            _path(field_prefix, key) if key else (field_prefix or None),
        ) from error


def _mentions(error: BaseException, config: Mapping[str, Any]) -> bool:
    """Heuristic: does the decode error reference one of this config's keys?"""
    text = str(error)
    return any(str(key) in text for key in config)


def decode_sweep_plan(data: Any, field_prefix: str = "") -> SweepPlan:
    """Decode one ``SweepPlan.to_dict`` payload, validating every request."""
    if not isinstance(data, Mapping):
        raise WireFormatError(
            f"expected a JSON object with a 'requests' list, "
            f"got {type(data).__name__}",
            field_prefix or None,
        )
    requests_field = _path(field_prefix, "requests")
    if "requests" not in data:
        raise WireFormatError("key is missing", requests_field)
    items = data["requests"]
    if not isinstance(items, list):
        raise WireFormatError(
            f"expected a list of evaluation requests, got {type(items).__name__}",
            requests_field,
        )
    if not items:
        raise WireFormatError(
            "must contain at least one evaluation request", requests_field
        )
    decoded: List[EvaluationRequest] = [
        decode_evaluation_request(item, field_prefix=f"{requests_field}[{index}]")
        for index, item in enumerate(items)
    ]
    return SweepPlan.from_requests(decoded)


def decode_shard_spec(data: Any, field_prefix: str = "shard") -> ShardSpec:
    """Decode one ``ShardSpec.to_dict`` payload, validating it.

    The shard face of the wire contract: ``POST /v1/sweeps`` (and
    ``sweep shard --spec``) accept an optional ``"shard"`` object of
    ``{"index": i, "count": n, "strategy": ...}``; this decoder turns any
    shape problem into a :class:`WireFormatError` naming the field instead
    of a traceback out of ``ShardSpec.__post_init__``.
    """
    if not isinstance(data, Mapping):
        raise WireFormatError(
            f"expected a JSON object with 'index' and 'count', "
            f"got {type(data).__name__}",
            field_prefix or None,
        )
    unknown = sorted(set(data) - {"index", "count", "strategy"})
    if unknown:
        raise WireFormatError(
            f"unknown key(s) {', '.join(map(repr, unknown))}; "
            f"valid keys are count, index, strategy",
            _path(field_prefix, unknown[0]),
        )
    for key in ("index", "count"):
        if key not in data:
            raise WireFormatError("key is missing", _path(field_prefix, key))
    count = _require_int(data["count"], _path(field_prefix, "count"), minimum=1)
    index = _require_int(data["index"], _path(field_prefix, "index"), minimum=0)
    if index >= count:
        raise WireFormatError(
            f"must be < count ({count}), got {index}",
            _path(field_prefix, "index"),
        )
    strategy = data.get("strategy", "contiguous")
    if not isinstance(strategy, str) or strategy not in SHARD_STRATEGIES:
        raise WireFormatError(
            f"expected one of {', '.join(map(repr, SHARD_STRATEGIES))}, "
            f"got {strategy!r}",
            _path(field_prefix, "strategy"),
        )
    return ShardSpec(index=index, count=count, strategy=strategy)


def validate_mapper_name(name: str, field: str = "method") -> None:
    """Reject an unregistered mapper name, listing what is registered."""
    registered = sorted(available_mappers())
    if name not in registered:
        raise WireFormatError(
            f"unknown mapper {name!r}; registered mappers: "
            f"{', '.join(registered)}",
            field,
        )


def validate_plan_mappers(plan: SweepPlan) -> None:
    """Reject a plan referencing any unregistered mapper name.

    Runs before anything is queued or dispatched, so a typo'd name is a
    clean client error (HTTP 400 / CLI exit 2 listing the registered
    names), never a traceback out of a worker process mid-run.
    """
    registered = set(available_mappers())
    unknown = sorted({request.method for request in plan} - registered)
    if unknown:
        raise WireFormatError(
            f"unknown mapper(s) {', '.join(map(repr, unknown))}; "
            f"registered mappers: {', '.join(sorted(registered))}",
            "requests[].method",
        )
