"""The sweep service's background job queue, persisted through the store.

A *job* is one :class:`~repro.api.executor.SweepPlan` accepted by
``POST /v1/sweeps``, identified by :func:`plan_fingerprint` — the
content address of the ordered list of per-request store fingerprints, so
the job identity discipline is the same as the result identity discipline
one layer down.  That buys two service behaviours for free:

* **request coalescing** — a plan POSTed while an identical plan is already
  queued or running joins that job instead of enqueueing a second one
  (its evaluations would have been byte-identical anyway);
* **crash resume** — a job record (id, plan, state, timestamps) is a small
  JSON file under ``<store root>/jobs/``, written atomically at every state
  transition, while the job's *results* live in the content-addressed
  store the moment each point completes.  A killed server restarted on the
  same store finds the unfinished records, re-enqueues them, and the
  executor's ``resume=True`` path re-executes only the points the crash
  actually lost.

Jobs run on one background worker thread, FIFO; each plan is executed by a
:class:`~repro.api.executor.SweepExecutor` (whose ``workers`` processes are
the parallelism knob), with the executor's progress callback streaming
completed/total counts and partial results into the job record the service
reports from ``GET /v1/jobs/<id>``.

A submission may carry a :class:`~repro.api.sharding.ShardSpec`, in which
case the job executes only that deterministic piece of the plan and is
identified by the shard fingerprint — the service-side face of the
distributed sweep layer (:mod:`repro.api.sharding`): a coordinator splits
one plan across N service instances sharing nothing, then joins their
stores with ``sweep merge``.
"""

from __future__ import annotations

import json
import queue
import threading
import time
import warnings
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..api.executor import SweepExecutor, SweepPlan, SweepProgress
from ..api.sharding import ShardSpec, plan_fingerprint
from ..api.store import (
    ResultStore,
    ResultStoreWarning,
    as_result_store,
)
from ..persistutil import atomic_write_json
from ..routing.simulator import SimulatorConfig

__all__ = [
    "JOBS_DIRNAME",
    "JOB_RECORD_SCHEMA",
    "Job",
    "JobManager",
    "JobState",
    "plan_fingerprint",  # canonical home: repro.api.sharding
]

#: Directory under the store root holding job records.  The name is not a
#: two-hex-digit shard, so store maintenance scans never see it.
JOBS_DIRNAME = "jobs"

#: Schema tag of persisted job records.
JOB_RECORD_SCHEMA = "repro-msfu-job/v1"


class JobState(str, Enum):
    """Lifecycle of a job: queued -> running -> completed | failed."""

    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"


@dataclass
class Job:
    """One accepted sweep plan and everything the service reports about it.

    Mutable shared state: every field is written by the worker thread and
    read by HTTP handler threads, always under the owning
    :class:`JobManager`'s lock (use :meth:`JobManager.job_view` for a
    consistent snapshot).
    """

    job_id: str
    plan: SweepPlan
    #: When set, the job executes only this shard of ``plan`` (the job id is
    #: then the *shard* fingerprint, so distinct shards of one plan are
    #: distinct jobs while identical shard submissions still coalesce).
    shard: Optional[ShardSpec] = None
    state: JobState = JobState.QUEUED
    completed: int = 0
    created_unix: float = field(default_factory=time.time)
    started_unix: Optional[float] = None
    finished_unix: Optional[float] = None
    error: Optional[str] = None
    stats: Optional[Dict[str, Any]] = None
    #: Per-plan-position results (``None`` while unresolved), filled in
    #: completion order by the executor's progress callback.
    results: List[Optional[Dict[str, Any]]] = field(default_factory=list)
    #: How many POSTs landed on this job while it was active (>= 1).
    submissions: int = 1

    def __post_init__(self) -> None:
        if not self.results:
            self.results = [None] * len(self.effective_plan)

    @property
    def effective_plan(self) -> SweepPlan:
        """The requests this job actually executes (the shard's, if any)."""
        if self.shard is not None:
            return self.shard.subplan(self.plan)
        return self.plan

    @property
    def total(self) -> int:
        return len(self.effective_plan)

    @property
    def active(self) -> bool:
        return self.state in (JobState.QUEUED, JobState.RUNNING)


class JobManager:
    """FIFO background execution of sweep jobs against one result store.

    Parameters
    ----------
    store:
        The shared :class:`~repro.api.store.ResultStore` (or a path).  Job
        records persist under ``<root>/jobs/``; results persist as ordinary
        store entries.
    workers / sim_config:
        Forwarded to the per-job :class:`~repro.api.executor.SweepExecutor`.
    """

    def __init__(
        self,
        store: Union[ResultStore, str, Path],
        workers: int = 1,
        sim_config: Optional[SimulatorConfig] = None,
    ) -> None:
        resolved = as_result_store(store)
        if resolved is None:
            raise ValueError("JobManager requires a result store")
        self.store = resolved
        self.workers = workers
        self.sim_config = sim_config
        self._jobs: Dict[str, Job] = {}
        self._queue: "queue.Queue[Optional[str]]" = queue.Queue()
        self._lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        #: Set while no job is queued or running; tests and graceful
        #: shutdown wait on it.
        self._idle = threading.Event()
        self._idle.set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the worker thread (idempotent)."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run_loop, name="sweep-job-worker", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: Optional[float] = None) -> None:
        """Stop the worker after its current job (no new jobs are started)."""
        self._stop.set()
        self._queue.put(None)  # wake the worker if it is blocked on get()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    def wait_idle(self, timeout: Optional[float] = None) -> bool:
        """Block until no job is queued or running; ``True`` if reached."""
        return self._idle.wait(timeout)

    # ------------------------------------------------------------------
    # Submission and inspection
    # ------------------------------------------------------------------
    def submit(
        self, plan: SweepPlan, shard: Optional[ShardSpec] = None
    ) -> Tuple[Job, bool]:
        """Accept a plan (or one shard of it); returns ``(job, coalesced)``.

        An identical plan already queued or running is joined
        (``coalesced=True``) — the second client polls the same job id.  A
        plan whose previous job already finished is re-enqueued as a fresh
        run of the same id: with every point already persisted it completes
        entirely from ``store_hits``, which is exactly the repeat-client
        fast path.

        With ``shard`` set the job executes only that piece of the plan and
        is identified by the *shard* fingerprint, so a fleet can POST the
        same plan with every shard index to one service (or one service
        each) and the ids never collide — while two clients POSTing the
        same shard still coalesce.
        """
        if len(plan) == 0:
            raise ValueError("cannot submit an empty sweep plan")
        fingerprint = plan_fingerprint(plan, self.sim_config)
        if shard is None:
            job_id = fingerprint
        else:
            if not shard.plan_indices(len(plan)):
                raise ValueError(
                    f"shard {shard.index}/{shard.count} of a "
                    f"{len(plan)}-entry plan is empty"
                )
            job_id = shard.fingerprint(fingerprint)
        with self._lock:
            existing = self._jobs.get(job_id)
            if existing is not None and existing.active:
                existing.submissions += 1
                return existing, True
            job = Job(job_id=job_id, plan=plan, shard=shard)
            self._jobs[job_id] = job
            self._idle.clear()
            self._persist(job)
            self._queue.put(job_id)
        return job, False

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def job_view(self, job_id: str) -> Optional[Dict[str, Any]]:
        """A consistent, JSON-safe snapshot of one job (or ``None``)."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            if job.state is JobState.COMPLETED and any(
                entry is None for entry in job.results
            ):
                self._fill_results_from_store(job)
            resolved = [
                {"index": index, "result": entry}
                for index, entry in enumerate(job.results)
                if entry is not None
            ]
            return {
                "job_id": job.job_id,
                "state": job.state.value,
                "shard": None if job.shard is None else job.shard.to_dict(),
                "completed": job.completed,
                "total": job.total,
                "created_unix": job.created_unix,
                "started_unix": job.started_unix,
                "finished_unix": job.finished_unix,
                "error": job.error,
                "stats": job.stats,
                "submissions": job.submissions,
                "results": resolved,
            }

    def summary(self) -> Dict[str, Any]:
        """Aggregate job counts for ``GET /v1/status``."""
        with self._lock:
            by_state = {state.value: 0 for state in JobState}
            for job in self._jobs.values():
                by_state[job.state.value] += 1
            return {
                "jobs": by_state,
                "in_flight": by_state["queued"] + by_state["running"],
            }

    def jobs_in_flight(self) -> int:
        with self._lock:
            return sum(1 for job in self._jobs.values() if job.active)

    # ------------------------------------------------------------------
    # Persistence and recovery
    # ------------------------------------------------------------------
    def _jobs_dir(self) -> Path:
        return self.store.root / JOBS_DIRNAME

    def _record_path(self, job_id: str) -> Path:
        return self._jobs_dir() / f"{job_id}.json"

    def _persist(self, job: Job) -> None:
        """Atomically write the job record (results live in the store)."""
        payload = {
            "schema": JOB_RECORD_SCHEMA,
            "job_id": job.job_id,
            "state": job.state.value,
            "total": job.total,
            "completed": job.completed,
            "created_unix": job.created_unix,
            "started_unix": job.started_unix,
            "finished_unix": job.finished_unix,
            "error": job.error,
            "stats": job.stats,
            "plan": job.plan.to_dict(),
            "shard": None if job.shard is None else job.shard.to_dict(),
        }
        try:
            atomic_write_json(self._record_path(job.job_id), payload, indent=2)
        except OSError as error:  # same degrade-to-warning policy as try_put
            warnings.warn(
                f"sweep service: could not persist job record "
                f"{job.job_id} ({error}); the job still runs, but a crash "
                f"before completion will not resume it",
                ResultStoreWarning,
                stacklevel=2,
            )

    def recover(self) -> List[Job]:
        """Load persisted job records; re-enqueue every unfinished one.

        Called once at server startup.  Completed/failed records are loaded
        for ``GET /v1/jobs/<id>`` visibility; queued/running records — jobs
        a previous server process died holding — are reset to queued and
        re-enqueued.  Their already-persisted points are answered from the
        store (``resume=True``), so only genuinely lost work re-executes.
        Returns the re-enqueued jobs.
        """
        jobs_dir = self._jobs_dir()
        if not jobs_dir.is_dir():
            return []
        requeued: List[Job] = []
        for path in sorted(jobs_dir.glob("*.json")):
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
                if payload.get("schema") != JOB_RECORD_SCHEMA:
                    raise ValueError(f"schema {payload.get('schema')!r}")
                plan = SweepPlan.from_dict(payload["plan"])
                state = JobState(payload["state"])
                shard_payload = payload.get("shard")
                job = Job(
                    job_id=payload["job_id"],
                    plan=plan,
                    shard=(
                        None
                        if shard_payload is None
                        else ShardSpec.from_dict(shard_payload)
                    ),
                    state=state,
                    completed=int(payload.get("completed") or 0),
                    created_unix=float(payload.get("created_unix") or time.time()),
                    started_unix=payload.get("started_unix"),
                    finished_unix=payload.get("finished_unix"),
                    error=payload.get("error"),
                    stats=payload.get("stats"),
                )
            except (OSError, KeyError, TypeError, ValueError) as error:
                warnings.warn(
                    f"sweep service: skipping unreadable job record {path} "
                    f"({error})",
                    ResultStoreWarning,
                    stacklevel=2,
                )
                continue
            with self._lock:
                if job.job_id in self._jobs:
                    continue
                if job.active:
                    # The previous process died mid-job: run it again from
                    # the store (resume re-executes only the missing points).
                    job.state = JobState.QUEUED
                    job.completed = 0
                    job.started_unix = None
                    self._jobs[job.job_id] = job
                    self._idle.clear()
                    self._persist(job)
                    self._queue.put(job.job_id)
                    requeued.append(job)
                else:
                    self._jobs[job.job_id] = job
        return requeued

    def _fill_results_from_store(self, job: Job) -> None:
        """Backfill a recovered completed job's results from the store.

        Caller holds the lock.  Counters are deliberately untouched: this
        is reporting, not a lookup on the evaluation path.
        """
        for index, request in enumerate(job.effective_plan):
            if job.results[index] is not None:
                continue
            storage = request.with_effective_sim_config(self.sim_config)
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", ResultStoreWarning)
                counters = self.store.counters()
                stored = self.store.get(storage)
                # Restore counters: a status/report probe is not a lookup.
                self.store.hits = counters["hits"]
                self.store.misses = counters["misses"]
                self.store.corrupt_skipped = counters["corrupt_skipped"]
            if stored is not None:
                job.results[index] = stored.to_dict()

    # ------------------------------------------------------------------
    # The worker loop
    # ------------------------------------------------------------------
    def _run_loop(self) -> None:
        while not self._stop.is_set():
            try:
                job_id = self._queue.get(timeout=0.2)
            except queue.Empty:
                with self._lock:
                    if not any(job.active for job in self._jobs.values()):
                        self._idle.set()
                continue
            if job_id is None:  # shutdown sentinel
                continue
            with self._lock:
                job = self._jobs.get(job_id)
                if job is None or job.state is not JobState.QUEUED:
                    continue
                job.state = JobState.RUNNING
                job.started_unix = time.time()
                self._persist(job)
            self._execute(job)
            with self._lock:
                if not any(j.active for j in self._jobs.values()):
                    self._idle.set()

    def _execute(self, job: Job) -> None:
        executor = SweepExecutor(
            workers=self.workers,
            sim_config=self.sim_config,
            store=self.store,
        )

        def on_progress(event: SweepProgress) -> None:
            payload = event.evaluation.to_dict()
            with self._lock:
                job.completed = event.done
                for index in event.plan_indices:
                    job.results[index] = payload

        try:
            result = executor.run(
                job.effective_plan, resume=True, progress=on_progress
            )
        except Exception as error:  # the job fails; the service survives
            with self._lock:
                job.state = JobState.FAILED
                job.error = f"{type(error).__name__}: {error}"
                job.finished_unix = time.time()
                self._persist(job)
            return
        with self._lock:
            job.state = JobState.COMPLETED
            job.completed = job.total
            job.results = [
                evaluation.to_dict() for evaluation in result.evaluations
            ]
            job.stats = result.stats.to_dict()
            job.finished_unix = time.time()
            self._persist(job)
