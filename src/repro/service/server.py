"""The sweep service: a stdlib-only HTTP front end over the evaluation API.

``repro-msfu serve`` turns the library every client used to re-import into
one long-running shared endpoint, so the content-addressed
:class:`~repro.api.store.ResultStore` amortizes simulation cost across
*every* client instead of per process.  Three layers of duplicate-work
elimination stack up, keyed identically (the request fingerprint):

1. **store hits** — a request evaluated by anyone, ever, on this store is
   answered from disk (``store_hits``);
2. **in-flight coalescing** — concurrent requests with the same fingerprint
   join the one evaluation already running (singleflight;
   ``coalesced_hits``), so a thundering herd costs one simulation;
3. **ETag revalidation** — the fingerprint *is* the ETag.  A warm client
   re-POSTs with ``If-None-Match: "<fingerprint>"`` and is answered
   ``304 Not Modified`` with no store read at all: evaluation is
   deterministic in the request, so a fingerprint match proves the
   client's cached body is current.

Endpoints (all JSON)::

    POST /v1/evaluate   one EvaluationRequest -> result (synchronous)
    POST /v1/sweeps     one SweepPlan -> {job_id}, queued (202)
    GET  /v1/jobs/<id>  progress: completed/total, stats, partial results
    GET  /v1/status     store status+counters, server counters, job counts
    GET  /healthz       liveness probe

Built on :class:`http.server.ThreadingHTTPServer` — no new runtime
dependencies — with one thread per connection; CPU-bound evaluation is
serialized through a pipeline lock (the GIL would anyway), while sweep
jobs run on the :class:`~repro.service.jobs.JobManager` worker and fan out
across processes via ``--workers``.
"""

from __future__ import annotations

import json
import re
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from ..api.pipeline import Pipeline
from ..api.store import DEFAULT_STORE_ROOT, ResultStore, as_result_store
from ..routing.simulator import SimulatorConfig
from .jobs import JobManager
from .wire import (
    WireFormatError,
    decode_evaluation_request,
    decode_shard_spec,
    decode_sweep_plan,
    validate_mapper_name,
    validate_plan_mappers,
)

#: Service version reported in /v1/status and the Server header.
SERVICE_VERSION = "repro-msfu-service/1"

_JOB_PATH = re.compile(r"^/v1/jobs/([0-9a-f]{8,128})$")


class ServiceCounters:
    """Thread-safe request/latency/coalescing accounting for ``/v1/status``."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.requests = 0
        self.coalesced_hits = 0
        self.not_modified = 0
        self._endpoints: Dict[str, Dict[str, float]] = {}

    def observe(self, endpoint: str, seconds: float, status: int) -> None:
        with self._lock:
            self.requests += 1
            entry = self._endpoints.setdefault(
                endpoint, {"requests": 0, "errors": 0, "seconds_total": 0.0}
            )
            entry["requests"] += 1
            entry["seconds_total"] += seconds
            if status >= 400:
                entry["errors"] += 1

    def coalesced(self) -> None:
        with self._lock:
            self.coalesced_hits += 1

    def etag_hit(self) -> None:
        with self._lock:
            self.not_modified += 1

    def to_dict(self) -> Dict[str, Any]:
        with self._lock:
            endpoints = {}
            for name, entry in sorted(self._endpoints.items()):
                count = int(entry["requests"])
                endpoints[name] = {
                    "requests": count,
                    "errors": int(entry["errors"]),
                    "mean_latency_ms": round(
                        1000.0 * entry["seconds_total"] / count, 3
                    )
                    if count
                    else 0.0,
                }
            return {
                "requests": self.requests,
                "coalesced_hits": self.coalesced_hits,
                "not_modified": self.not_modified,
                "endpoints": endpoints,
            }


class _Flight:
    """One in-flight evaluation other threads can wait on (singleflight)."""

    __slots__ = ("done", "payload", "source", "error")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.payload: Optional[Dict[str, Any]] = None
        self.source: Optional[str] = None
        self.error: Optional[BaseException] = None


@dataclass
class EvaluateOutcome:
    """What ``SweepService.evaluate`` hands the HTTP layer."""

    fingerprint: str
    not_modified: bool = False
    payload: Optional[Dict[str, Any]] = None
    source: str = "evaluated"  # "evaluated" | "store" | "coalesced"

    @property
    def etag(self) -> str:
        return f'"{self.fingerprint}"'


def _etag_matches(header: Optional[str], fingerprint: str) -> bool:
    """RFC-ish ``If-None-Match`` check against the strong fingerprint ETag."""
    if not header:
        return False
    for candidate in header.split(","):
        candidate = candidate.strip()
        if candidate == "*":
            return True
        if candidate.startswith("W/"):
            candidate = candidate[2:]
        if candidate.strip('"') == fingerprint:
            return True
    return False


class SweepService:
    """The service core: store, pipeline, job queue, coalescing, counters.

    Pure domain logic — no HTTP types — so tests can drive it directly and
    the handler stays a thin (de)serialization shell.
    """

    def __init__(
        self,
        store: Union[ResultStore, str, Path] = DEFAULT_STORE_ROOT,
        workers: int = 1,
        sim_config: Optional[SimulatorConfig] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        resolved = as_result_store(store)
        assert resolved is not None
        self.store = resolved
        self.workers = workers
        self.pipeline = Pipeline(sim_config=sim_config, store=self.store)
        self.jobs = JobManager(self.store, workers=workers, sim_config=sim_config)
        self.counters = ServiceCounters()
        self.started_unix = time.time()
        # The pipeline mutates shared caches/stats; one evaluation at a time.
        self._pipeline_lock = threading.Lock()
        self._flight_lock = threading.Lock()
        self._inflight: Dict[str, _Flight] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> int:
        """Recover persisted unfinished jobs and start the worker thread.

        Returns how many jobs were re-enqueued (the crash-resume count).
        """
        requeued = len(self.jobs.recover())
        self.jobs.start()
        return requeued

    def close(self, timeout: Optional[float] = 5.0) -> None:
        self.jobs.stop(timeout)

    # ------------------------------------------------------------------
    # POST /v1/evaluate
    # ------------------------------------------------------------------
    def evaluate(
        self, data: Any, if_none_match: Optional[str] = None
    ) -> EvaluateOutcome:
        """Validate, revalidate (ETag), coalesce, and evaluate one request."""
        request = decode_evaluation_request(data)
        validate_mapper_name(request.method)
        storage = request.with_effective_sim_config(self.pipeline.sim_config)
        fingerprint = self.store.fingerprint(storage)

        # ETag fast path: a fingerprint match proves the client's cached
        # body is the answer — no store read, no lock, nothing.
        if _etag_matches(if_none_match, fingerprint):
            self.counters.etag_hit()
            return EvaluateOutcome(fingerprint=fingerprint, not_modified=True)

        with self._flight_lock:
            flight = self._inflight.get(fingerprint)
            leader = flight is None
            if leader:
                flight = _Flight()
                self._inflight[fingerprint] = flight
        assert flight is not None

        if not leader:
            # Singleflight: join the evaluation already in progress.
            self.counters.coalesced()
            flight.done.wait()
            if flight.error is not None:
                raise flight.error
            return EvaluateOutcome(
                fingerprint=fingerprint,
                payload=flight.payload,
                source="coalesced",
            )

        try:
            with self._pipeline_lock:
                store_hits_before = self.pipeline.stats.store_hits
                evaluation = self.pipeline.evaluate(request)
                from_store = self.pipeline.stats.store_hits > store_hits_before
            flight.payload = evaluation.to_dict()
            flight.source = "store" if from_store else "evaluated"
        except BaseException as error:
            flight.error = error
            raise
        finally:
            with self._flight_lock:
                self._inflight.pop(fingerprint, None)
            flight.done.set()
        return EvaluateOutcome(
            fingerprint=fingerprint,
            payload=flight.payload,
            source=flight.source or "evaluated",
        )

    # ------------------------------------------------------------------
    # POST /v1/sweeps and GET /v1/jobs/<id>
    # ------------------------------------------------------------------
    def submit_sweep(self, data: Any) -> Dict[str, Any]:
        plan = decode_sweep_plan(data)
        validate_plan_mappers(plan)
        # An optional "shard" object makes this submission one piece of the
        # plan (distinct job id per shard) — the fleet face of the
        # distributed sweep layer; stores are joined later by `sweep merge`.
        shard = None
        if isinstance(data, Mapping) and data.get("shard") is not None:
            shard = decode_shard_spec(data["shard"])
            if not shard.plan_indices(len(plan)):
                raise WireFormatError(
                    f"shard {shard.index}/{shard.count} of this "
                    f"{len(plan)}-request plan is empty",
                    "shard.index",
                )
        job, coalesced = self.jobs.submit(plan, shard=shard)
        if coalesced:
            self.counters.coalesced()
        return {
            "job_id": job.job_id,
            "state": job.state.value,
            "shard": None if job.shard is None else job.shard.to_dict(),
            "total": job.total,
            "coalesced": coalesced,
            "location": f"/v1/jobs/{job.job_id}",
        }

    def job_status(self, job_id: str) -> Optional[Dict[str, Any]]:
        return self.jobs.job_view(job_id)

    # ------------------------------------------------------------------
    # GET /v1/status
    # ------------------------------------------------------------------
    def status(self) -> Dict[str, Any]:
        pipeline_stats = self.pipeline.stats
        payload = {
            "service": SERVICE_VERSION,
            "uptime_seconds": round(time.time() - self.started_unix, 3),
            "workers": self.workers,
            "store": self.store.status(),
            "store_counters": self.store.counters(),
            "evaluate": {
                "evaluations": pipeline_stats.evaluations,
                "store_hits": pipeline_stats.store_hits,
            },
            "server": self.counters.to_dict(),
        }
        payload.update(self.jobs.summary())
        return payload


# ----------------------------------------------------------------------
# The HTTP shell
# ----------------------------------------------------------------------
def build_handler(service: SweepService, quiet: bool = True):
    """The request handler class bound to one :class:`SweepService`."""

    class Handler(BaseHTTPRequestHandler):
        server_version = SERVICE_VERSION
        protocol_version = "HTTP/1.1"

        # ---- plumbing ------------------------------------------------
        def log_message(self, format: str, *args: Any) -> None:
            if not quiet:  # pragma: no cover - interactive serve only
                BaseHTTPRequestHandler.log_message(self, format, *args)

        def _send_json(
            self,
            status: int,
            payload: Optional[Dict[str, Any]],
            headers: Optional[Dict[str, str]] = None,
        ) -> None:
            body = b""
            if payload is not None:
                body = (json.dumps(payload, indent=2) + "\n").encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            if body:
                self.wfile.write(body)

        def _read_json_body(self) -> Any:
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length else b""
            if not raw:
                raise WireFormatError("request body is empty; expected JSON")
            try:
                return json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, ValueError) as error:
                raise WireFormatError(
                    f"request body is not valid JSON: {error}"
                ) from error

        def _dispatch(self, endpoint: str, handler) -> None:
            started = time.perf_counter()
            status = 500
            try:
                status = handler()
            except WireFormatError as error:
                status = 400
                self._send_json(status, error.to_dict())
            except Exception as error:  # never kill the connection thread
                status = 500
                self._send_json(
                    status,
                    {"error": {"message": f"{type(error).__name__}: {error}"}},
                )
            finally:
                service.counters.observe(
                    endpoint, time.perf_counter() - started, status
                )

        # ---- routes --------------------------------------------------
        def do_GET(self) -> None:  # noqa: N802 - http.server API
            if self.path == "/healthz":
                self._dispatch("GET /healthz", self._get_healthz)
            elif self.path == "/v1/status":
                self._dispatch("GET /v1/status", self._get_status)
            elif _JOB_PATH.match(self.path):
                self._dispatch("GET /v1/jobs", self._get_job)
            else:
                self._dispatch("GET <unknown>", self._not_found)

        def do_POST(self) -> None:  # noqa: N802 - http.server API
            if self.path == "/v1/evaluate":
                self._dispatch("POST /v1/evaluate", self._post_evaluate)
            elif self.path == "/v1/sweeps":
                self._dispatch("POST /v1/sweeps", self._post_sweeps)
            else:
                self._dispatch("POST <unknown>", self._not_found)

        def _not_found(self) -> int:
            self._send_json(
                404,
                {
                    "error": {
                        "message": f"unknown endpoint {self.command} {self.path}",
                        "endpoints": [
                            "POST /v1/evaluate",
                            "POST /v1/sweeps",
                            "GET /v1/jobs/<id>",
                            "GET /v1/status",
                            "GET /healthz",
                        ],
                    }
                },
            )
            return 404

        def _get_healthz(self) -> int:
            self._send_json(200, {"ok": True, "service": SERVICE_VERSION})
            return 200

        def _get_status(self) -> int:
            self._send_json(200, service.status())
            return 200

        def _get_job(self) -> int:
            match = _JOB_PATH.match(self.path)
            assert match is not None
            view = service.job_status(match.group(1))
            if view is None:
                self._send_json(
                    404,
                    {"error": {"message": f"unknown job {match.group(1)!r}"}},
                )
                return 404
            self._send_json(200, view)
            return 200

        def _post_evaluate(self) -> int:
            data = self._read_json_body()
            outcome = service.evaluate(
                data, if_none_match=self.headers.get("If-None-Match")
            )
            if outcome.not_modified:
                self._send_json(304, None, headers={"ETag": outcome.etag})
                return 304
            self._send_json(
                200,
                {
                    "fingerprint": outcome.fingerprint,
                    "source": outcome.source,
                    "result": outcome.payload,
                },
                headers={"ETag": outcome.etag},
            )
            return 200

        def _post_sweeps(self) -> int:
            data = self._read_json_body()
            accepted = service.submit_sweep(data)
            self._send_json(
                202, accepted, headers={"Location": accepted["location"]}
            )
            return 202

    return Handler


def create_server(
    service: SweepService,
    host: str = "127.0.0.1",
    port: int = 0,
    quiet: bool = True,
) -> ThreadingHTTPServer:
    """A ready-to-run server (``port=0`` binds an ephemeral port for tests)."""
    server = ThreadingHTTPServer((host, port), build_handler(service, quiet=quiet))
    server.daemon_threads = True
    return server


def serve(
    store: Union[ResultStore, str, Path] = DEFAULT_STORE_ROOT,
    host: str = "127.0.0.1",
    port: int = 8765,
    workers: int = 1,
    sim_config: Optional[SimulatorConfig] = None,
) -> Tuple[SweepService, ThreadingHTTPServer]:
    """Build a started service + bound server pair (the CLI entry point).

    The caller owns the loop: call ``server.serve_forever()`` and, on the
    way out, ``server.shutdown()`` / ``service.close()``.
    """
    service = SweepService(store=store, workers=workers, sim_config=sim_config)
    service.start()
    server = create_server(service, host=host, port=port, quiet=False)
    return service, server
