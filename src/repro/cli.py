"""Command-line interface: run any registered experiment from the shell.

The per-experiment options are generated from each experiment's declared
:class:`~repro.api.experiments.ParamSpec` list, so experiments registered
with :func:`repro.api.register_experiment` — including third-party ones —
show up here automatically with their own ``--help``.

Examples
--------
List the available experiments::

    repro-msfu list

Run the Fig. 6 correlation study with 40 random mappings::

    repro-msfu run fig6 --num-mappings 40

Run the two-level Table I block over the full paper capacity range, as
machine-readable JSON written to a file::

    repro-msfu run table1-level2 --capacities 4,16,36,64,100 --json --output table1.json

Run the Fig. 7 scaling sweep across 4 worker processes::

    repro-msfu run fig7b --workers 4

Benchmark the experiment suite and record the perf trajectory point::

    repro-msfu bench --workers 4 --output BENCH_fig7.json
    repro-msfu bench --smoke           # reduced sweep, writes BENCH_<timestamp>.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from datetime import datetime, timezone
from typing import Any, Dict, List, Optional, Sequence

from .api.executor import take_last_run_stats
from .api.experiments import (
    ExperimentSpec,
    available_experiments,
    get_experiment,
    parse_int_list,
)
from .api.pipeline import default_pipeline


def _parse_capacities(text: str) -> List[int]:
    """Parse a comma-separated capacity list such as ``"4,16,36"``."""
    try:
        return parse_int_list(text)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from error


_KIND_PARSERS = {
    "int": int,
    "float": float,
    "str": str,
    "int_list": _parse_capacities,
}


def _add_param_options(parser: argparse.ArgumentParser, spec: ExperimentSpec) -> None:
    """Generate one ``--option`` per declared experiment parameter."""
    for param in spec.params:
        if param.kind == "flag":
            parser.add_argument(
                param.option,
                dest=param.name,
                action="store_true",
                default=None,
                help=param.help or None,
            )
            continue
        help_text = param.help or param.name.replace("_", " ")
        if param.default is not None:
            help_text += f" (default: {param.default})"
        parser.add_argument(
            param.option,
            dest=param.name,
            type=_KIND_PARSERS[param.kind],
            default=None,
            help=help_text,
        )


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the ``repro-msfu`` entry point."""
    parser = argparse.ArgumentParser(
        prog="repro-msfu",
        description=(
            "Reproduction of 'Magic-State Functional Units' (MICRO 2018): "
            "run the paper's experiments on the reimplemented toolchain."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list", help="list the available experiments")
    list_parser.add_argument(
        "--json", action="store_true", help="emit the listing as JSON"
    )

    run_parser = subparsers.add_parser("run", help="run one experiment")
    experiment_parsers = run_parser.add_subparsers(
        dest="experiment",
        required=True,
        metavar="experiment",
        help="experiment identifier (see 'list')",
    )
    for name in sorted(available_experiments()):
        spec = get_experiment(name)
        experiment_parser = experiment_parsers.add_parser(
            name, help=spec.description or None, description=spec.description or None
        )
        _add_param_options(experiment_parser, spec)
        experiment_parser.add_argument(
            "--json",
            action="store_true",
            help="emit the structured result as JSON instead of a table",
        )
        experiment_parser.add_argument(
            "--output",
            metavar="FILE",
            default=None,
            help="write the result to FILE instead of stdout",
        )

    bench_parser = subparsers.add_parser(
        "bench",
        help="benchmark experiments and write a BENCH_*.json perf record",
        description=(
            "Run a set of experiments under wall-clock timing and emit a "
            "machine-readable BENCH_*.json record (per-experiment wall time, "
            "simulated cycles, cache-hit accounting) that seeds the "
            "performance trajectory of the repository."
        ),
    )
    bench_parser.add_argument(
        "--experiments",
        metavar="NAMES",
        default=",".join(DEFAULT_BENCH_EXPERIMENTS),
        help=(
            "comma-separated experiment names to benchmark "
            f"(default: {','.join(DEFAULT_BENCH_EXPERIMENTS)})"
        ),
    )
    bench_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for sweep experiments (1 = serial)",
    )
    bench_parser.add_argument(
        "--seed", type=int, default=None, help="random seed forwarded to experiments"
    )
    bench_parser.add_argument(
        "--smoke",
        action="store_true",
        help="use reduced parameter ranges so the whole bench finishes in seconds",
    )
    bench_parser.add_argument(
        "--output",
        metavar="FILE",
        default=None,
        help="record path (default: BENCH_<UTC timestamp>.json in the current directory)",
    )
    return parser


#: Experiments benchmarked by ``repro-msfu bench`` when none are named: the
#: Fig. 7 scaling sweeps (the canonical parallel-execution workload), the
#: single-level Table I block (a mapper-diverse, simulation-heavy sweep),
#: the force-directed mapper case (crossing counting + full exact-cost FD
#: refinement on a factory-scale graph) and the congestion-stress simulator
#: case (bitmask/wakeup engine vs the set-based reference engine).
DEFAULT_BENCH_EXPERIMENTS = (
    "fig7a",
    "fig7b",
    "table1-level1",
    "fd-mapper",
    "sim-congestion",
)

#: Name of the special bench-only case handled by :func:`_bench_fd_mapper`
#: (not a registered experiment: it times mapping-layer internals, not a
#: paper artifact).
FD_MAPPER_BENCH = "fd-mapper"

#: Name of the special bench-only case handled by
#: :func:`_bench_sim_congestion` (times routing-layer internals: the default
#: simulation engine against the retained reference engine).
SIM_CONGESTION_BENCH = "sim-congestion"

#: Reduced ``--smoke`` parameter overrides per experiment, chosen so every
#: entry completes in seconds.  Unknown experiments with a ``capacities``
#: parameter fall back to ``[2, 4]``.
SMOKE_OVERRIDES: Dict[str, Dict[str, Any]] = {
    "fig7a": {"capacities": [2, 4]},
    "fig7b": {"capacities": [4]},
    "fig10-single": {"capacities": [2, 4]},
    "fig10-two": {"capacities": [4]},
    "table1-level1": {"capacities": [2]},
    "table1-level2": {"capacities": [4]},
    "fig6": {"num_mappings": 5},
}


def _bench_kwargs(spec: ExperimentSpec, args: argparse.Namespace) -> Dict[str, Any]:
    """The kwargs one bench entry passes to its experiment runner."""
    param_names = {param.name for param in spec.params}
    kwargs: Dict[str, Any] = {}
    if args.smoke:
        overrides = SMOKE_OVERRIDES.get(spec.name)
        if overrides is None and "capacities" in param_names:
            overrides = {"capacities": [2, 4]}
        for key, value in (overrides or {}).items():
            if key in param_names:
                kwargs[key] = value
    if args.seed is not None and "seed" in param_names:
        kwargs["seed"] = args.seed
    if args.workers != 1 and "workers" in param_names:
        kwargs["workers"] = args.workers
    return kwargs


def _bench_fd_mapper(args: argparse.Namespace) -> Dict[str, Any]:
    """Benchmark the exact-metrics engine and a full FD refinement.

    Times the bucketed crossing counter against the brute-force
    ``_reference`` oracle (asserting equal counts), then a complete
    :func:`~repro.mapping.force_directed.force_directed_refine` run with
    per-move exact incremental cost, on the L2 K=16 factory graph (the
    paper's headline two-level configuration; L1 K=4 under ``--smoke``).

    The record also estimates two brute-force baselines from a measured
    exact-cost evaluation (best of three): *per-move* — what driving every
    proposed move with a brute-force exact evaluation would cost, i.e. the
    only pre-existing way to compute the objective the incremental tracker
    now provides per move — and *per-sweep* — what the pre-existing exact
    path actually did for graphs under its 600-edge cutoff (one exact
    evaluation per sweep; above the cutoff it optimized a cheap surrogate
    instead, which is the bug this engine fixes, so its wall time is not a
    like-for-like baseline).
    """
    from .graphs import interaction_graph
    from .graphs.metrics import (
        average_edge_length,
        average_edge_spacing_reference,
        combine_metric_cost,
        count_edge_crossings,
        count_edge_crossings_reference,
    )
    from .mapping import linear_factory_placement
    from .mapping.force_directed import (
        ForceDirectedConfig,
        force_directed_refine,
        take_refine_stats,
    )

    capacity, levels = (4, 1) if args.smoke else (16, 2)
    started = time.perf_counter()
    factory = default_pipeline().factory(capacity, levels)
    graph = interaction_graph(factory.circuit)
    initial = linear_factory_placement(factory)
    positions = initial.as_float_positions()

    tick = time.perf_counter()
    bucketed = count_edge_crossings(graph, positions)
    crossing_seconds = time.perf_counter() - tick
    tick = time.perf_counter()
    reference = count_edge_crossings_reference(graph, positions)
    crossing_reference_seconds = time.perf_counter() - tick
    if bucketed != reference:
        raise AssertionError(
            f"bucketed crossing count {bucketed} != brute force {reference}"
        )

    # One full brute-force evaluation of the exact combined cost (best of
    # three, to damp single-sample timing noise).
    config = ForceDirectedConfig(seed=args.seed if args.seed is not None else 0)
    brute_eval_seconds = float("inf")
    for _ in range(3):
        tick = time.perf_counter()
        combine_metric_cost(
            count_edge_crossings_reference(graph, positions),
            average_edge_length(graph, positions),
            average_edge_spacing_reference(graph, positions),
            crossing_weight=config.cost_crossing_weight,
        )
        brute_eval_seconds = min(brute_eval_seconds, time.perf_counter() - tick)

    take_refine_stats()  # drop stats of unrelated earlier runs
    tick = time.perf_counter()
    force_directed_refine(graph, initial, config)
    refine_seconds = time.perf_counter() - tick
    refine_stats = take_refine_stats()[-1]

    per_move_brute_seconds = refine_stats.proposed_moves * brute_eval_seconds
    per_sweep_brute_seconds = refine_stats.sweeps * brute_eval_seconds
    return {
        "experiment": FD_MAPPER_BENCH,
        "params": {"capacity": capacity, "levels": levels, "seed": config.seed},
        "workers": 1,
        "wall_seconds": round(time.perf_counter() - started, 4),
        "sim_cycles": None,
        "stall_cycles": None,
        "evaluations": None,
        "fd": {
            "nodes": graph.number_of_nodes(),
            "edges": graph.number_of_edges(),
            "edge_crossings": bucketed,
            "crossing_seconds": round(crossing_seconds, 4),
            "crossing_reference_seconds": round(crossing_reference_seconds, 4),
            "crossing_speedup": round(
                crossing_reference_seconds / crossing_seconds, 2
            )
            if crossing_seconds > 0
            else None,
            "refine_seconds": round(refine_seconds, 4),
            "sweeps": refine_stats.sweeps,
            "proposed_moves": refine_stats.proposed_moves,
            "accepted_moves": refine_stats.accepted_moves,
            "initial_cost": round(refine_stats.initial_cost, 2),
            "best_cost": round(refine_stats.best_cost, 2),
            "brute_force_cost_eval_seconds": round(brute_eval_seconds, 4),
            # Hypothetical: per-move exact acceptance via brute-force
            # recompute (what the incremental tracker replaces).  No prior
            # release ran this loop — large graphs used a length surrogate.
            "estimated_per_move_brute_force_seconds": round(
                per_move_brute_seconds, 1
            ),
            "refine_speedup_vs_per_move_brute_force": round(
                per_move_brute_seconds / refine_seconds, 1
            )
            if refine_seconds > 0
            else None,
            # What the pre-existing exact path did for <=600-edge graphs,
            # extrapolated to this size: one brute-force evaluation per
            # sweep (per-move acceptance still used the cheap surrogate).
            "estimated_per_sweep_brute_force_seconds": round(
                per_sweep_brute_seconds, 1
            ),
        },
    }


def _bench_sim_congestion(args: argparse.Namespace) -> Dict[str, Any]:
    """Benchmark the bitmask/wakeup simulation engine under congestion.

    The scenario is a factory-scale mesh at high braid pressure (Section
    VIII-A stall semantics): the two-level K=16 factory circuit under a
    *random* placement — the congested geometry of the Fig. 6 study, where
    braid corridors cross constantly — swept over ``max_candidates``, plus a
    denser schedule that stitches rounds of random permutation braids (the
    inter-round traffic the paper blames for the Fig. 7b gap) onto the same
    mapping.  Under ``--smoke`` the single-level K=4 factory is used.

    Each configuration is simulated with the default bitmask/wakeup engine
    and with :func:`~repro.routing.simulator.simulate_reference` (wakeup
    tracking disabled, so the oracle's cost profile is the pre-wakeup
    engine's).  Results must agree field-for-field (``wakeups`` aside, which
    the untracked oracle does not compute; the tier-1 parity suite pins it);
    wall times are best-of-``repeats`` to damp single-sample noise.  The
    headline ``speedup`` is total reference time over total engine time.
    """
    import random as random_module

    from .routing import SimulatorConfig, simulate, simulate_reference
    from .circuits.gates import cnot
    from .mapping import random_circuit_placement

    capacity, levels = (4, 1) if args.smoke else (16, 2)
    seed = args.seed if args.seed is not None else 0
    repeats = 1 if args.smoke else 3
    started = time.perf_counter()
    factory = default_pipeline().factory(capacity, levels)
    placement = random_circuit_placement(factory.circuit, seed=seed)

    # The denser stitched schedule: the factory rounds followed by rounds of
    # random permutation braids over every placed qubit.
    rng = random_module.Random(seed + 1)
    placed = sorted(placement.positions)
    permutation_gates = []
    for _ in range(2):
        rng.shuffle(placed)
        permutation_gates.extend(
            cnot(placed[i], placed[i + 1]) for i in range(0, len(placed) - 1, 2)
        )
    factory_gates = list(factory.circuit.gates)
    stitched_gates = factory_gates + permutation_gates

    cases = [("factory", factory_gates, mc) for mc in ((2,) if args.smoke else (2, 4, 8))]
    if not args.smoke:
        cases.append(("stitched-permutations", stitched_gates, 4))

    def best_of(func):
        best, result = float("inf"), None
        for _ in range(repeats):
            tick = time.perf_counter()
            result = func()
            best = min(best, time.perf_counter() - tick)
        return best, result

    records = []
    mask_total = 0.0
    reference_total = 0.0
    for name, gates, max_candidates in cases:
        config = SimulatorConfig(max_candidates=max_candidates)
        mask_seconds, mask_result = best_of(
            lambda: simulate(gates, placement, config)
        )
        reference_seconds, reference_result = best_of(
            lambda: simulate_reference(
                gates, placement, config, track_wakeups=False
            )
        )
        mask_dict = mask_result.to_dict()
        reference_dict = reference_result.to_dict()
        # The untracked oracle reports wakeups=0 by construction; everything
        # else must match byte for byte.
        mask_wakeups = mask_dict.pop("wakeups")
        reference_dict.pop("wakeups")
        if mask_dict != reference_dict:
            raise AssertionError(
                f"sim-congestion: engines diverged on case {name} "
                f"(max_candidates={max_candidates})"
            )
        mask_total += mask_seconds
        reference_total += reference_seconds
        records.append(
            {
                "case": name,
                "max_candidates": max_candidates,
                "gates": len(gates),
                "mask_seconds": round(mask_seconds, 4),
                "reference_seconds": round(reference_seconds, 4),
                "speedup": round(reference_seconds / mask_seconds, 2)
                if mask_seconds > 0
                else None,
                "latency": mask_result.latency,
                "stall_cycles": mask_result.stall_cycles,
                "stall_events": mask_result.stall_events,
                "distinct_stalls": mask_result.distinct_stalls,
                "wakeups": mask_wakeups,
            }
        )

    return {
        "experiment": SIM_CONGESTION_BENCH,
        "params": {
            "capacity": capacity,
            "levels": levels,
            "seed": seed,
            "repeats": repeats,
        },
        "workers": 1,
        "wall_seconds": round(time.perf_counter() - started, 4),
        "sim_cycles": None,
        "stall_cycles": None,
        "evaluations": None,
        "sim": {
            "placement": "random (congested)",
            "grid": [placement.height, placement.width],
            "cases": records,
            "mask_total_seconds": round(mask_total, 4),
            "reference_total_seconds": round(reference_total, 4),
            "speedup": round(reference_total / mask_total, 2)
            if mask_total > 0
            else None,
        },
    }


def _bench_one(name: str, args: argparse.Namespace) -> Dict[str, Any]:
    """Benchmark one experiment and return its JSON-safe record."""
    spec = get_experiment(name)
    kwargs = _bench_kwargs(spec, args)
    pipeline = default_pipeline()
    before = pipeline.stats.snapshot()
    take_last_run_stats()  # discard stats of any earlier, unrelated run
    started = time.perf_counter()
    result = spec.run(**kwargs)
    wall_seconds = time.perf_counter() - started

    record: Dict[str, Any] = {
        "experiment": name,
        "params": {key: value for key, value in kwargs.items()},
        "workers": kwargs.get("workers", 1),
        "wall_seconds": round(wall_seconds, 4),
        "sim_cycles": None,
        "stall_cycles": None,
        "evaluations": None,
    }
    evaluations = getattr(result, "evaluations", None)
    if evaluations:
        record["evaluations"] = len(evaluations)
        record["sim_cycles"] = sum(e.latency for e in evaluations)
        record["stall_cycles"] = sum(e.stall_cycles for e in evaluations)

    executor_stats = take_last_run_stats()
    if executor_stats is not None:
        # The sweep ran through a SweepExecutor (workers > 1): report its
        # exact per-run accounting, aggregated across worker processes.
        record["cache"] = executor_stats.to_dict()
    else:
        delta = pipeline.stats.delta(before)
        record["cache"] = {
            "evaluations": delta.evaluations,
            "factory_builds": delta.factory_builds,
            "factory_cache_hits": delta.cache_hits,
            "sim_cache_hits": delta.sim_cache_hits,
            "fd_sweeps": delta.fd_sweeps,
            "fd_moves_accepted": delta.fd_moves_accepted,
            "sim_stall_events": delta.sim_stall_events,
            "sim_distinct_stalls": delta.sim_distinct_stalls,
            "sim_wakeups": delta.sim_wakeups,
            "workers": 1,
        }
    return record


def run_bench(args: argparse.Namespace) -> int:
    """The ``bench`` command: time experiments and write the perf record."""
    names = [name.strip() for name in args.experiments.split(",") if name.strip()]
    if args.workers < 1:
        print(f"bench: --workers must be >= 1, got {args.workers}", file=sys.stderr)
        return 2
    known = set(available_experiments()) | {FD_MAPPER_BENCH, SIM_CONGESTION_BENCH}
    unknown = [name for name in names if name not in known]
    if unknown:
        print(
            f"bench: unknown experiment(s) {', '.join(unknown)}; "
            f"see 'repro-msfu list'",
            file=sys.stderr,
        )
        return 2
    records = []
    for name in names:
        print(f"[bench] {name} ...", file=sys.stderr)
        if name == FD_MAPPER_BENCH:
            record = _bench_fd_mapper(args)
        elif name == SIM_CONGESTION_BENCH:
            record = _bench_sim_congestion(args)
        else:
            record = _bench_one(name, args)
        print(
            f"[bench] {name}: {record['wall_seconds']:.2f}s"
            + (
                f", {record['sim_cycles']} simulated cycles"
                if record["sim_cycles"] is not None
                else ""
            ),
            file=sys.stderr,
        )
        records.append(record)

    payload = {
        "schema": "repro-msfu-bench/v1",
        "created_utc": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "smoke": bool(args.smoke),
        # What the user asked for; each experiment entry's own "workers"
        # records what actually ran (experiments without a workers param
        # always run serially).
        "requested_workers": args.workers,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "experiments": records,
        "total_wall_seconds": round(
            sum(record["wall_seconds"] for record in records), 4
        ),
    }
    output = args.output or datetime.now(timezone.utc).strftime(
        "BENCH_%Y%m%dT%H%M%SZ.json"
    )
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"[bench record -> {output}]", file=sys.stderr)
    return 0


def run_experiment(name: str, **kwargs) -> str:
    """Run an experiment by name and return its formatted result.

    Backward-compatible helper: new code should use
    :func:`repro.api.run_experiment`, which returns the structured result
    object instead of pre-rendered text.
    """
    spec = get_experiment(name)
    return spec.format(spec.run(**kwargs))


def _experiment_kwargs(spec: ExperimentSpec, args: argparse.Namespace) -> Dict[str, Any]:
    """Collect the declared parameters the user actually set."""
    kwargs: Dict[str, Any] = {}
    for param in spec.params:
        value = getattr(args, param.name, None)
        if value is not None:
            kwargs[param.name] = value
    return kwargs


def _render(name: str, result: Any, spec: ExperimentSpec, as_json: bool, elapsed: float) -> str:
    if not as_json:
        return spec.format(result)
    payload = {
        "experiment": name,
        "elapsed_seconds": round(elapsed, 3),
        "result": result.to_dict() if hasattr(result, "to_dict") else result,
    }
    return json.dumps(payload, indent=2)


def _normalize_run_argv(argv: Sequence[str]) -> List[str]:
    """Hoist the experiment name directly after ``run``.

    The old flat parser accepted ``run --seed 1 fig6``; subparsers require
    the experiment name first.  If the token after ``run`` is an option,
    move the first token naming a registered experiment up front so both
    orderings keep working.
    """
    tokens = list(argv)
    try:
        run_index = tokens.index("run")
    except ValueError:
        return tokens
    rest = tokens[run_index + 1 :]
    if not rest or not rest[0].startswith("-"):
        return tokens
    known = set(available_experiments())
    for index, token in enumerate(rest):
        if token in known:
            rest.pop(index)
            return tokens[: run_index + 1] + [token] + rest
    return tokens


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for the ``repro-msfu`` console script."""
    parser = build_parser()
    args = parser.parse_args(_normalize_run_argv(argv if argv is not None else sys.argv[1:]))

    if args.command == "list":
        names = sorted(available_experiments())
        if args.json:
            listing = [
                {"name": name, "description": get_experiment(name).description}
                for name in names
            ]
            print(json.dumps(listing, indent=2))
        else:
            print("Available experiments:")
            for name in names:
                description = get_experiment(name).description
                suffix = f"  — {description}" if description else ""
                print(f"  {name}{suffix}")
        return 0

    if args.command == "bench":
        return run_bench(args)

    spec = get_experiment(args.experiment)
    kwargs = _experiment_kwargs(spec, args)

    started = time.time()
    result = spec.run(**kwargs)
    elapsed = time.time() - started
    rendered = _render(args.experiment, result, spec, args.json, elapsed)

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        print(
            f"[{args.experiment} completed in {elapsed:.1f}s -> {args.output}]",
            file=sys.stderr,
        )
        return 0

    print(rendered)
    if not args.json:
        # Keep stdout machine-readable under --json: the trailer would break
        # `repro-msfu run ... --json | python -m json.tool` style pipelines.
        print(f"\n[{args.experiment} completed in {elapsed:.1f}s]")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
