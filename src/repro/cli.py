"""Command-line interface: run any registered experiment from the shell.

The per-experiment options are generated from each experiment's declared
:class:`~repro.api.experiments.ParamSpec` list, so experiments registered
with :func:`repro.api.register_experiment` — including third-party ones —
show up here automatically with their own ``--help``.

Examples
--------
List the available experiments::

    repro-msfu list

Run the Fig. 6 correlation study with 40 random mappings::

    repro-msfu run fig6 --num-mappings 40

Run the two-level Table I block over the full paper capacity range, as
machine-readable JSON written to a file::

    repro-msfu run table1-level2 --capacities 4,16,36,64,100 --json --output table1.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Dict, List, Optional, Sequence

from .api.experiments import (
    ExperimentSpec,
    available_experiments,
    get_experiment,
    parse_int_list,
)


def _parse_capacities(text: str) -> List[int]:
    """Parse a comma-separated capacity list such as ``"4,16,36"``."""
    try:
        return parse_int_list(text)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from error


_KIND_PARSERS = {
    "int": int,
    "float": float,
    "str": str,
    "int_list": _parse_capacities,
}


def _add_param_options(parser: argparse.ArgumentParser, spec: ExperimentSpec) -> None:
    """Generate one ``--option`` per declared experiment parameter."""
    for param in spec.params:
        if param.kind == "flag":
            parser.add_argument(
                param.option,
                dest=param.name,
                action="store_true",
                default=None,
                help=param.help or None,
            )
            continue
        help_text = param.help or param.name.replace("_", " ")
        if param.default is not None:
            help_text += f" (default: {param.default})"
        parser.add_argument(
            param.option,
            dest=param.name,
            type=_KIND_PARSERS[param.kind],
            default=None,
            help=help_text,
        )


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the ``repro-msfu`` entry point."""
    parser = argparse.ArgumentParser(
        prog="repro-msfu",
        description=(
            "Reproduction of 'Magic-State Functional Units' (MICRO 2018): "
            "run the paper's experiments on the reimplemented toolchain."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list", help="list the available experiments")
    list_parser.add_argument(
        "--json", action="store_true", help="emit the listing as JSON"
    )

    run_parser = subparsers.add_parser("run", help="run one experiment")
    experiment_parsers = run_parser.add_subparsers(
        dest="experiment",
        required=True,
        metavar="experiment",
        help="experiment identifier (see 'list')",
    )
    for name in sorted(available_experiments()):
        spec = get_experiment(name)
        experiment_parser = experiment_parsers.add_parser(
            name, help=spec.description or None, description=spec.description or None
        )
        _add_param_options(experiment_parser, spec)
        experiment_parser.add_argument(
            "--json",
            action="store_true",
            help="emit the structured result as JSON instead of a table",
        )
        experiment_parser.add_argument(
            "--output",
            metavar="FILE",
            default=None,
            help="write the result to FILE instead of stdout",
        )
    return parser


def run_experiment(name: str, **kwargs) -> str:
    """Run an experiment by name and return its formatted result.

    Backward-compatible helper: new code should use
    :func:`repro.api.run_experiment`, which returns the structured result
    object instead of pre-rendered text.
    """
    spec = get_experiment(name)
    return spec.format(spec.run(**kwargs))


def _experiment_kwargs(spec: ExperimentSpec, args: argparse.Namespace) -> Dict[str, Any]:
    """Collect the declared parameters the user actually set."""
    kwargs: Dict[str, Any] = {}
    for param in spec.params:
        value = getattr(args, param.name, None)
        if value is not None:
            kwargs[param.name] = value
    return kwargs


def _render(name: str, result: Any, spec: ExperimentSpec, as_json: bool, elapsed: float) -> str:
    if not as_json:
        return spec.format(result)
    payload = {
        "experiment": name,
        "elapsed_seconds": round(elapsed, 3),
        "result": result.to_dict() if hasattr(result, "to_dict") else result,
    }
    return json.dumps(payload, indent=2)


def _normalize_run_argv(argv: Sequence[str]) -> List[str]:
    """Hoist the experiment name directly after ``run``.

    The old flat parser accepted ``run --seed 1 fig6``; subparsers require
    the experiment name first.  If the token after ``run`` is an option,
    move the first token naming a registered experiment up front so both
    orderings keep working.
    """
    tokens = list(argv)
    try:
        run_index = tokens.index("run")
    except ValueError:
        return tokens
    rest = tokens[run_index + 1 :]
    if not rest or not rest[0].startswith("-"):
        return tokens
    known = set(available_experiments())
    for index, token in enumerate(rest):
        if token in known:
            rest.pop(index)
            return tokens[: run_index + 1] + [token] + rest
    return tokens


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for the ``repro-msfu`` console script."""
    parser = build_parser()
    args = parser.parse_args(_normalize_run_argv(argv if argv is not None else sys.argv[1:]))

    if args.command == "list":
        names = sorted(available_experiments())
        if args.json:
            listing = [
                {"name": name, "description": get_experiment(name).description}
                for name in names
            ]
            print(json.dumps(listing, indent=2))
        else:
            print("Available experiments:")
            for name in names:
                description = get_experiment(name).description
                suffix = f"  — {description}" if description else ""
                print(f"  {name}{suffix}")
        return 0

    spec = get_experiment(args.experiment)
    kwargs = _experiment_kwargs(spec, args)

    started = time.time()
    result = spec.run(**kwargs)
    elapsed = time.time() - started
    rendered = _render(args.experiment, result, spec, args.json, elapsed)

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        print(
            f"[{args.experiment} completed in {elapsed:.1f}s -> {args.output}]",
            file=sys.stderr,
        )
        return 0

    print(rendered)
    if not args.json:
        # Keep stdout machine-readable under --json: the trailer would break
        # `repro-msfu run ... --json | python -m json.tool` style pipelines.
        print(f"\n[{args.experiment} completed in {elapsed:.1f}s]")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
