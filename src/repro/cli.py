"""Command-line interface: run any reproduced experiment from the shell.

Examples
--------
List the available experiments::

    repro-msfu list

Run the Fig. 6 correlation study with 40 random mappings::

    repro-msfu run fig6 --num-mappings 40

Run the two-level Table I block over the full paper capacity range::

    repro-msfu run table1-level2 --capacities 4,16,36,64,100
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional, Sequence

from .experiments import EXPERIMENTS


def _parse_capacities(text: str) -> List[int]:
    """Parse a comma-separated capacity list such as ``"4,16,36"``."""
    try:
        return [int(token) for token in text.split(",") if token.strip()]
    except ValueError as error:
        raise argparse.ArgumentTypeError(
            f"capacities must be comma-separated integers, got {text!r}"
        ) from error


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the ``repro-msfu`` entry point."""
    parser = argparse.ArgumentParser(
        prog="repro-msfu",
        description=(
            "Reproduction of 'Magic-State Functional Units' (MICRO 2018): "
            "run the paper's experiments on the reimplemented toolchain."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the available experiments")

    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS.keys()),
        help="experiment identifier (see 'list')",
    )
    run_parser.add_argument(
        "--capacities",
        type=_parse_capacities,
        default=None,
        help="comma-separated factory capacities to sweep (experiment-specific default)",
    )
    run_parser.add_argument(
        "--num-mappings",
        type=int,
        default=None,
        help="number of random mappings (fig6 only)",
    )
    run_parser.add_argument("--seed", type=int, default=0, help="random seed")
    return parser


def run_experiment(name: str, **kwargs) -> str:
    """Run an experiment by name and return its formatted result."""
    runner, formatter = EXPERIMENTS[name]
    filtered = {key: value for key, value in kwargs.items() if value is not None}
    result = runner(**filtered)
    return formatter(result)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for the ``repro-msfu`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        print("Available experiments:")
        for name in sorted(EXPERIMENTS):
            print(f"  {name}")
        return 0

    kwargs = {"seed": args.seed}
    if args.capacities is not None:
        kwargs["capacities"] = args.capacities
    if args.num_mappings is not None:
        kwargs["num_mappings"] = args.num_mappings
    if args.experiment == "fig6":
        kwargs.pop("capacities", None)
    else:
        kwargs.pop("num_mappings", None)

    started = time.time()
    output = run_experiment(args.experiment, **kwargs)
    elapsed = time.time() - started
    print(output)
    print(f"\n[{args.experiment} completed in {elapsed:.1f}s]")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
