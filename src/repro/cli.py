"""Command-line interface: run any registered experiment from the shell.

The per-experiment options are generated from each experiment's declared
:class:`~repro.api.experiments.ParamSpec` list, so experiments registered
with :func:`repro.api.register_experiment` — including third-party ones —
show up here automatically with their own ``--help``.

Examples
--------
List the available experiments::

    repro-msfu list

Run the Fig. 6 correlation study with 40 random mappings::

    repro-msfu run fig6 --num-mappings 40

Run the two-level Table I block over the full paper capacity range, as
machine-readable JSON written to a file::

    repro-msfu run table1-level2 --capacities 4,16,36,64,100 --json --output table1.json

Run the Fig. 7 scaling sweep across 4 worker processes::

    repro-msfu run fig7b --workers 4

Benchmark the experiment suite and record the perf trajectory point::

    repro-msfu bench --workers 4 --output BENCH_fig7.json
    repro-msfu bench --smoke           # reduced sweep, writes BENCH_<timestamp>.json

Diff two bench records and fail on slowdowns (the CI regression gate)::

    repro-msfu bench --compare BENCH_old.json BENCH_new.json --max-slowdown 3.0

Run a resumable sweep against the persistent result store, inspect it,
and expire old entries::

    repro-msfu sweep run --methods linear,force_directed --capacities 2,4,8 \
        --store .repro-store --resume --workers 4 --json --output sweep.json
    repro-msfu sweep status --store .repro-store
    repro-msfu sweep gc --store .repro-store --keep-days 30

Split a sweep across a fleet (each shard on its own machine and private
store, stealing stragglers' work through a shared claim directory), then
join the stores — the merged store reproduces the unsharded sweep byte
for byte::

    repro-msfu sweep plan-split --methods linear,force_directed \
        --capacities 2,4,8 --shards 3 --strategy strided --out-dir shards/
    repro-msfu sweep shard --spec shards/shard-00-of-3.json \
        --store store-0 --claim-dir claims/        # ... one per machine
    repro-msfu sweep merge store-0 store-1 store-2 --into merged
    repro-msfu sweep run --methods linear,force_directed --capacities 2,4,8 \
        --store merged --resume --json             # 0 evaluations: all from store

Serve the evaluation API over HTTP (shared store, job queue, request
coalescing, fingerprint-ETag revalidation)::

    repro-msfu serve --host 127.0.0.1 --port 8765 --store .repro-store --workers 4
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from datetime import datetime, timezone
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .api.benchcompare import (
    BenchRecordError,
    compare_bench_records,
    load_bench_record,
)
from .api.executor import (
    ExecutorStats,
    SweepExecutor,
    SweepPlan,
    SweepRunResult,
    take_last_run_stats,
)
from .api.experiments import (
    ExperimentSpec,
    available_experiments,
    get_experiment,
    parse_int_list,
)
from .api.pipeline import default_pipeline
from .api.sharding import (
    SHARD_STRATEGIES,
    ShardSpec,
    load_shard_file,
    plan_fingerprint,
    run_shard,
    shard_specs,
    write_shard_files,
)
from .api.store import (
    DEFAULT_STORE_ROOT,
    MergeConflictError,
    ResultStore,
    current_git_sha,
)
from .persistutil import atomic_write_json, write_jsonl_line


def _parse_capacities(text: str) -> List[int]:
    """Parse a comma-separated capacity list such as ``"4,16,36"``."""
    try:
        return parse_int_list(text)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from error


_KIND_PARSERS = {
    "int": int,
    "float": float,
    "str": str,
    "int_list": _parse_capacities,
}


def _add_param_options(parser: argparse.ArgumentParser, spec: ExperimentSpec) -> None:
    """Generate one ``--option`` per declared experiment parameter."""
    for param in spec.params:
        if param.kind == "flag":
            parser.add_argument(
                param.option,
                dest=param.name,
                action="store_true",
                default=None,
                help=param.help or None,
            )
            continue
        help_text = param.help or param.name.replace("_", " ")
        if param.default is not None:
            help_text += f" (default: {param.default})"
        parser.add_argument(
            param.option,
            dest=param.name,
            type=_KIND_PARSERS[param.kind],
            default=None,
            help=help_text,
        )


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the ``repro-msfu`` entry point."""
    parser = argparse.ArgumentParser(
        prog="repro-msfu",
        description=(
            "Reproduction of 'Magic-State Functional Units' (MICRO 2018): "
            "run the paper's experiments on the reimplemented toolchain."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list", help="list the available experiments")
    list_parser.add_argument(
        "--json", action="store_true", help="emit the listing as JSON"
    )

    run_parser = subparsers.add_parser("run", help="run one experiment")
    experiment_parsers = run_parser.add_subparsers(
        dest="experiment",
        required=True,
        metavar="experiment",
        help="experiment identifier (see 'list')",
    )
    for name in sorted(available_experiments()):
        spec = get_experiment(name)
        experiment_parser = experiment_parsers.add_parser(
            name, help=spec.description or None, description=spec.description or None
        )
        _add_param_options(experiment_parser, spec)
        experiment_parser.add_argument(
            "--json",
            action="store_true",
            help="emit the structured result as JSON instead of a table",
        )
        experiment_parser.add_argument(
            "--output",
            metavar="FILE",
            default=None,
            help="write the result to FILE instead of stdout",
        )

    bench_parser = subparsers.add_parser(
        "bench",
        help="benchmark experiments and write a BENCH_*.json perf record",
        description=(
            "Run a set of experiments under wall-clock timing and emit a "
            "machine-readable BENCH_*.json record (per-experiment wall time, "
            "simulated cycles, cache-hit accounting) that seeds the "
            "performance trajectory of the repository."
        ),
    )
    bench_parser.add_argument(
        "--experiments",
        metavar="NAMES",
        default=None,
        help=(
            "comma-separated experiment names to benchmark "
            f"(default: {','.join(DEFAULT_BENCH_EXPERIMENTS)})"
        ),
    )
    bench_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for sweep experiments (1 = serial)",
    )
    bench_parser.add_argument(
        "--seed", type=int, default=None, help="random seed forwarded to experiments"
    )
    bench_parser.add_argument(
        "--batch",
        action="store_true",
        help=(
            "run sweep experiments through the batched simulator core "
            "(identical results; timing reflects the batched path)"
        ),
    )
    bench_parser.add_argument(
        "--smoke",
        action="store_true",
        help="use reduced parameter ranges so the whole bench finishes in seconds",
    )
    bench_parser.add_argument(
        "--output",
        metavar="FILE",
        default=None,
        help=(
            "record path (default: BENCH_<UTC timestamp>.json in the "
            "current directory)"
        ),
    )
    bench_parser.add_argument(
        "--compare",
        nargs=2,
        metavar=("OLD", "NEW"),
        default=None,
        help=(
            "compare two BENCH_*.json records instead of benchmarking: print "
            "a field-by-field diff table and exit nonzero on wall-time "
            "regressions beyond --max-slowdown (cross-machine diffs are "
            "advisory unless --strict)"
        ),
    )
    bench_parser.add_argument(
        "--max-slowdown",
        type=float,
        default=None,
        metavar="RATIO",
        help="failing new/old wall-time ratio for --compare (default: 1.5)",
    )
    bench_parser.add_argument(
        "--min-slowdown-seconds",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "absolute wall-time growth below which a ratio breach is noise, "
            "not a regression (--compare only; default: 0.05)"
        ),
    )
    bench_parser.add_argument(
        "--strict",
        action="store_true",
        help="make --compare regressions gate even across machines/scales",
    )

    _add_sweep_parsers(subparsers)
    _add_serve_parser(subparsers)
    return parser


def _add_serve_parser(subparsers) -> None:
    """The ``serve`` command: the long-running sweep service."""
    serve_parser = subparsers.add_parser(
        "serve",
        help="serve the evaluation API over HTTP (job queue + result store)",
        description=(
            "Run the stdlib-only sweep service: POST /v1/evaluate for one "
            "synchronous evaluation, POST /v1/sweeps to queue a sweep plan, "
            "GET /v1/jobs/<id> for progress, GET /v1/status for counters. "
            "Identical in-flight requests coalesce into one evaluation, "
            "warm clients revalidate by fingerprint ETag (304), and every "
            "result persists through the content-addressed store, so a "
            "killed server restarted on the same store resumes its jobs."
        ),
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    serve_parser.add_argument(
        "--port",
        type=int,
        default=8765,
        help="bind port (default: 8765; 0 = ephemeral)",
    )
    serve_parser.add_argument(
        "--store",
        metavar="DIR",
        default=DEFAULT_STORE_ROOT,
        help=f"result store root (default: {DEFAULT_STORE_ROOT})",
    )
    serve_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes per sweep job (1 = serial)",
    )

    lint_parser = subparsers.add_parser(
        "lint",
        help="check the codebase against the project-invariant rules",
        description=(
            "Static analysis of src/repro against the project's own "
            "invariants: schema-salted fingerprints, atomic JSON writes, "
            "lock-guarded service state, deterministic simulation paths, "
            "and to_dict/from_dict parity. Exits 1 on findings not covered "
            "by the committed baseline (lint-baseline.json)."
        ),
    )
    # Lazy import: lint is dev tooling, the hot CLI paths shouldn't pay
    # for it (mirrors how the rules themselves are only needed here).
    from .lint.cli import add_lint_arguments

    add_lint_arguments(lint_parser)


def _add_plan_source_options(parser: argparse.ArgumentParser) -> None:
    """The plan-defining options shared by ``sweep run/plan-split/shard``."""
    parser.add_argument(
        "--methods",
        metavar="NAMES",
        default=None,
        help="comma-separated mapper names (e.g. linear,force_directed)",
    )
    parser.add_argument(
        "--capacities",
        type=_parse_capacities,
        metavar="LIST",
        default=None,
        help="comma-separated factory capacities (e.g. 2,4,8)",
    )
    parser.add_argument(
        "--levels",
        type=_parse_capacities,
        metavar="LIST",
        default=None,
        help="comma-separated factory levels (default: 1)",
    )
    parser.add_argument(
        "--seeds",
        type=_parse_capacities,
        metavar="LIST",
        default=None,
        help="comma-separated mapper seeds (default: 0)",
    )
    parser.add_argument(
        "--reuse", action="store_true", help="sweep with qubit reuse enabled"
    )
    parser.add_argument(
        "--plan",
        metavar="FILE",
        default=None,
        help="JSON sweep plan (SweepPlan.to_dict form) instead of grid options",
    )


def _add_sweep_parsers(subparsers) -> None:
    """The ``sweep`` command family (persistent store): run / status / gc
    plus the distributed verbs plan-split / shard / merge."""
    sweep_parser = subparsers.add_parser(
        "sweep",
        help="resumable sweeps backed by the persistent result store",
        description=(
            "Run explicit sweep plans against the on-disk result store "
            "(.repro-store by default): a killed or re-run sweep re-executes "
            "only the requests not already stored, with byte-identical "
            "output.  'plan-split' / 'shard' / 'merge' distribute one plan "
            "across machines: each shard runs against a private store, and "
            "merging the stores reproduces the unsharded sweep byte for "
            "byte."
        ),
    )
    sweep_sub = sweep_parser.add_subparsers(dest="sweep_command", required=True)

    run_parser = sweep_sub.add_parser(
        "run", help="execute a sweep plan (grid options or --plan FILE)"
    )
    _add_plan_source_options(run_parser)
    run_parser.add_argument(
        "--workers", type=int, default=1, help="worker processes (1 = serial)"
    )
    run_parser.add_argument(
        "--batch",
        action="store_true",
        help=(
            "evaluate the sweep's cache-missing points through the batched "
            "simulator core (identical results; takes precedence over "
            "--workers)"
        ),
    )
    run_parser.add_argument(
        "--store",
        metavar="DIR",
        default=DEFAULT_STORE_ROOT,
        help=f"result store root (default: {DEFAULT_STORE_ROOT})",
    )
    run_parser.add_argument(
        "--resume",
        action="store_true",
        help="skip requests already in the store (restart a killed sweep)",
    )
    run_parser.add_argument(
        "--json", action="store_true", help="emit the structured result as JSON"
    )
    run_parser.add_argument(
        "--output",
        metavar="FILE",
        default=None,
        help="write the result to FILE instead of stdout",
    )
    run_parser.add_argument(
        "--stream-output",
        metavar="FILE",
        default=None,
        help=(
            "append one JSON line per resolved point, the moment it lands "
            "(flushed per line, so the log is complete even if the run is "
            "killed); the final result is still printed as usual"
        ),
    )

    split_parser = sweep_sub.add_parser(
        "plan-split",
        help="split a plan into N self-contained shard files",
        description=(
            "Write one shard file per piece of the plan into --out-dir; "
            "distribute the files to a fleet and run each with "
            "'sweep shard --spec FILE --store PRIVATE_DIR', then join the "
            "private stores with 'sweep merge'."
        ),
    )
    _add_plan_source_options(split_parser)
    split_parser.add_argument(
        "--shards",
        type=int,
        required=True,
        metavar="N",
        help="number of shards to split the plan into",
    )
    split_parser.add_argument(
        "--strategy",
        choices=SHARD_STRATEGIES,
        default="contiguous",
        help=(
            "partitioning strategy: contiguous blocks, or strided "
            "round-robin so every shard samples the whole cost range "
            "(default: contiguous)"
        ),
    )
    split_parser.add_argument(
        "--out-dir",
        metavar="DIR",
        required=True,
        help="directory to write the shard files into",
    )
    split_parser.add_argument(
        "--json", action="store_true", help="emit the split summary as JSON"
    )

    shard_parser = sweep_sub.add_parser(
        "shard",
        help="execute one shard of a plan (resumable, optional work stealing)",
        description=(
            "Run one deterministic piece of a plan against a (usually "
            "private) store.  Point to a 'sweep plan-split' file with "
            "--spec, or give a plan source plus --shard-index/--shard-count. "
            "With --claim-dir (a directory shared by every shard of the "
            "plan), shards claim points through atomic claim files and a "
            "fast shard steals a slow shard's unclaimed tail.  Re-running "
            "after a kill resumes: stored points are skipped, own claims "
            "are reclaimed."
        ),
    )
    shard_parser.add_argument(
        "--spec",
        metavar="FILE",
        default=None,
        help="shard file written by 'sweep plan-split' (plan + shard spec)",
    )
    _add_plan_source_options(shard_parser)
    shard_parser.add_argument(
        "--shard-index",
        type=int,
        default=None,
        metavar="I",
        help="this shard's index in [0, --shard-count) (with a plan source)",
    )
    shard_parser.add_argument(
        "--shard-count",
        type=int,
        default=None,
        metavar="N",
        help="total number of shards (with a plan source)",
    )
    shard_parser.add_argument(
        "--strategy",
        choices=SHARD_STRATEGIES,
        default="contiguous",
        help="partitioning strategy (default: contiguous)",
    )
    shard_parser.add_argument(
        "--store",
        metavar="DIR",
        default=DEFAULT_STORE_ROOT,
        help=f"this shard's result store (default: {DEFAULT_STORE_ROOT})",
    )
    shard_parser.add_argument(
        "--claim-dir",
        metavar="DIR",
        default=None,
        help=(
            "shared claim directory enabling work stealing between the "
            "shards of this plan"
        ),
    )
    shard_parser.add_argument(
        "--no-steal",
        action="store_true",
        help="claim own points but do not steal other shards' tails",
    )
    shard_parser.add_argument(
        "--workers", type=int, default=1, help="worker processes (1 = serial)"
    )
    shard_parser.add_argument(
        "--batch",
        action="store_true",
        help="evaluate through the batched simulator core (identical results)",
    )
    shard_parser.add_argument(
        "--json", action="store_true", help="emit the shard report as JSON"
    )
    shard_parser.add_argument(
        "--output",
        metavar="FILE",
        default=None,
        help="write the shard report to FILE instead of stdout",
    )
    shard_parser.add_argument(
        "--stream-output",
        metavar="FILE",
        default=None,
        help="append one JSON line per resolved point as it lands",
    )

    merge_parser = sweep_sub.add_parser(
        "merge",
        help="union shard stores into one store (byte-identical to unsharded)",
        description=(
            "Merge source stores into --into by union on request "
            "fingerprint.  Identical duplicate entries are fine "
            "(overlapping shards); the same fingerprint with a differing "
            "payload is a conflict: exit 1 by default, or keep the newest "
            "entry with --prefer-newest.  Corrupt source entries are "
            "skipped with a warning, stale-schema entries are excluded."
        ),
    )
    merge_parser.add_argument(
        "sources",
        nargs="+",
        metavar="SOURCE_DIR",
        help="source store roots, merged in order",
    )
    merge_parser.add_argument(
        "--into",
        metavar="DIR",
        required=True,
        help="destination store root (created if missing)",
    )
    merge_parser.add_argument(
        "--prefer-newest",
        action="store_true",
        help="resolve payload conflicts by keeping the newest entry",
    )
    merge_parser.add_argument(
        "--json", action="store_true", help="emit the merge report as JSON"
    )

    status_parser = sweep_sub.add_parser(
        "status", help="summarize the result store (entries, size, staleness)"
    )
    status_parser.add_argument(
        "--store",
        metavar="DIR",
        default=DEFAULT_STORE_ROOT,
        help=f"result store root (default: {DEFAULT_STORE_ROOT})",
    )
    status_parser.add_argument(
        "--json", action="store_true", help="emit the status as JSON"
    )

    gc_parser = sweep_sub.add_parser(
        "gc", help="remove store entries older than --keep-days"
    )
    gc_parser.add_argument(
        "--store",
        metavar="DIR",
        default=DEFAULT_STORE_ROOT,
        help=f"result store root (default: {DEFAULT_STORE_ROOT})",
    )
    gc_parser.add_argument(
        "--keep-days",
        type=float,
        required=True,
        metavar="DAYS",
        help="keep entries newer than this many days; remove the rest",
    )
    gc_parser.add_argument(
        "--dry-run",
        action="store_true",
        help="report what would be removed without deleting anything",
    )
    gc_parser.add_argument(
        "--json", action="store_true", help="emit the gc report as JSON"
    )


#: Experiments benchmarked by ``repro-msfu bench`` when none are named: the
#: Fig. 7 scaling sweeps (the canonical parallel-execution workload), the
#: single-level Table I block (a mapper-diverse, simulation-heavy sweep),
#: the force-directed mapper case (crossing counting + full exact-cost FD
#: refinement on a factory-scale graph), the congestion-stress simulator
#: case (bitmask/wakeup engine vs the set-based reference engine) and the
#: batched-simulator case (one ``simulate_batch`` call over a sweep-shaped
#: point set vs the per-point engine loop).
DEFAULT_BENCH_EXPERIMENTS = (
    "fig7a",
    "fig7b",
    "table1-level1",
    "fd-mapper",
    "fd-kernel",
    "sim-congestion",
    "sim-batch",
    "sweep-shard",
)

#: Name of the special bench-only case handled by :func:`_bench_fd_mapper`
#: (not a registered experiment: it times mapping-layer internals, not a
#: paper artifact).
FD_MAPPER_BENCH = "fd-mapper"

#: Name of the special bench-only case handled by :func:`_bench_fd_kernel`
#: (times the compiled/vector/scalar tracker engines head to head on one
#: deterministic move sequence, asserting byte-identical state).
FD_KERNEL_BENCH = "fd-kernel"

#: Name of the special bench-only case handled by
#: :func:`_bench_sim_congestion` (times routing-layer internals: the default
#: simulation engine against the retained reference engine).
SIM_CONGESTION_BENCH = "sim-congestion"

#: Name of the special bench-only case handled by :func:`_bench_sim_batch`
#: (times the batched simulator core against the per-point engine loop on
#: a sweep-shaped same-circuit point set).
SIM_BATCH_BENCH = "sim-batch"

#: Name of the special bench-only case handled by
#: :func:`_bench_sweep_shard` (a k-shard simulated fleet over private
#: stores, merged and checked byte-identical against one single-store run).
SWEEP_SHARD_BENCH = "sweep-shard"

#: Reduced ``--smoke`` parameter overrides per experiment, chosen so every
#: entry completes in seconds.  Unknown experiments with a ``capacities``
#: parameter fall back to ``[2, 4]``.
SMOKE_OVERRIDES: Dict[str, Dict[str, Any]] = {
    "fig7a": {"capacities": [2, 4]},
    "fig7b": {"capacities": [4]},
    "fig10-single": {"capacities": [2, 4]},
    "fig10-two": {"capacities": [4]},
    "table1-level1": {"capacities": [2]},
    "table1-level2": {"capacities": [4]},
    "fig6": {"num_mappings": 5},
}


def _bench_kwargs(spec: ExperimentSpec, args: argparse.Namespace) -> Dict[str, Any]:
    """The kwargs one bench entry passes to its experiment runner."""
    param_names = {param.name for param in spec.params}
    kwargs: Dict[str, Any] = {}
    if args.smoke:
        overrides = SMOKE_OVERRIDES.get(spec.name)
        if overrides is None and "capacities" in param_names:
            overrides = {"capacities": [2, 4]}
        for key, value in (overrides or {}).items():
            if key in param_names:
                kwargs[key] = value
    if args.seed is not None and "seed" in param_names:
        kwargs["seed"] = args.seed
    if args.workers != 1 and "workers" in param_names:
        kwargs["workers"] = args.workers
    if getattr(args, "batch", False) and "batch" in param_names:
        kwargs["batch"] = True
    return kwargs


def _bench_fd_mapper(args: argparse.Namespace) -> Dict[str, Any]:
    """Benchmark the exact-metrics engine and a full FD refinement.

    Times the bucketed crossing counter against the brute-force
    ``_reference`` oracle (asserting equal counts), then a complete
    :func:`~repro.mapping.force_directed.force_directed_refine` run with
    per-move exact incremental cost, on the L2 K=16 factory graph (the
    paper's headline two-level configuration; L1 K=4 under ``--smoke``).

    The record also estimates two brute-force baselines from a measured
    exact-cost evaluation (best of three): *per-move* — what driving every
    proposed move with a brute-force exact evaluation would cost, i.e. the
    only pre-existing way to compute the objective the incremental tracker
    now provides per move — and *per-sweep* — what the pre-existing exact
    path actually did for graphs under its 600-edge cutoff (one exact
    evaluation per sweep; above the cutoff it optimized a cheap surrogate
    instead, which is the bug this engine fixes, so its wall time is not a
    like-for-like baseline).
    """
    from .graphs import interaction_graph
    from .graphs.metrics import (
        average_edge_length,
        average_edge_spacing_reference,
        combine_metric_cost,
        count_edge_crossings,
        count_edge_crossings_reference,
    )
    from .mapping import linear_factory_placement
    from .mapping.force_directed import (
        ForceDirectedConfig,
        force_directed_refine,
        take_refine_stats,
    )

    capacity, levels = (4, 1) if args.smoke else (16, 2)
    started = time.perf_counter()
    factory = default_pipeline().factory(capacity, levels)
    graph = interaction_graph(factory.circuit)
    initial = linear_factory_placement(factory)
    positions = initial.as_float_positions()

    tick = time.perf_counter()
    bucketed = count_edge_crossings(graph, positions)
    crossing_seconds = time.perf_counter() - tick
    tick = time.perf_counter()
    reference = count_edge_crossings_reference(graph, positions)
    crossing_reference_seconds = time.perf_counter() - tick
    if bucketed != reference:
        raise AssertionError(
            f"bucketed crossing count {bucketed} != brute force {reference}"
        )

    # One full brute-force evaluation of the exact combined cost (best of
    # three, to damp single-sample timing noise).
    config = ForceDirectedConfig(seed=args.seed if args.seed is not None else 0)
    brute_eval_seconds = float("inf")
    for _ in range(3):
        tick = time.perf_counter()
        combine_metric_cost(
            count_edge_crossings_reference(graph, positions),
            average_edge_length(graph, positions),
            average_edge_spacing_reference(graph, positions),
            crossing_weight=config.cost_crossing_weight,
        )
        brute_eval_seconds = min(brute_eval_seconds, time.perf_counter() - tick)

    take_refine_stats()  # drop stats of unrelated earlier runs
    tick = time.perf_counter()
    force_directed_refine(graph, initial, config)
    refine_seconds = time.perf_counter() - tick
    refine_stats = take_refine_stats()[-1]

    per_move_brute_seconds = refine_stats.proposed_moves * brute_eval_seconds
    per_sweep_brute_seconds = refine_stats.sweeps * brute_eval_seconds
    return {
        "experiment": FD_MAPPER_BENCH,
        "params": {"capacity": capacity, "levels": levels, "seed": config.seed},
        "workers": 1,
        "wall_seconds": round(time.perf_counter() - started, 4),
        "sim_cycles": None,
        "stall_cycles": None,
        "evaluations": None,
        "fd": {
            "nodes": graph.number_of_nodes(),
            "edges": graph.number_of_edges(),
            "edge_crossings": bucketed,
            "crossing_seconds": round(crossing_seconds, 4),
            "crossing_reference_seconds": round(crossing_reference_seconds, 4),
            "crossing_speedup": round(
                crossing_reference_seconds / crossing_seconds, 2
            )
            if crossing_seconds > 0
            else None,
            "refine_seconds": round(refine_seconds, 4),
            "sweeps": refine_stats.sweeps,
            "proposed_moves": refine_stats.proposed_moves,
            "accepted_moves": refine_stats.accepted_moves,
            "initial_cost": round(refine_stats.initial_cost, 2),
            "best_cost": round(refine_stats.best_cost, 2),
            "brute_force_cost_eval_seconds": round(brute_eval_seconds, 4),
            # Hypothetical: per-move exact acceptance via brute-force
            # recompute (what the incremental tracker replaces).  No prior
            # release ran this loop — large graphs used a length surrogate.
            "estimated_per_move_brute_force_seconds": round(
                per_move_brute_seconds, 1
            ),
            "refine_speedup_vs_per_move_brute_force": round(
                per_move_brute_seconds / refine_seconds, 1
            )
            if refine_seconds > 0
            else None,
            # What the pre-existing exact path did for <=600-edge graphs,
            # extrapolated to this size: one brute-force evaluation per
            # sweep (per-move acceptance still used the cheap surrogate).
            "estimated_per_sweep_brute_force_seconds": round(
                per_sweep_brute_seconds, 1
            ),
        },
    }


def _bench_fd_kernel(args: argparse.Namespace) -> Dict[str, Any]:
    """Benchmark the tracker engines head to head on one move sequence.

    Builds one :class:`~repro.graphs.metrics.MappingCostTracker` per
    available engine (``scalar`` reference, ``vector``, ``compiled``) on
    the L2 K=16 factory graph (L1 K=4 under ``--smoke``) and drives each
    through the *same* deterministic sequence of annealer-shaped
    operations — single-move applies, apply+revert pairs, and chunked
    ``evaluate_many`` batches.  Full tracker state (crossings, lengths,
    spacing sum, combined cost, positions) is asserted byte-identical
    across engines at the end; the record carries per-engine wall time
    and the speedup of each engine over the scalar reference.
    """
    import random as _random

    from .graphs import interaction_graph
    from .graphs.metrics import MappingCostTracker, tracker_engines
    from .mapping import linear_factory_placement

    capacity, levels = (4, 1) if args.smoke else (16, 2)
    # The scalar reference costs ~10ms per evaluation at L2 K=16; the
    # sequence length is chosen so the slowest engine stays under ~10s
    # while every engine still accumulates a timing well above jitter.
    moves = 300 if args.smoke else 400
    seed = args.seed if args.seed is not None else 0
    started = time.perf_counter()
    factory = default_pipeline().factory(capacity, levels)
    graph = interaction_graph(factory.circuit)
    positions = linear_factory_placement(factory).as_float_positions()

    # Pre-generate the operation sequence once so every engine replays the
    # identical workload (roughly annealer-shaped: mostly kept moves, some
    # rejected ones, occasional batched proposal evaluation).
    rng = _random.Random(seed)
    vertices = sorted(graph.nodes(), key=str)
    max_row = max(row for row, _ in positions.values()) + 1.0
    max_col = max(col for _, col in positions.values()) + 1.0

    def _updates() -> Dict[Any, Tuple[float, float]]:
        chosen = rng.sample(vertices, rng.randint(1, 2))
        return {
            vertex: (
                float(rng.randrange(int(max_row))),
                float(rng.randrange(int(max_col))),
            )
            for vertex in chosen
        }

    ops = []
    for _ in range(moves):
        roll = rng.random()
        if roll < 0.7:
            ops.append(("apply", _updates()))
        elif roll < 0.9:
            ops.append(("revert", _updates()))
        else:
            ops.append(("batch", [_updates() for _ in range(8)]))

    timings: Dict[str, float] = {}
    states: Dict[str, Any] = {}
    for engine in tracker_engines():
        tick = time.perf_counter()
        tracker = MappingCostTracker(graph, dict(positions), engine=engine)
        for op, payload in ops:
            if op == "apply":
                tracker.apply(payload)
            elif op == "revert":
                tracker.apply(payload)
                tracker.revert_last()
            else:
                tracker.evaluate_many(payload)
        timings[engine] = time.perf_counter() - tick
        states[engine] = (
            tracker.crossings,
            tracker.total_edge_length,
            tracker.total_weighted_length,
            tracker.spacing_sum,
            tracker.cost(),
            dict(tracker._positions),
        )

    expected = states["scalar"]
    for engine, state in states.items():
        if state != expected:
            raise AssertionError(
                f"tracker engine {engine!r} diverged from the scalar "
                f"reference on the fd-kernel bench sequence"
            )

    scalar_seconds = timings["scalar"]
    engines = {
        engine: {
            "seconds": round(seconds, 4),
            "speedup_vs_scalar": round(scalar_seconds / seconds, 2)
            if seconds > 0
            else None,
        }
        for engine, seconds in timings.items()
    }
    return {
        "experiment": FD_KERNEL_BENCH,
        "params": {
            "capacity": capacity,
            "levels": levels,
            "seed": seed,
            "moves": moves,
        },
        "workers": 1,
        "wall_seconds": round(time.perf_counter() - started, 4),
        "sim_cycles": None,
        "stall_cycles": None,
        "evaluations": None,
        "fd": {
            "nodes": graph.number_of_nodes(),
            "edges": graph.number_of_edges(),
            "operations": len(ops),
            "engines": engines,
            "state_identical": True,  # asserted above; recorded for compare
        },
    }


def _bench_sim_congestion(args: argparse.Namespace) -> Dict[str, Any]:
    """Benchmark the bitmask/wakeup simulation engine under congestion.

    The scenario is a factory-scale mesh at high braid pressure (Section
    VIII-A stall semantics): the two-level K=16 factory circuit under a
    *random* placement — the congested geometry of the Fig. 6 study, where
    braid corridors cross constantly — swept over ``max_candidates``, plus a
    denser schedule that stitches rounds of random permutation braids (the
    inter-round traffic the paper blames for the Fig. 7b gap) onto the same
    mapping.  Under ``--smoke`` the single-level K=4 factory is used.

    Each configuration is simulated with the default bitmask/wakeup engine
    and with :func:`~repro.routing.simulator.simulate_reference` (wakeup
    tracking disabled, so the oracle's cost profile is the pre-wakeup
    engine's).  Results must agree field-for-field (``wakeups`` aside, which
    the untracked oracle does not compute; the tier-1 parity suite pins it);
    wall times are best-of-``repeats`` to damp single-sample noise.  The
    headline ``speedup`` is total reference time over total engine time.
    """
    import random as random_module

    from .routing import SimulatorConfig, simulate, simulate_reference
    from .circuits.gates import cnot
    from .mapping import random_circuit_placement

    capacity, levels = (4, 1) if args.smoke else (16, 2)
    seed = args.seed if args.seed is not None else 0
    repeats = 1 if args.smoke else 3
    started = time.perf_counter()
    factory = default_pipeline().factory(capacity, levels)
    placement = random_circuit_placement(factory.circuit, seed=seed)

    # The denser stitched schedule: the factory rounds followed by rounds of
    # random permutation braids over every placed qubit.
    rng = random_module.Random(seed + 1)
    placed = sorted(placement.positions)
    permutation_gates = []
    for _ in range(2):
        rng.shuffle(placed)
        permutation_gates.extend(
            cnot(placed[i], placed[i + 1]) for i in range(0, len(placed) - 1, 2)
        )
    factory_gates = list(factory.circuit.gates)
    stitched_gates = factory_gates + permutation_gates

    cases = [
        ("factory", factory_gates, mc)
        for mc in ((2,) if args.smoke else (2, 4, 8))
    ]
    if not args.smoke:
        cases.append(("stitched-permutations", stitched_gates, 4))

    def best_of(func):
        best, result = float("inf"), None
        for _ in range(repeats):
            tick = time.perf_counter()
            result = func()
            best = min(best, time.perf_counter() - tick)
        return best, result

    records = []
    mask_total = 0.0
    reference_total = 0.0
    for name, gates, max_candidates in cases:
        config = SimulatorConfig(max_candidates=max_candidates)
        mask_seconds, mask_result = best_of(
            lambda: simulate(gates, placement, config)
        )
        reference_seconds, reference_result = best_of(
            lambda: simulate_reference(
                gates, placement, config, track_wakeups=False
            )
        )
        mask_dict = mask_result.to_dict()
        reference_dict = reference_result.to_dict()
        # The untracked oracle reports wakeups=0 by construction; everything
        # else must match byte for byte.
        mask_wakeups = mask_dict.pop("wakeups")
        reference_dict.pop("wakeups")
        if mask_dict != reference_dict:
            raise AssertionError(
                f"sim-congestion: engines diverged on case {name} "
                f"(max_candidates={max_candidates})"
            )
        mask_total += mask_seconds
        reference_total += reference_seconds
        records.append(
            {
                "case": name,
                "max_candidates": max_candidates,
                "gates": len(gates),
                "mask_seconds": round(mask_seconds, 4),
                "reference_seconds": round(reference_seconds, 4),
                "speedup": round(reference_seconds / mask_seconds, 2)
                if mask_seconds > 0
                else None,
                "latency": mask_result.latency,
                "stall_cycles": mask_result.stall_cycles,
                "stall_events": mask_result.stall_events,
                "distinct_stalls": mask_result.distinct_stalls,
                "wakeups": mask_wakeups,
            }
        )

    return {
        "experiment": SIM_CONGESTION_BENCH,
        "params": {
            "capacity": capacity,
            "levels": levels,
            "seed": seed,
            "repeats": repeats,
        },
        "workers": 1,
        "wall_seconds": round(time.perf_counter() - started, 4),
        "sim_cycles": None,
        "stall_cycles": None,
        "evaluations": None,
        "sim": {
            "placement": "random (congested)",
            "grid": [placement.height, placement.width],
            "cases": records,
            "mask_total_seconds": round(mask_total, 4),
            "reference_total_seconds": round(reference_total, 4),
            "speedup": round(reference_total / mask_total, 2)
            if mask_total > 0
            else None,
        },
    }


def _bench_sim_batch(args: argparse.Namespace) -> Dict[str, Any]:
    """Benchmark the batched simulator core against the per-point loop.

    The scenario is the batched engine's target shape — a capacity sweep's
    cache-miss batch: one circuit (the two-level K=16 factory; single-level
    K=4 under ``--smoke``) swept over several random placements crossed
    with a ``max_candidates`` range.  The whole point set is simulated once
    as a per-point loop over the default bitmask/wakeup engine (the
    ``sim-congestion`` baseline, one :func:`~repro.routing.simulate` call
    per point) and once as a single
    :func:`~repro.routing.batchsim.simulate_batch` call; every point must
    agree field-for-field on ``to_dict()``.  Wall times are
    best-of-``repeats``; the headline ``speedup`` is the loop total over
    the batched total.  The record names the batched engine actually used
    (``compiled``/``vector``/``scalar``) so cross-machine records stay
    interpretable.
    """
    from .mapping import random_circuit_placement
    from .routing import SimulatorConfig, simulate
    from .routing.batchsim import (
        kernel_available,
        numpy_available,
        simulate_batch,
    )
    from .routing.simulator import _gate_list

    capacity, levels = (4, 1) if args.smoke else (16, 2)
    num_placements = 2 if args.smoke else 8
    candidate_sweep = (2,) if args.smoke else (1, 2, 3, 4, 6, 8)
    seed = args.seed if args.seed is not None else 0
    repeats = 1 if args.smoke else 3
    started = time.perf_counter()
    factory = default_pipeline().factory(capacity, levels)
    gates = _gate_list(factory.circuit)
    placements = [
        random_circuit_placement(factory.circuit, seed=seed + index)
        for index in range(num_placements)
    ]
    configs = [SimulatorConfig(max_candidates=mc) for mc in candidate_sweep]
    points = [
        (gates, placement, config)
        for placement in placements
        for config in configs
    ]

    def best_of(func):
        best, result = float("inf"), None
        for _ in range(repeats):
            tick = time.perf_counter()
            result = func()
            best = min(best, time.perf_counter() - tick)
        return best, result

    loop_seconds, loop_results = best_of(
        lambda: [simulate(g, p, c) for g, p, c in points]
    )
    batch_seconds, batch_results = best_of(lambda: simulate_batch(points))
    mismatched = sum(
        1
        for loop_result, batch_result in zip(loop_results, batch_results)
        if loop_result.to_dict() != batch_result.to_dict()
    )
    if mismatched:
        raise AssertionError(
            f"sim-batch: batched engine diverged from the per-point engine "
            f"on {mismatched} of {len(points)} points"
        )
    engine = (
        "compiled"
        if kernel_available()
        else ("vector" if numpy_available() else "scalar")
    )
    return {
        "experiment": SIM_BATCH_BENCH,
        "params": {
            "capacity": capacity,
            "levels": levels,
            "seed": seed,
            "repeats": repeats,
            "placements": num_placements,
            "candidate_sweep": list(candidate_sweep),
        },
        "workers": 1,
        "wall_seconds": round(time.perf_counter() - started, 4),
        "sim_cycles": None,
        "stall_cycles": None,
        "evaluations": None,
        "sim": {
            "engine": engine,
            "points": len(points),
            "gates": len(gates),
            "loop_total_seconds": round(loop_seconds, 4),
            "batch_total_seconds": round(batch_seconds, 4),
            "speedup": round(loop_seconds / batch_seconds, 2)
            if batch_seconds > 0
            else None,
        },
    }


def _bench_sweep_shard(args: argparse.Namespace) -> Dict[str, Any]:
    """Benchmark a k-shard simulated fleet against one single-store sweep.

    The scenario is the distributed layer's target shape — a congested
    fig7-style capacity sweep partitioned over three strided shards, each
    running :func:`~repro.api.sharding.run_shard` against a private store,
    then joined with :meth:`~repro.api.store.ResultStore.merge`.  The
    fleet is *simulated* (shards run back to back in this process), so
    the headline ``fleet_wall_seconds`` is the max of the per-shard walls
    — what a real 3-machine fleet would wait — while ``wall_seconds``
    keeps the actual serial cost of the whole bench entry.  The merged
    store must answer a full resumed run with zero evaluations and
    byte-identical output to the single-store run; the bench fails hard
    otherwise, so every perf record doubles as an invariant check.
    """
    import shutil
    import tempfile

    shards = 3
    strategy = "strided"
    methods = ["linear", "force_directed"]
    capacities = [2, 4] if args.smoke else [2, 3, 4, 6]
    seed = args.seed if args.seed is not None else 0
    plan = SweepPlan.from_grid(
        methods=methods, capacities=capacities, levels=[1], seeds=[seed]
    )
    started = time.perf_counter()
    root = tempfile.mkdtemp(prefix="repro-bench-shard-")
    try:
        single_store = ResultStore(os.path.join(root, "single"))
        tick = time.perf_counter()
        single = SweepExecutor(workers=1, store=single_store).run(plan)
        single_seconds = time.perf_counter() - tick

        shard_stores: List[ResultStore] = []
        shard_walls: List[float] = []
        for spec in shard_specs(shards, strategy):
            shard_store = ResultStore(os.path.join(root, f"shard-{spec.index}"))
            shard_stores.append(shard_store)
            tick = time.perf_counter()
            outcome = run_shard(plan, spec, shard_store)
            shard_walls.append(time.perf_counter() - tick)
            if outcome.yielded or outcome.stolen:
                raise AssertionError(
                    f"sweep-shard: claimless shard {spec.index} must neither "
                    f"yield nor steal, got {outcome.to_dict()}"
                )

        merged = ResultStore(os.path.join(root, "merged"))
        report = merged.merge([shard_store.root for shard_store in shard_stores])
        if report.conflicts:
            raise AssertionError(
                f"sweep-shard: disjoint shards produced {report.conflicts} "
                f"merge conflicts"
            )
        resumed = SweepExecutor(workers=1, store=merged).run(plan, resume=True)
        if resumed.stats.evaluations != 0:
            raise AssertionError(
                f"sweep-shard: the merged store answered a resumed run with "
                f"{resumed.stats.evaluations} fresh evaluations, expected 0"
            )
        if json.dumps(resumed.to_dict(), sort_keys=True) != json.dumps(
            single.to_dict(), sort_keys=True
        ):
            raise AssertionError(
                "sweep-shard: merged-store output is not byte-identical to "
                "the single-store run"
            )
    finally:
        shutil.rmtree(root, ignore_errors=True)

    fleet_wall = max(shard_walls)
    return {
        "experiment": SWEEP_SHARD_BENCH,
        "params": {
            "shards": shards,
            "strategy": strategy,
            "methods": methods,
            "capacities": capacities,
            "seed": seed,
        },
        "workers": 1,
        "wall_seconds": round(time.perf_counter() - started, 4),
        "sim_cycles": sum(e.latency for e in single.evaluations),
        "stall_cycles": sum(e.stall_cycles for e in single.evaluations),
        "evaluations": len(single.evaluations),
        "shard": {
            "shards": shards,
            "strategy": strategy,
            "plan_points": len(plan),
            "merged_entries": report.merged,
            "single_seconds": round(single_seconds, 4),
            "fleet_wall_seconds": round(fleet_wall, 4),
            "fleet_total_seconds": round(sum(shard_walls), 4),
            "fleet_speedup": (
                round(single_seconds / fleet_wall, 2) if fleet_wall > 0 else None
            ),
            "identical": True,
        },
    }


def _bench_one(name: str, args: argparse.Namespace) -> Dict[str, Any]:
    """Benchmark one experiment and return its JSON-safe record."""
    spec = get_experiment(name)
    kwargs = _bench_kwargs(spec, args)
    pipeline = default_pipeline()
    before = pipeline.stats.snapshot()
    take_last_run_stats()  # discard stats of any earlier, unrelated run
    started = time.perf_counter()
    result = spec.run(**kwargs)
    wall_seconds = time.perf_counter() - started

    record: Dict[str, Any] = {
        "experiment": name,
        "params": {key: value for key, value in kwargs.items()},
        "workers": kwargs.get("workers", 1),
        "wall_seconds": round(wall_seconds, 4),
        "sim_cycles": None,
        "stall_cycles": None,
        "evaluations": None,
    }
    evaluations = getattr(result, "evaluations", None)
    if evaluations:
        record["evaluations"] = len(evaluations)
        record["sim_cycles"] = sum(e.latency for e in evaluations)
        record["stall_cycles"] = sum(e.stall_cycles for e in evaluations)

    executor_stats = take_last_run_stats()
    if executor_stats is not None:
        # The sweep ran through a SweepExecutor (workers > 1): report its
        # exact per-run accounting, aggregated across worker processes.
        record["cache"] = executor_stats.to_dict()
    else:
        delta = pipeline.stats.delta(before)
        record["cache"] = {
            "evaluations": delta.evaluations,
            "factory_builds": delta.factory_builds,
            "factory_cache_hits": delta.cache_hits,
            "sim_cache_hits": delta.sim_cache_hits,
            "store_hits": delta.store_hits,
            "fd_sweeps": delta.fd_sweeps,
            "fd_moves_accepted": delta.fd_moves_accepted,
            "sim_stall_events": delta.sim_stall_events,
            "sim_distinct_stalls": delta.sim_distinct_stalls,
            "sim_wakeups": delta.sim_wakeups,
            "build_seconds": round(delta.build_seconds, 4),
            "map_seconds": round(delta.map_seconds, 4),
            "sim_seconds": round(delta.sim_seconds, 4),
            "workers": 1,
        }
    return record


def run_bench_compare(args: argparse.Namespace) -> int:
    """The ``bench --compare`` mode: diff two records, gate on slowdowns."""
    ignored = [
        flag
        for flag, used in (
            ("--experiments", args.experiments is not None),
            ("--output", args.output is not None),
            ("--smoke", args.smoke),
            ("--workers", args.workers != 1),
            ("--seed", args.seed is not None),
            ("--batch", args.batch),
        )
        if used
    ]
    if ignored:
        print(
            f"bench --compare: {', '.join(ignored)} only apply when "
            f"benchmarking, not when comparing records",
            file=sys.stderr,
        )
        return 2
    old_path, new_path = args.compare
    try:
        old_record = load_bench_record(old_path)
        new_record = load_bench_record(new_path)
        comparison = compare_bench_records(
            old_record,
            new_record,
            max_slowdown=(
                args.max_slowdown if args.max_slowdown is not None else 1.5
            ),
            min_slowdown_seconds=(
                args.min_slowdown_seconds
                if args.min_slowdown_seconds is not None
                else 0.05
            ),
        )
    except (BenchRecordError, ValueError) as error:
        print(f"bench --compare: {error}", file=sys.stderr)
        return 2
    print(comparison.format_table(strict=args.strict))
    return comparison.exit_code(strict=args.strict)


def run_bench(args: argparse.Namespace) -> int:
    """The ``bench`` command: time experiments and write the perf record."""
    if args.compare is not None:
        return run_bench_compare(args)
    compare_only = [
        flag
        for flag, used in (
            ("--max-slowdown", args.max_slowdown is not None),
            ("--min-slowdown-seconds", args.min_slowdown_seconds is not None),
            ("--strict", args.strict),
        )
        if used
    ]
    if compare_only:
        print(
            f"bench: {', '.join(compare_only)} only apply with --compare",
            file=sys.stderr,
        )
        return 2
    experiments = (
        args.experiments
        if args.experiments is not None
        else ",".join(DEFAULT_BENCH_EXPERIMENTS)
    )
    names = [name.strip() for name in experiments.split(",") if name.strip()]
    if args.workers < 1:
        print(f"bench: --workers must be >= 1, got {args.workers}", file=sys.stderr)
        return 2
    known = set(available_experiments()) | {
        FD_MAPPER_BENCH,
        FD_KERNEL_BENCH,
        SIM_CONGESTION_BENCH,
        SIM_BATCH_BENCH,
        SWEEP_SHARD_BENCH,
    }
    unknown = [name for name in names if name not in known]
    if unknown:
        print(
            f"bench: unknown experiment(s) {', '.join(unknown)}; "
            f"see 'repro-msfu list'",
            file=sys.stderr,
        )
        return 2
    records = []
    for name in names:
        print(f"[bench] {name} ...", file=sys.stderr)
        if name == FD_MAPPER_BENCH:
            record = _bench_fd_mapper(args)
        elif name == FD_KERNEL_BENCH:
            record = _bench_fd_kernel(args)
        elif name == SIM_CONGESTION_BENCH:
            record = _bench_sim_congestion(args)
        elif name == SIM_BATCH_BENCH:
            record = _bench_sim_batch(args)
        elif name == SWEEP_SHARD_BENCH:
            record = _bench_sweep_shard(args)
        else:
            record = _bench_one(name, args)
        print(
            f"[bench] {name}: {record['wall_seconds']:.2f}s"
            + (
                f", {record['sim_cycles']} simulated cycles"
                if record["sim_cycles"] is not None
                else ""
            ),
            file=sys.stderr,
        )
        records.append(record)

    payload = {
        "schema": "repro-msfu-bench/v1",
        "created_utc": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "smoke": bool(args.smoke),
        # What the user asked for; each experiment entry's own "workers"
        # records what actually ran (experiments without a workers param
        # always run serially).
        "requested_workers": args.workers,
        # Provenance: lets `bench --compare` gate same-machine diffs hard and
        # annotate cross-machine diffs as advisory instead of failing them.
        "git_sha": current_git_sha(),
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),  # legacy key, kept for old tooling
        "python_version": platform.python_version(),
        "platform": platform.platform(),
        "experiments": records,
        "total_wall_seconds": round(
            sum(record["wall_seconds"] for record in records), 4
        ),
    }
    output = args.output or datetime.now(timezone.utc).strftime(
        "BENCH_%Y%m%dT%H%M%SZ.json"
    )
    # Atomic write: a crash mid-dump must never leave a truncated bench
    # record for the compare gate to choke on (same discipline as the store).
    atomic_write_json(output, payload, indent=2)
    print(f"[bench record -> {output}]", file=sys.stderr)
    return 0


def _sweep_plan_from_args(args: argparse.Namespace) -> SweepPlan:
    """Build the plan for ``sweep run`` from ``--plan`` or the grid options."""
    # The validating wire decoder is shared with the HTTP service, so a bad
    # plan file gets the same field-naming message an HTTP 400 body would.
    from .service.wire import decode_sweep_plan, validate_plan_mappers

    if args.plan is not None:
        grid_flags_used = (
            args.methods is not None
            or args.capacities is not None
            or args.levels is not None
            or args.seeds is not None
            or args.reuse
        )
        if grid_flags_used:
            raise ValueError(
                "--plan and the grid options (--methods/--capacities/--levels/"
                "--seeds/--reuse) are mutually exclusive: a plan file fully "
                "determines its requests"
            )
        with open(args.plan, "r", encoding="utf-8") as handle:
            try:
                plan = decode_sweep_plan(json.load(handle))
            except ValueError as error:  # WireFormatError and bad JSON text
                raise ValueError(
                    f"{args.plan} is not a valid sweep plan "
                    f"(SweepPlan.to_dict form): {error}"
                ) from error
    else:
        if args.methods is None or args.capacities is None:
            raise ValueError(
                "sweep run needs --methods and --capacities (or --plan FILE)"
            )
        methods = [name.strip() for name in args.methods.split(",") if name.strip()]
        if not methods:
            raise ValueError("--methods must name at least one mapper")
        plan = SweepPlan.from_grid(
            methods=methods,
            capacities=args.capacities,
            levels=args.levels if args.levels is not None else [1],
            reuse=args.reuse,
            seeds=args.seeds if args.seeds is not None else [0],
        )
    # Fail fast on unknown mapper names — a clean exit-2 message listing the
    # registered names beats a traceback out of the executor (or a worker
    # process) mid-run.  Applies to plan files and grid flags alike.
    validate_plan_mappers(plan)
    return plan


def _emit(text: str, output: Optional[str]) -> None:
    """Write rendered command output to stdout or ``--output FILE``."""
    if output:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"[-> {output}]", file=sys.stderr)
    else:
        print(text)


#: Schema tag of ``--stream-output`` JSONL lines (sweep run and shard).
_STREAM_LINE_SCHEMA = "repro-msfu-stream/v1"


def run_sweep_command(args: argparse.Namespace) -> int:
    """The ``sweep`` command family: run / status / gc on the result store,
    plan-split / shard / merge for distributed execution."""
    if args.sweep_command == "plan-split":
        return _run_sweep_plan_split(args)
    if args.sweep_command == "shard":
        return _run_sweep_shard(args)
    if args.sweep_command == "merge":
        return _run_sweep_merge(args)
    store = ResultStore(args.store)

    if args.sweep_command == "status":
        # Rendered through the StoreStatus dataclass (to_dict discipline),
        # so fleet tooling asserting on --json never screen-scrapes text.
        status = store.status_record().to_dict()
        if args.json:
            print(json.dumps(status, indent=2))
        else:
            print(f"result store {status['root']} (schema v{status['schema_version']})")
            print(f"  entries:      {status['entries']}")
            print(f"  total bytes:  {status['total_bytes']}")
            print(f"  corrupt:      {status['corrupt']}")
            print(f"  stale schema: {status['stale_schema']}")
            print(f"  oldest:       {status['oldest_utc'] or '-'}")
            print(f"  newest:       {status['newest_utc'] or '-'}")
        return 0

    if args.sweep_command == "gc":
        try:
            report = store.gc(keep_days=args.keep_days, dry_run=args.dry_run)
        except ValueError as error:
            print(f"sweep gc: {error}", file=sys.stderr)
            return 2
        if args.json:
            print(json.dumps(report.to_dict(), indent=2))
        else:
            verb = "would remove" if args.dry_run else "removed"
            print(
                f"sweep gc: {verb} {len(report.removed)} entries older than "
                f"{args.keep_days:g} days, kept {report.kept}"
            )
        return 0

    # sweep run
    if args.workers < 1:
        print(f"sweep run: --workers must be >= 1, got {args.workers}", file=sys.stderr)
        return 2
    try:
        plan = _sweep_plan_from_args(args)
    except (OSError, ValueError) as error:
        print(f"sweep run: {error}", file=sys.stderr)
        return 2
    executor = SweepExecutor(workers=args.workers, store=store, batch=args.batch)
    started = time.time()
    if args.stream_output:
        # Streaming mode: every resolved point is appended to the JSONL
        # sink the moment it lands (and flushed), so a killed run leaves a
        # complete record of everything it finished; the final result is
        # assembled from the same events.
        evaluations = [None] * len(plan)
        with open(args.stream_output, "a", encoding="utf-8") as handle:
            for event in executor.stream(plan, resume=args.resume):
                write_jsonl_line(
                    handle,
                    {
                        "schema": _STREAM_LINE_SCHEMA,
                        "kind": "run",
                        "done": event.done,
                        "total": event.total,
                        "source": event.source,
                        "plan_indices": list(event.plan_indices),
                        "request": event.request.to_dict(),
                        "evaluation": event.evaluation.to_dict(),
                    },
                )
                for index in event.plan_indices:
                    evaluations[index] = event.evaluation
        result = SweepRunResult(
            evaluations=evaluations,
            stats=take_last_run_stats() or ExecutorStats(),
        )
    else:
        result = executor.run(plan, resume=args.resume)
    elapsed = time.time() - started
    stats = result.stats
    print(
        f"[sweep run: {stats.requests} requests -> {stats.evaluations} evaluated, "
        f"{stats.store_hits} from store, {stats.duplicate_hits} duplicates "
        f"in {elapsed:.1f}s]",
        file=sys.stderr,
    )
    if args.json:
        payload = {
            "schema": "repro-msfu-sweep/v1",
            "store": str(store.root),
            "resumed": bool(args.resume),
            "stats": stats.to_dict(),
            "evaluations": [evaluation.to_dict() for evaluation in result.evaluations],
        }
        _emit(json.dumps(payload, indent=2), args.output)
        return 0
    lines = [
        f"{'method':<18} {'capacity':>8} {'levels':>6} {'reuse':>5} {'seed':>4} "
        f"{'latency':>8} {'area':>6} {'volume':>10}"
    ]
    for request, evaluation in zip(plan, result.evaluations):
        lines.append(
            f"{evaluation.method:<18} {evaluation.capacity:>8} "
            f"{evaluation.levels:>6} {str(evaluation.reuse):>5} {request.seed:>4} "
            f"{evaluation.latency:>8} {evaluation.area:>6} {evaluation.volume:>10}"
        )
    _emit("\n".join(lines), args.output)
    return 0


def _run_sweep_plan_split(args: argparse.Namespace) -> int:
    """``sweep plan-split``: write one self-contained shard file per piece."""
    if args.shards < 1:
        print(
            f"sweep plan-split: --shards must be >= 1, got {args.shards}",
            file=sys.stderr,
        )
        return 2
    try:
        plan = _sweep_plan_from_args(args)
    except (OSError, ValueError) as error:
        print(f"sweep plan-split: {error}", file=sys.stderr)
        return 2
    if args.shards > len(plan):
        print(
            f"sweep plan-split: --shards {args.shards} exceeds the plan's "
            f"{len(plan)} requests (empty shards would do nothing)",
            file=sys.stderr,
        )
        return 2
    paths = write_shard_files(
        plan, args.shards, args.out_dir, strategy=args.strategy
    )
    fingerprint = plan_fingerprint(plan)
    if args.json:
        print(
            json.dumps(
                {
                    "schema": "repro-msfu-plan-split/v1",
                    "plan_fingerprint": fingerprint,
                    "entries": len(plan),
                    "shards": args.shards,
                    "strategy": args.strategy,
                    "files": [str(path) for path in paths],
                },
                indent=2,
            )
        )
    else:
        print(
            f"sweep plan-split: {len(plan)} requests -> {args.shards} "
            f"{args.strategy} shards (plan {fingerprint[:12]})"
        )
        for path in paths:
            print(f"  {path}")
    return 0


def _run_sweep_shard(args: argparse.Namespace) -> int:
    """``sweep shard``: execute one shard of a plan against its store."""
    from .service.wire import validate_plan_mappers

    if args.workers < 1:
        print(
            f"sweep shard: --workers must be >= 1, got {args.workers}",
            file=sys.stderr,
        )
        return 2
    try:
        if args.spec is not None:
            if args.shard_index is not None or args.shard_count is not None:
                raise ValueError(
                    "--spec and --shard-index/--shard-count are mutually "
                    "exclusive: the shard file fully determines the shard"
                )
            plan, spec = load_shard_file(args.spec)
            validate_plan_mappers(plan)
        else:
            if args.shard_index is None or args.shard_count is None:
                raise ValueError(
                    "needs --spec FILE, or a plan source (--plan / grid "
                    "options) with --shard-index and --shard-count"
                )
            plan = _sweep_plan_from_args(args)
            spec = ShardSpec(
                index=args.shard_index,
                count=args.shard_count,
                strategy=args.strategy,
            )
        if not spec.plan_indices(len(plan)):
            raise ValueError(
                f"shard {spec.index}/{spec.count} of this "
                f"{len(plan)}-request plan is empty"
            )
    except (OSError, ValueError) as error:
        print(f"sweep shard: {error}", file=sys.stderr)
        return 2

    store = ResultStore(args.store)
    stream_handle = None
    progress = None
    started = time.time()
    try:
        if args.stream_output:
            stream_handle = open(args.stream_output, "a", encoding="utf-8")

            def progress(event):
                write_jsonl_line(
                    stream_handle,
                    {
                        "schema": _STREAM_LINE_SCHEMA,
                        "kind": "shard",
                        "done": event.done,
                        "phase": event.phase,
                        "source": event.source,
                        "plan_index": event.plan_index,
                        "fingerprint": event.fingerprint,
                        "request": event.request.to_dict(),
                        "evaluation": event.evaluation.to_dict(),
                    },
                )

        result = run_shard(
            plan,
            spec,
            store,
            claim_dir=args.claim_dir,
            workers=args.workers,
            batch=args.batch,
            steal=not args.no_steal,
            progress=progress,
        )
    finally:
        if stream_handle is not None:
            stream_handle.close()
    elapsed = time.time() - started
    stats = result.stats
    print(
        f"[sweep shard {spec.index}/{spec.count} ({spec.strategy}): "
        f"{len(result.own)} own, {len(result.yielded)} yielded, "
        f"{len(result.stolen)} stolen -> {stats.evaluations} evaluated, "
        f"{stats.store_hits} from store in {elapsed:.1f}s]",
        file=sys.stderr,
    )
    if args.json:
        payload = {"schema": "repro-msfu-shard-run/v1", **result.to_dict()}
        _emit(json.dumps(payload, indent=2), args.output)
        return 0
    lines = [
        f"shard {spec.index}/{spec.count} ({spec.strategy}) of plan "
        f"{result.plan_fingerprint[:12]} -> store {store.root}",
        f"  shard id:   {result.shard_id}",
        f"  own points: {len(result.own)}"
        + (f" (yielded {len(result.yielded)})" if result.yielded else ""),
        f"  stolen:     {len(result.stolen)}",
        f"  evaluated:  {stats.evaluations} ({stats.store_hits} from store)",
    ]
    _emit("\n".join(lines), args.output)
    return 0


def _run_sweep_merge(args: argparse.Namespace) -> int:
    """``sweep merge``: union source stores into ``--into``."""
    store = ResultStore(args.into)
    try:
        report = store.merge(args.sources, prefer_newest=args.prefer_newest)
    except MergeConflictError as error:
        print(f"sweep merge: {error}", file=sys.stderr)
        return 1
    except (OSError, ValueError) as error:
        print(f"sweep merge: {error}", file=sys.stderr)
        return 2
    if args.json:
        payload = {"schema": "repro-msfu-merge-report/v1", **report.to_dict()}
        print(json.dumps(payload, indent=2))
        return 0
    print(
        f"sweep merge -> {report.into}: {report.merged} merged, "
        f"{report.identical} identical, {report.conflicts} conflicts"
        + (" (resolved newest)" if args.prefer_newest else "")
    )
    for source in report.sources:
        extras = []
        if source.stale_schema:
            extras.append(f"{source.stale_schema} stale-schema")
        if source.bad_entries:
            extras.append(f"{source.bad_entries} corrupt")
        if source.preferred:
            extras.append(f"{source.preferred} preferred")
        suffix = f" [{', '.join(extras)}]" if extras else ""
        print(
            f"  {source.root}: {source.scanned} scanned, "
            f"{source.merged} merged, {source.identical} identical{suffix}"
        )
    return 0


def run_serve(args: argparse.Namespace) -> int:
    """The ``serve`` command: run the sweep service until interrupted."""
    if args.workers < 1:
        print(f"serve: --workers must be >= 1, got {args.workers}", file=sys.stderr)
        return 2
    # Imported lazily: the service layer is not needed by any other command.
    import signal

    from .service.server import serve as build_service

    service, server = build_service(
        store=args.store, host=args.host, port=args.port, workers=args.workers
    )
    host, port = server.server_address[:2]
    recovered = service.jobs.jobs_in_flight()
    print(
        f"[serve: http://{host}:{port} store={args.store} "
        f"workers={args.workers}"
        + (f", resuming {recovered} unfinished job(s)" if recovered else "")
        + "]",
        file=sys.stderr,
    )

    # Graceful shutdown on SIGTERM too: Ctrl-C never reaches a process
    # backgrounded by a non-interactive shell (CI runs `serve &` and later
    # `kill`s it), so plain termination must also close the job queue and
    # flush state, not die mid-write.
    def _sigterm(signum, frame):  # pragma: no cover - signal plumbing
        raise KeyboardInterrupt

    previous_sigterm = signal.signal(signal.SIGTERM, _sigterm)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("[serve: shutting down]", file=sys.stderr)
    finally:
        signal.signal(signal.SIGTERM, previous_sigterm)
        server.server_close()
        service.close()
    return 0


def run_experiment(name: str, **kwargs) -> str:
    """Run an experiment by name and return its formatted result.

    Backward-compatible helper: new code should use
    :func:`repro.api.run_experiment`, which returns the structured result
    object instead of pre-rendered text.
    """
    spec = get_experiment(name)
    return spec.format(spec.run(**kwargs))


def _experiment_kwargs(
    spec: ExperimentSpec, args: argparse.Namespace
) -> Dict[str, Any]:
    """Collect the declared parameters the user actually set."""
    kwargs: Dict[str, Any] = {}
    for param in spec.params:
        value = getattr(args, param.name, None)
        if value is not None:
            kwargs[param.name] = value
    return kwargs


def _render(
    name: str, result: Any, spec: ExperimentSpec, as_json: bool, elapsed: float
) -> str:
    if not as_json:
        return spec.format(result)
    payload = {
        "experiment": name,
        "elapsed_seconds": round(elapsed, 3),
        "result": result.to_dict() if hasattr(result, "to_dict") else result,
    }
    return json.dumps(payload, indent=2)


def _normalize_run_argv(argv: Sequence[str]) -> List[str]:
    """Hoist the experiment name directly after ``run``.

    The old flat parser accepted ``run --seed 1 fig6``; subparsers require
    the experiment name first.  If the token after ``run`` is an option,
    move the first token naming a registered experiment up front so both
    orderings keep working.
    """
    tokens = list(argv)
    try:
        run_index = tokens.index("run")
    except ValueError:
        return tokens
    rest = tokens[run_index + 1 :]
    if not rest or not rest[0].startswith("-"):
        return tokens
    known = set(available_experiments())
    for index, token in enumerate(rest):
        if token in known:
            rest.pop(index)
            return tokens[: run_index + 1] + [token] + rest
    return tokens


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for the ``repro-msfu`` console script."""
    parser = build_parser()
    args = parser.parse_args(
        _normalize_run_argv(argv if argv is not None else sys.argv[1:])
    )

    if args.command == "list":
        names = sorted(available_experiments())
        if args.json:
            listing = [
                {"name": name, "description": get_experiment(name).description}
                for name in names
            ]
            print(json.dumps(listing, indent=2))
        else:
            print("Available experiments:")
            for name in names:
                description = get_experiment(name).description
                suffix = f"  — {description}" if description else ""
                print(f"  {name}{suffix}")
        return 0

    if args.command == "bench":
        return run_bench(args)

    if args.command == "sweep":
        return run_sweep_command(args)

    if args.command == "serve":
        return run_serve(args)

    if args.command == "lint":
        from .lint.cli import run_lint

        return run_lint(args)

    spec = get_experiment(args.experiment)
    kwargs = _experiment_kwargs(spec, args)

    started = time.time()
    result = spec.run(**kwargs)
    elapsed = time.time() - started
    rendered = _render(args.experiment, result, spec, args.json, elapsed)

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        print(
            f"[{args.experiment} completed in {elapsed:.1f}s -> {args.output}]",
            file=sys.stderr,
        )
        return 0

    print(rendered)
    if not args.json:
        # Keep stdout machine-readable under --json: the trailer would break
        # `repro-msfu run ... --json | python -m json.tool` style pipelines.
        print(f"\n[{args.experiment} completed in {elapsed:.1f}s]")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
