"""Shared runtime for the optional, runtime-compiled C kernels.

Two hot paths ship an optional C fast engine: the batched braid-route
simulator (:mod:`repro.routing.kernel`, ``batchsim_kernel.c``) and the
incremental mapping-cost tracker (:mod:`repro.kernels.metrics`,
``metrics_kernel.c``).  Both share the loader in
:mod:`repro.kernels.runtime`: host-compiler discovery, a cache digest
over the kernel source plus ``REPRO_KERNEL_CFLAGS``, an on-disk ``.so``
cache, and the ``REPRO_NO_KERNEL`` opt-out.  Keeping the machinery in
one place means every kernel degrades gracefully the same way (no
compiler, unwritable cache, failed compile -> pure-Python engines) and
CI can sanitize all kernels with a single set of environment knobs.
"""

from .runtime import KernelLoader, compiler_path, extra_cflags

__all__ = ["KernelLoader", "compiler_path", "extra_cflags"]
