"""Loader shared by every runtime-compiled C kernel.

A :class:`KernelLoader` owns one kernel source file.  On first use the
source next to the owning module is built with the host C compiler into
a shared library and loaded via :mod:`ctypes`; the library is cached on
disk keyed by a hash of the source text and the compile flags, so
recompilation only happens when either changes.

Everything degrades gracefully: no compiler, no writable cache
directory, or a failed compile simply reports the kernel as unavailable
and callers stay on the pure-Python engines.  Environment knobs (shared
by all kernels):

* ``REPRO_NO_KERNEL=1`` disables every kernel outright (tests use it to
  pin the Python paths);
* ``REPRO_KERNEL_CACHE`` overrides the cache directory (default:
  ``_kernel_cache/`` beside the source, falling back to a per-user temp
  directory when that is not writable);
* ``REPRO_KERNEL_CFLAGS`` appends extra compiler flags — CI uses it to
  build the kernels under ``-Wall -Wextra -Werror`` and the ASan/UBSan
  sanitizers.  The extra flags are folded into the cache digest, so a
  sanitized build never reuses (or poisons) the plain cached library.

Per-kernel ``base_cflags`` (e.g. ``-ffp-contract=off`` for the metrics
kernel, whose floating-point results must be bit-identical to the
Python engines) are folded into the digest the same way.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import threading
from typing import Any, Callable, Iterator, Optional, Sequence


def compiler_path() -> Optional[str]:
    """The host C compiler: ``$CC`` when set, else cc/gcc/clang on PATH."""
    explicit = os.environ.get("CC")
    if explicit:
        return shutil.which(explicit) or explicit
    return shutil.which("cc") or shutil.which("gcc") or shutil.which("clang")


def extra_cflags() -> list:
    """Extra compiler flags from ``REPRO_KERNEL_CFLAGS`` (shlex-free split)."""
    return os.environ.get("REPRO_KERNEL_CFLAGS", "").split()


def _cache_dirs(source_path: str) -> Iterator[str]:
    override = os.environ.get("REPRO_KERNEL_CACHE")
    if override:
        yield override
        return
    yield os.path.join(os.path.dirname(source_path), "_kernel_cache")
    yield os.path.join(
        tempfile.gettempdir(),
        f"repro-kernel-{os.getuid() if hasattr(os, 'getuid') else 'u'}",
    )


class KernelLoader:
    """Compile-and-load manager for one C kernel source.

    ``facade`` wraps the loaded :class:`ctypes.CDLL` (plus the library
    path) into the kernel's typed Python interface; what :meth:`load`
    caches and returns is the facade instance.  The load attempt runs at
    most once per process (per :meth:`reset`), under a lock, so racing
    threads converge on one compile.
    """

    def __init__(
        self,
        source_path: str,
        stem: str,
        facade: Callable[[ctypes.CDLL, str], Any],
        base_cflags: Sequence[str] = (),
    ) -> None:
        self.source_path = source_path
        self.stem = stem
        self._facade = facade
        self._base_cflags = tuple(base_cflags)
        self._lock = threading.Lock()
        self._cached: Optional[Any] = None
        self._tried = False

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def _all_extra_cflags(self) -> list:
        return list(self._base_cflags) + extra_cflags()

    def _compile(self, digest: str) -> Optional[str]:
        compiler = compiler_path()
        if compiler is None:
            return None
        for cache_dir in _cache_dirs(self.source_path):
            so_path = os.path.join(cache_dir, f"{self.stem}_{digest}.so")
            if os.path.exists(so_path):
                return so_path
            try:
                os.makedirs(cache_dir, exist_ok=True)
                fd, tmp_path = tempfile.mkstemp(suffix=".so", dir=cache_dir)
                os.close(fd)
            except OSError:
                continue
            try:
                proc = subprocess.run(
                    [compiler, "-O3", "-fPIC", "-shared"]
                    + self._all_extra_cflags()
                    + ["-o", tmp_path, self.source_path],
                    capture_output=True,
                    timeout=120,
                )
                if proc.returncode != 0:
                    return None
                os.replace(tmp_path, so_path)  # atomic: racing builds converge
                return so_path
            except (OSError, subprocess.SubprocessError):
                return None
            finally:
                if os.path.exists(tmp_path):
                    try:
                        os.unlink(tmp_path)
                    except OSError:
                        pass
        return None

    def _try_load(self) -> Optional[Any]:
        if os.environ.get("REPRO_NO_KERNEL"):
            return None
        try:
            with open(self.source_path, "rb") as handle:
                source = handle.read()
        except OSError:
            return None
        # The cache digest covers the source AND every non-default flag
        # (per-kernel base flags plus REPRO_KERNEL_CFLAGS): a sanitizer
        # build must not be served the plain cached .so (or vice versa).
        hasher = hashlib.sha256(source)
        hasher.update(b"\x00")
        hasher.update(" ".join(self._all_extra_cflags()).encode("utf-8"))
        digest = hasher.hexdigest()[:16]
        so_path = self._compile(digest)
        if so_path is None:
            return None
        try:
            return self._facade(ctypes.CDLL(so_path), so_path)
        except OSError:
            return None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def load(self) -> Optional[Any]:
        """The loaded kernel facade, compiling on first call; None when unavailable."""
        with self._lock:
            if not self._tried:
                self._tried = True
                self._cached = self._try_load()
            return self._cached

    def available(self) -> bool:
        """Whether the compiled fast path can run in this environment."""
        return self.load() is not None

    def reset(self) -> None:
        """Forget the cached load attempt (tests toggle REPRO_NO_KERNEL)."""
        with self._lock:
            self._cached = None
            self._tried = False
