/* Compiled fast engine for the incremental mapping-cost tracker.
 *
 * Mirrors the Python engines of repro/graphs/metrics.py (MappingCostTracker)
 * over flat arrays: segment endpoints seg[m*4] = (p_row, p_col, q_row, q_col),
 * midpoints mid[m*2], edge endpoint vertices eu/ev[m], per-edge full
 * midpoint-distance row sums R[m], and a dense clamped bucket grid
 * (cell_count / cell_items / per-edge clamped cell ranges edge_range[m*4] =
 * {row_lo, row_hi, col_lo, col_hi}).
 *
 * Bitwise discipline (the compiled, vector and scalar engines must agree on
 * every bit of every float they produce):
 *
 *  - distances are sqrt(dr*dr + dc*dc) -- IEEE correctly-rounded ops only,
 *    never hypot() (library-dependent rounding);
 *  - every reduction over an m-length row is a binary tree fold over the
 *    row zero-padded to the power-of-two length `pad` (identical to the
 *    numpy a[0::2] + a[1::2] halving and the Python list halving);
 *  - the build ships with -ffp-contract=off so the compiler cannot fuse
 *    the multiply-adds above into FMAs the Python engines do not perform.
 *
 * The crossing predicates replicate the arithmetic of _orientation /
 * _on_segment / _segments_cross exactly (same products, same 1e-12
 * tolerances), so crossing counts agree with the Python engines on every
 * input.  The clamped dense grid may produce *larger* candidate sets than
 * the unbounded Python dict grid (out-of-range cells clamp onto the border),
 * but candidates are only pruning: the exact bbox + orientation tests keep
 * the counted pair set identical.
 *
 * int-params array ip = { m, pad, origin_row, origin_col, n_rows, n_cols,
 * cap }.  All functions are single-threaded over caller-owned buffers.
 */

#include <stdint.h>
#include <math.h>

#define TOL 1e-12

/* ------------------------------------------------------------------ */
/* Canonical float helpers                                             */
/* ------------------------------------------------------------------ */

static double dist2d(double ar, double ac, double br, double bc) {
    double dr = ar - br;
    double dc = ac - bc;
    return sqrt(dr * dr + dc * dc);
}

/* Binary tree fold of scratch[0..m) zero-padded to pad (a power of two). */
static double treefold(double *scratch, int64_t m, int64_t pad) {
    int64_t i, len, half;
    for (i = m; i < pad; i++) {
        scratch[i] = 0.0;
    }
    for (len = pad; len > 1; len = half) {
        half = len >> 1;
        for (i = 0; i < half; i++) {
            scratch[i] = scratch[2 * i] + scratch[2 * i + 1];
        }
    }
    return scratch[0];
}

/* ------------------------------------------------------------------ */
/* Crossing predicates (exact replicas of the Python arithmetic)       */
/* ------------------------------------------------------------------ */

static int orientation(double pr, double pc, double qr, double qc,
                       double rr, double rc) {
    double value = (qc - pc) * (rr - qr) - (qr - pr) * (rc - qc);
    if (fabs(value) < TOL) {
        return 0;
    }
    return value > 0 ? 1 : 2;
}

static int on_segment(double pr, double pc, double qr, double qc,
                      double rr, double rc) {
    double row_lo = pr < rr ? pr : rr;
    double row_hi = pr < rr ? rr : pr;
    double col_lo = pc < rc ? pc : rc;
    double col_hi = pc < rc ? rc : pc;
    return (row_lo - TOL <= qr && qr <= row_hi + TOL
            && col_lo - TOL <= qc && qc <= col_hi + TOL);
}

static int segments_cross(const double *a, const double *b) {
    int o1 = orientation(a[0], a[1], a[2], a[3], b[0], b[1]);
    int o2 = orientation(a[0], a[1], a[2], a[3], b[2], b[3]);
    int o3 = orientation(b[0], b[1], b[2], b[3], a[0], a[1]);
    int o4 = orientation(b[0], b[1], b[2], b[3], a[2], a[3]);
    if (o1 != o2 && o3 != o4) {
        return 1;
    }
    if (o1 == 0 && on_segment(a[0], a[1], b[0], b[1], a[2], a[3])) {
        return 1;
    }
    if (o2 == 0 && on_segment(a[0], a[1], b[2], b[3], a[2], a[3])) {
        return 1;
    }
    if (o3 == 0 && on_segment(b[0], b[1], a[0], a[1], b[2], b[3])) {
        return 1;
    }
    if (o4 == 0 && on_segment(b[0], b[1], a[2], a[3], b[2], b[3])) {
        return 1;
    }
    return 0;
}

/* Bounding-box rejection with the collinearity tolerance as margin. */
static int bbox_reject(const double *query_seg, const double *other_seg) {
    double row_lo = (query_seg[0] < query_seg[2] ? query_seg[0] : query_seg[2]) - TOL;
    double row_hi = (query_seg[0] < query_seg[2] ? query_seg[2] : query_seg[0]) + TOL;
    double col_lo = (query_seg[1] < query_seg[3] ? query_seg[1] : query_seg[3]) - TOL;
    double col_hi = (query_seg[1] < query_seg[3] ? query_seg[3] : query_seg[1]) + TOL;
    double o_row_lo = other_seg[0] < other_seg[2] ? other_seg[0] : other_seg[2];
    double o_row_hi = other_seg[0] < other_seg[2] ? other_seg[2] : other_seg[0];
    double o_col_lo = other_seg[1] < other_seg[3] ? other_seg[1] : other_seg[3];
    double o_col_hi = other_seg[1] < other_seg[3] ? other_seg[3] : other_seg[1];
    return (o_row_hi < row_lo || o_row_lo > row_hi
            || o_col_hi < col_lo || o_col_lo > col_hi);
}

/* ------------------------------------------------------------------ */
/* Dense clamped cell grid                                             */
/* ------------------------------------------------------------------ */

static int64_t clampi(int64_t value, int64_t lo, int64_t hi) {
    if (value < lo) {
        return lo;
    }
    if (value > hi) {
        return hi;
    }
    return value;
}

/* Clamped cell range of one segment; out = {row_lo, row_hi, col_lo, col_hi}. */
static void cell_range(const double *seg, double bucket, const int64_t *ip,
                       int64_t *out) {
    double row_min = seg[0] < seg[2] ? seg[0] : seg[2];
    double row_max = seg[0] < seg[2] ? seg[2] : seg[0];
    double col_min = seg[1] < seg[3] ? seg[1] : seg[3];
    double col_max = seg[1] < seg[3] ? seg[3] : seg[1];
    int64_t origin_row = ip[2], origin_col = ip[3];
    int64_t n_rows = ip[4], n_cols = ip[5];
    out[0] = clampi((int64_t)floor(row_min / bucket), origin_row,
                    origin_row + n_rows - 1);
    out[1] = clampi((int64_t)floor(row_max / bucket), origin_row,
                    origin_row + n_rows - 1);
    out[2] = clampi((int64_t)floor(col_min / bucket), origin_col,
                    origin_col + n_cols - 1);
    out[3] = clampi((int64_t)floor(col_max / bucket), origin_col,
                    origin_col + n_cols - 1);
}

static int64_t grid_insert(int64_t edge, const int64_t *range,
                           const int64_t *ip, int64_t *cell_count,
                           int64_t *cell_items) {
    int64_t origin_row = ip[2], origin_col = ip[3];
    int64_t n_cols = ip[5], cap = ip[6];
    int64_t row, col;
    for (row = range[0]; row <= range[1]; row++) {
        for (col = range[2]; col <= range[3]; col++) {
            int64_t cell = (row - origin_row) * n_cols + (col - origin_col);
            if (cell_count[cell] >= cap) {
                return -1;
            }
            cell_items[cell * cap + cell_count[cell]] = edge;
            cell_count[cell] += 1;
        }
    }
    return 0;
}

static void grid_remove(int64_t edge, const int64_t *range,
                        const int64_t *ip, int64_t *cell_count,
                        int64_t *cell_items) {
    int64_t origin_row = ip[2], origin_col = ip[3];
    int64_t n_cols = ip[5], cap = ip[6];
    int64_t row, col, slot;
    for (row = range[0]; row <= range[1]; row++) {
        for (col = range[2]; col <= range[3]; col++) {
            int64_t cell = (row - origin_row) * n_cols + (col - origin_col);
            int64_t count = cell_count[cell];
            for (slot = 0; slot < count; slot++) {
                if (cell_items[cell * cap + slot] == edge) {
                    cell_items[cell * cap + slot] =
                        cell_items[cell * cap + count - 1];
                    cell_count[cell] = count - 1;
                    break;
                }
            }
        }
    }
}

/* Build the whole grid from seg; returns -1 when a cell overflows cap. */
int64_t mc_grid_build(const int64_t *ip, const double *seg, double bucket,
                      int64_t *cell_count, int64_t *cell_items,
                      int64_t *edge_range) {
    int64_t m = ip[0], n_cells = ip[4] * ip[5];
    int64_t i;
    for (i = 0; i < n_cells; i++) {
        cell_count[i] = 0;
    }
    for (i = 0; i < m; i++) {
        cell_range(seg + 4 * i, bucket, ip, edge_range + 4 * i);
        if (grid_insert(i, edge_range + 4 * i, ip, cell_count,
                        cell_items) != 0) {
            return -1;
        }
    }
    return 0;
}

/* ------------------------------------------------------------------ */
/* Initialization                                                      */
/* ------------------------------------------------------------------ */

/* Fill R with per-edge full midpoint-distance row sums (tree-folded; the
 * self term is sqrt(0) = 0) and return the pairwise spacing sum, which is
 * exactly half the (tree-folded) total of R. */
double mc_spacing_init(const int64_t *ip, const double *mid, double *R,
                       double *scratch) {
    int64_t m = ip[0], pad = ip[1];
    int64_t i, j;
    for (i = 0; i < m; i++) {
        double row = mid[2 * i], col = mid[2 * i + 1];
        for (j = 0; j < m; j++) {
            scratch[j] = dist2d(row, col, mid[2 * j], mid[2 * j + 1]);
        }
        R[i] = treefold(scratch, m, pad);
    }
    for (i = 0; i < m; i++) {
        scratch[i] = R[i];
    }
    return treefold(scratch, m, pad) * 0.5;
}

/* Total crossing count over the built grid: each unordered pair is tested
 * once, when the higher-indexed edge queries (matching the Python
 * insert-after-query construction).  Also fills crossC[i] with the number
 * of crossings edge i participates in — the per-edge cache that lets move
 * evaluation skip re-scanning old segments. */
int64_t mc_count_crossings(const int64_t *ip, const double *seg,
                           const int64_t *eu, const int64_t *ev,
                           const int64_t *edge_range,
                           const int64_t *cell_count,
                           const int64_t *cell_items,
                           int64_t *stamp, int64_t *gen, int64_t *crossC) {
    int64_t m = ip[0];
    int64_t origin_row = ip[2], origin_col = ip[3];
    int64_t n_cols = ip[5], cap = ip[6];
    int64_t crossings = 0;
    int64_t i, row, col, slot;
    for (i = 0; i < m; i++) {
        crossC[i] = 0;
    }
    for (i = 0; i < m; i++) {
        const int64_t *range = edge_range + 4 * i;
        int64_t g = ++(*gen);
        for (row = range[0]; row <= range[1]; row++) {
            for (col = range[2]; col <= range[3]; col++) {
                int64_t cell = (row - origin_row) * n_cols + (col - origin_col);
                int64_t count = cell_count[cell];
                for (slot = 0; slot < count; slot++) {
                    int64_t other = cell_items[cell * cap + slot];
                    if (other >= i || stamp[other] == g) {
                        continue;
                    }
                    stamp[other] = g;
                    if (eu[i] == eu[other] || eu[i] == ev[other]
                        || ev[i] == eu[other] || ev[i] == ev[other]) {
                        continue;
                    }
                    if (bbox_reject(seg + 4 * i, seg + 4 * other)) {
                        continue;
                    }
                    if (segments_cross(seg + 4 * i, seg + 4 * other)) {
                        crossings += 1;
                        crossC[i] += 1;
                        crossC[other] += 1;
                    }
                }
            }
        }
    }
    return crossings;
}

/* ------------------------------------------------------------------ */
/* Move evaluation                                                     */
/* ------------------------------------------------------------------ */

/* Crossings of one query segment against the grid, skipping every changed
 * edge (cflag[edge] != 0; changed-vs-changed pairs are enumerated
 * separately).  When cross_adjust is non-NULL, every crossing partner has
 * cross_adjust[other] bumped by delta — the commit path uses this to keep
 * the per-edge crossing-count cache current. */
static int64_t cross_vs_grid(const double *query_seg, const int64_t *range,
                             int64_t self_u, int64_t self_v,
                             const int64_t *cflag,
                             const int64_t *ip, const double *seg,
                             const int64_t *eu, const int64_t *ev,
                             const int64_t *cell_count,
                             const int64_t *cell_items,
                             int64_t *stamp, int64_t *gen,
                             int64_t *cross_adjust, int64_t delta) {
    int64_t origin_row = ip[2], origin_col = ip[3];
    int64_t n_cols = ip[5], cap = ip[6];
    int64_t count_crossing = 0;
    int64_t g = ++(*gen);
    int64_t row, col, slot;
    double q_row_lo = (query_seg[0] < query_seg[2] ? query_seg[0]
                                                   : query_seg[2]) - TOL;
    double q_row_hi = (query_seg[0] < query_seg[2] ? query_seg[2]
                                                   : query_seg[0]) + TOL;
    double q_col_lo = (query_seg[1] < query_seg[3] ? query_seg[1]
                                                   : query_seg[3]) - TOL;
    double q_col_hi = (query_seg[1] < query_seg[3] ? query_seg[3]
                                                   : query_seg[1]) + TOL;
    for (row = range[0]; row <= range[1]; row++) {
        for (col = range[2]; col <= range[3]; col++) {
            int64_t cell = (row - origin_row) * n_cols + (col - origin_col);
            int64_t count = cell_count[cell];
            for (slot = 0; slot < count; slot++) {
                int64_t other = cell_items[cell * cap + slot];
                if (stamp[other] == g) {
                    continue;
                }
                stamp[other] = g;
                if (cflag[other]) {
                    continue;
                }
                if (self_u == eu[other] || self_u == ev[other]
                    || self_v == eu[other] || self_v == ev[other]) {
                    continue;
                }
                {
                    const double *o = seg + 4 * other;
                    double o_row_lo = o[0] < o[2] ? o[0] : o[2];
                    double o_row_hi = o[0] < o[2] ? o[2] : o[0];
                    double o_col_lo = o[1] < o[3] ? o[1] : o[3];
                    double o_col_hi = o[1] < o[3] ? o[3] : o[1];
                    if (o_row_hi < q_row_lo || o_row_lo > q_row_hi
                        || o_col_hi < q_col_lo || o_col_lo > q_col_hi) {
                        continue;
                    }
                }
                if (segments_cross(query_seg, seg + 4 * other)) {
                    count_crossing += 1;
                    if (cross_adjust) {
                        cross_adjust[other] += delta;
                    }
                }
            }
        }
    }
    return count_crossing;
}

/* Changed-vs-changed crossing block (no bbox pruning, like the Python
 * engines; the block is tiny). */
static int64_t cross_intra(const double *segs, const int64_t *changed,
                           int64_t k, const int64_t *eu, const int64_t *ev) {
    int64_t count_crossing = 0;
    int64_t t, u;
    for (t = 0; t < k; t++) {
        int64_t i = changed[t];
        for (u = t + 1; u < k; u++) {
            int64_t j = changed[u];
            if (eu[i] == eu[j] || eu[i] == ev[j]
                || ev[i] == eu[j] || ev[i] == ev[j]) {
                continue;
            }
            if (segments_cross(segs + 4 * t, segs + 4 * u)) {
                count_crossing += 1;
            }
        }
    }
    return count_crossing;
}

/* Evaluate one move of k edges without mutating any state.
 *
 * Outputs: newrow_out[t] = tree-folded distance row from the new midpoint
 * of changed[t] to every unchanged midpoint (changed columns zeroed);
 * cross_out = {old crossings touching a changed edge, new crossings}.
 * The old count comes from the per-edge crossing cache crossC (maintained
 * by mc_commit): sum over changed edges counts changed-vs-changed pairs
 * twice, so one intra-block count is subtracted back out — exact integer
 * arithmetic, identical to re-scanning the old segments.  The caller
 * assembles the cost delta from these plus R (old rows) and the tiny
 * intra-changed midpoint terms, identically across engines. */
static void eval_move(const int64_t *ip, double bucket, int64_t k,
                      const int64_t *changed, const double *newseg,
                      const double *newmid, const double *seg,
                      const double *mid, const int64_t *eu,
                      const int64_t *ev, const int64_t *crossC,
                      int64_t *cflag,
                      const int64_t *cell_count, const int64_t *cell_items,
                      int64_t *stamp, int64_t *gen, double *scratch,
                      double *newrow_out, int64_t *cross_out) {
    int64_t m = ip[0], pad = ip[1];
    int64_t t, u, j;
    int64_t old_crossings = 0, new_crossings = 0;
    int64_t new_range[4];

    for (t = 0; t < k; t++) {
        cflag[changed[t]] = 1;
        old_crossings += crossC[changed[t]];
    }
    for (t = 0; t < k; t++) {
        int64_t i = changed[t];
        cell_range(newseg + 4 * t, bucket, ip, new_range);
        new_crossings += cross_vs_grid(
            newseg + 4 * t, new_range, eu[i], ev[i], cflag,
            ip, seg, eu, ev, cell_count, cell_items, stamp, gen, 0, 0);
    }
    /* Old intra block reads the current segments of the changed edges. */
    for (t = 0; t < k; t++) {
        int64_t i = changed[t];
        scratch[4 * t] = seg[4 * i];
        scratch[4 * t + 1] = seg[4 * i + 1];
        scratch[4 * t + 2] = seg[4 * i + 2];
        scratch[4 * t + 3] = seg[4 * i + 3];
    }
    old_crossings -= cross_intra(scratch, changed, k, eu, ev);
    new_crossings += cross_intra(newseg, changed, k, eu, ev);
    for (t = 0; t < k; t++) {
        cflag[changed[t]] = 0;
    }
    cross_out[0] = old_crossings;
    cross_out[1] = new_crossings;

    for (t = 0; t < k; t++) {
        double row = newmid[2 * t], col = newmid[2 * t + 1];
        for (j = 0; j < m; j++) {
            scratch[j] = dist2d(row, col, mid[2 * j], mid[2 * j + 1]);
        }
        for (u = 0; u < k; u++) {
            scratch[changed[u]] = 0.0;
        }
        newrow_out[t] = treefold(scratch, m, pad);
    }
}

void mc_eval(const int64_t *ip, double bucket, int64_t k,
             const int64_t *changed, const double *newseg,
             const double *newmid, const double *seg, const double *mid,
             const int64_t *eu, const int64_t *ev,
             const int64_t *crossC, int64_t *cflag,
             const int64_t *cell_count,
             const int64_t *cell_items, int64_t *stamp, int64_t *gen,
             double *scratch, double *newrow_out, int64_t *cross_out) {
    eval_move(ip, bucket, k, changed, newseg, newmid, seg, mid, eu, ev,
              crossC, cflag, cell_count, cell_items, stamp, gen, scratch,
              newrow_out, cross_out);
}

/* Bulk twin of mc_eval: n independent moves against the same committed
 * state, flattened via the prefix offsets koff[n+1] (one library call per
 * annealer sweep chunk). */
void mc_eval_moves(const int64_t *ip, double bucket, int64_t n,
                   const int64_t *koff, const int64_t *changed_flat,
                   const double *newseg_flat, const double *newmid_flat,
                   const double *seg, const double *mid,
                   const int64_t *eu, const int64_t *ev,
                   const int64_t *crossC, int64_t *cflag,
                   const int64_t *cell_count,
                   const int64_t *cell_items, int64_t *stamp, int64_t *gen,
                   double *scratch, double *newrow_flat,
                   int64_t *cross_flat) {
    int64_t v;
    for (v = 0; v < n; v++) {
        int64_t start = koff[v];
        int64_t k = koff[v + 1] - start;
        eval_move(ip, bucket, k, changed_flat + start,
                  newseg_flat + 4 * start, newmid_flat + 2 * start,
                  seg, mid, eu, ev, crossC, cflag, cell_count, cell_items,
                  stamp, gen, scratch, newrow_flat + start,
                  cross_flat + 2 * v);
    }
}

/* ------------------------------------------------------------------ */
/* Committing a move                                                   */
/* ------------------------------------------------------------------ */

/* Fold an evaluated move into the state arrays.  R maintenance runs in a
 * fixed canonical order (elementwise adjust against the old midpoints in
 * ascending changed order, then fresh tree-folded rows for the changed
 * edges) that the Python engines replicate exactly.  Returns -1 when a
 * grid cell overflows cap: seg/mid/R are already updated, and the caller
 * rebuilds the grid from seg with a larger cap. */
int64_t mc_commit(const int64_t *ip, double bucket, int64_t k,
                  const int64_t *changed, const double *newseg,
                  const double *newmid, double *seg, double *mid,
                  double *R, int64_t *cell_count, int64_t *cell_items,
                  int64_t *edge_range, double *scratch,
                  const int64_t *eu, const int64_t *ev,
                  int64_t *stamp, int64_t *gen, int64_t *crossC,
                  int64_t *cflag) {
    int64_t m = ip[0], pad = ip[1];
    int64_t t, u, j;
    int64_t status = 0;
    int64_t new_range[4];

    /* Crossing-cache maintenance, while the grid and seg still hold the
     * old geometry: cancel each changed edge's old crossings with the
     * unchanged edges, add its new ones, and recount the changed-vs-
     * changed pairs from scratch.  Integer arithmetic throughout, so the
     * cache stays exactly equal to a full recount. */
    for (t = 0; t < k; t++) {
        cflag[changed[t]] = 1;
    }
    for (t = 0; t < k; t++) {
        int64_t i = changed[t];
        cross_vs_grid(seg + 4 * i, edge_range + 4 * i, eu[i], ev[i], cflag,
                      ip, seg, eu, ev, cell_count, cell_items, stamp, gen,
                      crossC, -1);
        cell_range(newseg + 4 * t, bucket, ip, new_range);
        crossC[i] = cross_vs_grid(
            newseg + 4 * t, new_range, eu[i], ev[i], cflag,
            ip, seg, eu, ev, cell_count, cell_items, stamp, gen,
            crossC, +1);
    }
    for (t = 0; t < k; t++) {
        int64_t i = changed[t];
        for (u = t + 1; u < k; u++) {
            int64_t other = changed[u];
            if (eu[i] == eu[other] || eu[i] == ev[other]
                || ev[i] == eu[other] || ev[i] == ev[other]) {
                continue;
            }
            if (segments_cross(newseg + 4 * t, newseg + 4 * u)) {
                crossC[i] += 1;
                crossC[other] += 1;
            }
        }
    }
    for (t = 0; t < k; t++) {
        cflag[changed[t]] = 0;
    }

    for (t = 0; t < k; t++) {
        int64_t i = changed[t];
        double new_row = newmid[2 * t], new_col = newmid[2 * t + 1];
        double old_row = mid[2 * i], old_col = mid[2 * i + 1];
        for (j = 0; j < m; j++) {
            double d_new = dist2d(new_row, new_col, mid[2 * j], mid[2 * j + 1]);
            double d_old = dist2d(old_row, old_col, mid[2 * j], mid[2 * j + 1]);
            R[j] += d_new - d_old;
        }
    }
    for (t = 0; t < k; t++) {
        int64_t i = changed[t];
        seg[4 * i] = newseg[4 * t];
        seg[4 * i + 1] = newseg[4 * t + 1];
        seg[4 * i + 2] = newseg[4 * t + 2];
        seg[4 * i + 3] = newseg[4 * t + 3];
        mid[2 * i] = newmid[2 * t];
        mid[2 * i + 1] = newmid[2 * t + 1];
    }
    for (t = 0; t < k; t++) {
        int64_t i = changed[t];
        double row = mid[2 * i], col = mid[2 * i + 1];
        for (j = 0; j < m; j++) {
            scratch[j] = dist2d(row, col, mid[2 * j], mid[2 * j + 1]);
        }
        R[i] = treefold(scratch, m, pad);
    }
    for (t = 0; t < k; t++) {
        int64_t i = changed[t];
        grid_remove(i, edge_range + 4 * i, ip, cell_count, cell_items);
        cell_range(newseg + 4 * t, bucket, ip, edge_range + 4 * i);
        if (status == 0
            && grid_insert(i, edge_range + 4 * i, ip, cell_count,
                           cell_items) != 0) {
            status = -1;
        }
    }
    return status;
}
