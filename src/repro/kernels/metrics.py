"""Loader and ctypes façade for the compiled mapping-metrics kernel.

The C source (``metrics_kernel.c`` beside this module) implements the
hot path of :class:`repro.graphs.metrics.MappingCostTracker`: crossing
and orientation tests against a dense bucket grid, tree-folded
midpoint-distance rows for the spacing metric, and the commit-time
maintenance of the per-edge row-sum cache.  It is built through the
shared :class:`repro.kernels.runtime.KernelLoader` with
``-ffp-contract=off`` (no FMA contraction — the compiled engine must be
bit-identical to the numpy and scalar engines) and ``-fno-math-errno``
(lets the compiler inline ``sqrt`` without an errno branch; results are
still IEEE correctly rounded).

The façade exposes the raw ``ctypes`` entry points; the tracker passes
cached ``ndarray.ctypes.data`` addresses, keeping per-call overhead off
the annealer's per-proposal path.
"""

from __future__ import annotations

import ctypes
import os
from typing import Optional

from .runtime import KernelLoader

_SOURCE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                       "metrics_kernel.c")

#: Compile flags required for bitwise parity with the Python engines (see
#: module docstring); folded into the cache digest by the loader.
BASE_CFLAGS = ("-ffp-contract=off", "-fno-math-errno")

_i64 = ctypes.c_int64
_dbl = ctypes.c_double
_ptr = ctypes.c_void_p


class MetricsKernel:
    """ctypes façade over the compiled library.

    Every method takes raw buffer addresses (``ndarray.ctypes.data``
    integers); the owning tracker caches them once per build.
    """

    def __init__(self, lib: ctypes.CDLL, path: str) -> None:
        self.path = path
        self.grid_build = lib.mc_grid_build
        self.grid_build.restype = _i64
        self.grid_build.argtypes = [_ptr, _ptr, _dbl, _ptr, _ptr, _ptr]
        self.spacing_init = lib.mc_spacing_init
        self.spacing_init.restype = _dbl
        self.spacing_init.argtypes = [_ptr] * 4
        self.count_crossings = lib.mc_count_crossings
        self.count_crossings.restype = _i64
        self.count_crossings.argtypes = [_ptr] * 10
        self.eval = lib.mc_eval
        self.eval.restype = None
        self.eval.argtypes = [_ptr, _dbl, _i64] + [_ptr] * 16
        self.eval_moves = lib.mc_eval_moves
        self.eval_moves.restype = None
        self.eval_moves.argtypes = [_ptr, _dbl, _i64] + [_ptr] * 17
        self.commit = lib.mc_commit
        self.commit.restype = _i64
        self.commit.argtypes = [_ptr, _dbl, _i64] + [_ptr] * 16


_LOADER = KernelLoader(
    _SOURCE, stem="metrics", facade=MetricsKernel, base_cflags=BASE_CFLAGS
)


def load() -> Optional[MetricsKernel]:
    """The loaded kernel, compiling on first call; None when unavailable."""
    return _LOADER.load()


def available() -> bool:
    """Whether the compiled fast path can run in this environment."""
    return _LOADER.available()


def reset() -> None:
    """Forget the cached load attempt (tests toggle REPRO_NO_KERNEL)."""
    _LOADER.reset()
