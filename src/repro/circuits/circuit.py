"""Circuit container and register-aware builder.

A :class:`Circuit` is an ordered list of :class:`~repro.circuits.gates.Gate`
objects over a flat logical-qubit index space, together with named registers
so higher layers (the distillation generators, the mappers and the Scaffold
emitter) can talk about qubits symbolically ("raw_states[3]", "anc[0]",
"out[7]") the way the paper's Fig. 5 listing does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .gates import DEFAULT_DURATIONS, Gate, GateKind


@dataclass(frozen=True)
class QubitRegister:
    """A named, contiguous block of logical qubits.

    Attributes
    ----------
    name:
        Register name, e.g. ``"raw_states"``.
    start:
        Index of the first qubit of the register in the circuit's flat space.
    size:
        Number of qubits in the register.
    """

    name: str
    start: int
    size: int

    def __len__(self) -> int:
        return self.size

    def __getitem__(self, index: int) -> int:
        if isinstance(index, slice):
            return list(range(self.start, self.start + self.size))[index]
        if index < 0:
            index += self.size
        if not 0 <= index < self.size:
            raise IndexError(
                f"register {self.name!r} has {self.size} qubits, "
                f"index {index} is out of range"
            )
        return self.start + index

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.start, self.start + self.size))

    @property
    def qubits(self) -> Tuple[int, ...]:
        """All qubit indices in this register."""
        return tuple(range(self.start, self.start + self.size))


class Circuit:
    """An ordered gate list over named qubit registers.

    The class behaves as a sequence of gates and offers helpers used across
    the toolchain: register allocation, gate appending, qubit renaming and a
    handful of summary statistics (gate counts, T counts, braided-gate
    counts).
    """

    def __init__(self, name: str = "circuit") -> None:
        self.name = name
        self._gates: List[Gate] = []
        self._registers: Dict[str, QubitRegister] = {}
        self._num_qubits = 0

    # ------------------------------------------------------------------
    # Register management
    # ------------------------------------------------------------------
    def add_register(self, name: str, size: int) -> QubitRegister:
        """Allocate ``size`` fresh qubits under ``name`` and return the register."""
        if size <= 0:
            raise ValueError(f"register size must be positive, got {size}")
        if name in self._registers:
            raise ValueError(f"register {name!r} already exists")
        register = QubitRegister(name, self._num_qubits, size)
        self._registers[name] = register
        self._num_qubits += size
        return register

    def register(self, name: str) -> QubitRegister:
        """Look up a register by name."""
        return self._registers[name]

    @property
    def registers(self) -> Dict[str, QubitRegister]:
        """Mapping of register name to :class:`QubitRegister`."""
        return dict(self._registers)

    @property
    def num_qubits(self) -> int:
        """Total number of logical qubits allocated in the circuit."""
        return self._num_qubits

    def qubit_name(self, qubit: int) -> str:
        """Return a symbolic ``register[offset]`` name for a flat qubit index."""
        for register in self._registers.values():
            if register.start <= qubit < register.start + register.size:
                return f"{register.name}[{qubit - register.start}]"
        return f"q[{qubit}]"

    # ------------------------------------------------------------------
    # Gate management
    # ------------------------------------------------------------------
    def append(self, gate: Gate) -> Gate:
        """Append a gate, validating that its qubits exist."""
        for qubit in gate.qubits:
            if not 0 <= qubit < self._num_qubits:
                raise ValueError(
                    f"gate {gate} references qubit {qubit}, but circuit has "
                    f"{self._num_qubits} qubits"
                )
        self._gates.append(gate)
        return gate

    def extend(self, gates: Iterable[Gate]) -> None:
        """Append every gate in ``gates`` in order."""
        for gate in gates:
            self.append(gate)

    @property
    def gates(self) -> Tuple[Gate, ...]:
        """The gate sequence as an immutable tuple."""
        return tuple(self._gates)

    def __len__(self) -> int:
        return len(self._gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._gates)

    def __getitem__(self, index):
        return self._gates[index]

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def gate_counts(self) -> Dict[GateKind, int]:
        """Count gates by kind."""
        counts: Dict[GateKind, int] = {}
        for gate in self._gates:
            counts[gate.kind] = counts.get(gate.kind, 0) + 1
        return counts

    def count(self, kind: GateKind) -> int:
        """Number of gates of a given kind."""
        return sum(1 for gate in self._gates if gate.kind is kind)

    @property
    def t_count(self) -> int:
        """Number of T-type operations (T gates plus injections)."""
        return sum(
            1
            for gate in self._gates
            if gate.kind in (GateKind.T, GateKind.INJECT_T, GateKind.INJECT_TDAG)
        )

    @property
    def braided_gate_count(self) -> int:
        """Number of gates that occupy routing channels on the mesh."""
        return sum(1 for gate in self._gates if gate.is_braided)

    def total_duration(self, durations: Optional[dict] = None) -> int:
        """Sum of all gate durations (a serial-execution upper bound)."""
        table = durations if durations is not None else DEFAULT_DURATIONS
        return sum(gate.duration(table) for gate in self._gates)

    def used_qubits(self) -> Tuple[int, ...]:
        """Sorted tuple of qubits touched by at least one gate."""
        used = set()
        for gate in self._gates:
            used.update(gate.qubits)
        return tuple(sorted(used))

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def remap_qubits(
        self, mapping: Dict[int, int], name: Optional[str] = None
    ) -> "Circuit":
        """Return a new circuit with qubit indices renamed through ``mapping``.

        The new circuit has a single anonymous register spanning the largest
        qubit index referenced after renaming.  This is the primitive used by
        the qubit-renaming (no-reuse) scheduling policy of Section V-B.
        """
        new_circuit = Circuit(name or f"{self.name}_remapped")
        max_index = -1
        for gate in self._gates:
            for qubit in gate.qubits:
                max_index = max(max_index, mapping.get(qubit, qubit))
        if max_index >= 0:
            new_circuit.add_register("q", max_index + 1)
        for gate in self._gates:
            new_circuit.append(gate.remap(mapping))
        return new_circuit

    def subcircuit(
        self, indices: Sequence[int], name: Optional[str] = None
    ) -> "Circuit":
        """Return a circuit of the gates at ``indices`` (same qubit space)."""
        new_circuit = Circuit(name or f"{self.name}_slice")
        if self._num_qubits:
            new_circuit.add_register("q", self._num_qubits)
        for index in indices:
            new_circuit.append(self._gates[index])
        return new_circuit

    def with_gates(
        self, gates: Sequence[Gate], name: Optional[str] = None
    ) -> "Circuit":
        """Return a circuit over the same registers but a different gate list."""
        new_circuit = Circuit(name or self.name)
        new_circuit._registers = dict(self._registers)
        new_circuit._num_qubits = self._num_qubits
        for gate in gates:
            new_circuit.append(gate)
        return new_circuit

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Circuit(name={self.name!r}, qubits={self._num_qubits}, "
            f"gates={len(self._gates)})"
        )


def concatenate(circuits: Sequence[Circuit], name: str = "concatenated") -> Circuit:
    """Concatenate circuits over disjoint qubit spaces into one circuit.

    Each input circuit's qubits are offset so the result uses a single flat
    index space.  Register names are prefixed with the circuit index to stay
    unique.  Returns the combined circuit together with the per-circuit qubit
    offsets via the ``offsets`` attribute on the result.
    """
    combined = Circuit(name)
    offsets: List[int] = []
    for index, circuit in enumerate(circuits):
        offset = combined.num_qubits
        offsets.append(offset)
        for register in circuit.registers.values():
            combined.add_register(f"c{index}_{register.name}", register.size)
        mapping = {q: q + offset for q in range(circuit.num_qubits)}
        for gate in circuit:
            combined.append(gate.remap(mapping))
    combined.offsets = offsets  # type: ignore[attr-defined]
    return combined
