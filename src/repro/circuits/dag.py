"""Dependency analysis for gate sequences.

The simulator described in Section VIII-A of the paper treats *any* data
hazard — the presence of the same qubit in two instructions — as a true
dependency.  This module builds that dependency DAG, computes ASAP levels and
the critical path, and provides the theoretical lower bound on circuit
latency used for the "Critical" rows of Table I and the lower-bound curves of
Fig. 7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .circuit import Circuit
from .gates import DEFAULT_DURATIONS, Gate


@dataclass
class DependencyDag:
    """The gate dependency DAG of a circuit.

    Nodes are gate indices into the originating gate sequence.  An edge
    ``(i, j)`` means gate ``j`` must wait for gate ``i`` because they share a
    qubit (or because a barrier separates them).
    """

    gates: Tuple[Gate, ...]
    predecessors: Tuple[Tuple[int, ...], ...]
    successors: Tuple[Tuple[int, ...], ...]

    def __len__(self) -> int:
        return len(self.gates)

    def roots(self) -> List[int]:
        """Gate indices with no predecessors."""
        return [i for i, preds in enumerate(self.predecessors) if not preds]

    def leaves(self) -> List[int]:
        """Gate indices with no successors."""
        return [i for i, succs in enumerate(self.successors) if not succs]

    def topological_order(self) -> List[int]:
        """Return gate indices in a topological order (original order works)."""
        return list(range(len(self.gates)))


def build_dependency_dag(gates: Sequence[Gate]) -> DependencyDag:
    """Build the dependency DAG under the "shared qubit = dependency" rule.

    Barriers depend on every gate issued so far and every later gate depends
    on the most recent barrier, regardless of which qubits the barrier names
    (the simulator implements barriers as machine-wide multi-target CNOTs).
    """
    n = len(gates)
    predecessors: List[Set[int]] = [set() for _ in range(n)]
    successors: List[Set[int]] = [set() for _ in range(n)]

    last_writer: Dict[int, int] = {}
    last_barrier: Optional[int] = None
    since_barrier: List[int] = []

    for index, gate in enumerate(gates):
        if gate.is_barrier:
            # Barrier waits for everything issued since the previous barrier.
            for previous in since_barrier:
                predecessors[index].add(previous)
                successors[previous].add(index)
            if last_barrier is not None:
                predecessors[index].add(last_barrier)
                successors[last_barrier].add(index)
            last_barrier = index
            since_barrier = []
            last_writer = {}
            continue

        if last_barrier is not None:
            predecessors[index].add(last_barrier)
            successors[last_barrier].add(index)
        for qubit in gate.qubits:
            previous = last_writer.get(qubit)
            if previous is not None and previous != index:
                predecessors[index].add(previous)
                successors[previous].add(index)
        for qubit in gate.qubits:
            last_writer[qubit] = index
        since_barrier.append(index)

    return DependencyDag(
        gates=tuple(gates),
        predecessors=tuple(tuple(sorted(p)) for p in predecessors),
        successors=tuple(tuple(sorted(s)) for s in successors),
    )


def asap_levels(dag: DependencyDag) -> List[int]:
    """ASAP level (0-based) of each gate, ignoring gate durations."""
    levels = [0] * len(dag)
    for index in dag.topological_order():
        preds = dag.predecessors[index]
        if preds:
            levels[index] = 1 + max(levels[p] for p in preds)
    return levels


def asap_start_times(
    dag: DependencyDag, durations: Optional[dict] = None
) -> List[int]:
    """ASAP start time (in cycles) of each gate, honouring gate durations."""
    table = durations if durations is not None else DEFAULT_DURATIONS
    starts = [0] * len(dag)
    for index in dag.topological_order():
        preds = dag.predecessors[index]
        if preds:
            starts[index] = max(
                starts[p] + dag.gates[p].duration(table) for p in preds
            )
    return starts


def critical_path_length(
    circuit_or_gates, durations: Optional[dict] = None
) -> int:
    """Critical-path latency (cycles) of a circuit, ignoring congestion.

    This is the theoretical lower bound on execution latency used for the
    "Theoretical Lower Bound" curves of Fig. 7 and the "Critical" row of
    Table I: no mapping can execute the circuit faster because the bound only
    reflects true data dependencies.
    """
    gates = (
        circuit_or_gates.gates
        if isinstance(circuit_or_gates, Circuit)
        else tuple(circuit_or_gates)
    )
    if not gates:
        return 0
    table = durations if durations is not None else DEFAULT_DURATIONS
    dag = build_dependency_dag(gates)
    starts = asap_start_times(dag, table)
    return max(
        start + gate.duration(table) for start, gate in zip(starts, dag.gates)
    )


def dependency_depth(circuit_or_gates) -> int:
    """Number of dependency levels (unit-duration critical path)."""
    gates = (
        circuit_or_gates.gates
        if isinstance(circuit_or_gates, Circuit)
        else tuple(circuit_or_gates)
    )
    if not gates:
        return 0
    dag = build_dependency_dag(gates)
    return 1 + max(asap_levels(dag))


def level_partition(dag: DependencyDag) -> List[List[int]]:
    """Group gate indices by ASAP level (used for per-timestep analyses)."""
    levels = asap_levels(dag)
    if not levels:
        return []
    buckets: List[List[int]] = [[] for _ in range(max(levels) + 1)]
    for index, level in enumerate(levels):
        buckets[level].append(index)
    return buckets
