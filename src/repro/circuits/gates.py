"""Gate-level intermediate representation for surface-code circuits.

The paper's workloads (Bravyi-Haah distillation modules and multi-level block
code factories, Fig. 5 of the paper) are expressed with a small gate set:

* single-qubit Clifford preparation and measurement gates (``H``, ``PREP``,
  ``MEAS_X``, ``MEAS_Z``),
* two-qubit ``CNOT`` gates realised as surface-code braids,
* a single-control multi-target ``CXX`` gate (used both inside the
  Bravyi-Haah module and to implement scheduling barriers, Section V-A),
* magic-state injection operations ``INJECT_T`` / ``INJECT_TDAG`` which are
  realised as a small number of CNOT braids in expectation (Section II-E),
* an explicit ``BARRIER`` pseudo-gate, which the simulator treats as a
  multi-target CNOT touching every qubit of the machine (Section VIII-A).

Each gate records the logical qubits it touches.  Braided gates (``CNOT``,
``CXX`` and the injections) are the only ones that occupy routing channels in
the network simulator; the rest are local to a tile.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Optional, Tuple


class GateKind(enum.Enum):
    """Enumeration of the gate types used by the distillation workloads."""

    PREP = "prep"
    H = "h"
    X = "x"
    Z = "z"
    S = "s"
    T = "t"
    CNOT = "cnot"
    CXX = "cxx"
    INJECT_T = "inject_t"
    INJECT_TDAG = "inject_tdag"
    MEAS_X = "meas_x"
    MEAS_Z = "meas_z"
    BARRIER = "barrier"

    @property
    def is_braided(self) -> bool:
        """Whether the gate occupies routing channels on the mesh."""
        return self in _BRAIDED_KINDS

    @property
    def is_measurement(self) -> bool:
        """Whether the gate measures (and therefore frees) its qubits."""
        return self in (GateKind.MEAS_X, GateKind.MEAS_Z)

    @property
    def is_single_qubit(self) -> bool:
        """Whether the gate acts on exactly one qubit."""
        return self in _SINGLE_QUBIT_KINDS


_BRAIDED_KINDS = frozenset(
    {GateKind.CNOT, GateKind.CXX, GateKind.INJECT_T, GateKind.INJECT_TDAG}
)
_SINGLE_QUBIT_KINDS = frozenset(
    {
        GateKind.PREP,
        GateKind.H,
        GateKind.X,
        GateKind.Z,
        GateKind.S,
        GateKind.T,
        GateKind.MEAS_X,
        GateKind.MEAS_Z,
    }
)

#: Default gate durations in logical surface-code cycles.  Values follow the
#: conventions of Fowler et al. [19] / Javadi-Abhari et al. [1]: a braided
#: CNOT occupies its path for two logical cycles (extend + contract), a
#: magic-state injection costs two CNOT braids in expectation (Section II-E),
#: single-qubit Cliffords and measurements take one cycle each.
DEFAULT_DURATIONS = {
    GateKind.PREP: 1,
    GateKind.H: 1,
    GateKind.X: 1,
    GateKind.Z: 1,
    GateKind.S: 1,
    GateKind.T: 1,
    GateKind.CNOT: 2,
    GateKind.CXX: 2,
    GateKind.INJECT_T: 4,
    GateKind.INJECT_TDAG: 4,
    GateKind.MEAS_X: 1,
    GateKind.MEAS_Z: 1,
    GateKind.BARRIER: 1,
}


@dataclass(frozen=True)
class Gate:
    """A single gate instance on explicit logical qubit indices.

    Attributes
    ----------
    kind:
        The :class:`GateKind` of the operation.
    qubits:
        The logical qubits touched by the gate.  For controlled gates the
        first qubit is the control and the remaining qubits are targets.
    tag:
        Optional free-form label used to track provenance (e.g. which
        distillation round and module the gate belongs to).
    """

    kind: GateKind
    qubits: Tuple[int, ...]
    tag: Optional[str] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not self.qubits and self.kind is not GateKind.BARRIER:
            raise ValueError(f"gate {self.kind} must act on at least one qubit")
        if len(set(self.qubits)) != len(self.qubits):
            raise ValueError(f"gate {self.kind} has duplicate qubits: {self.qubits}")
        if self.kind.is_single_qubit and len(self.qubits) != 1:
            raise ValueError(
                f"{self.kind.value} acts on one qubit, got {len(self.qubits)}"
            )
        if self.kind in (GateKind.CNOT, GateKind.INJECT_T, GateKind.INJECT_TDAG):
            if len(self.qubits) != 2:
                raise ValueError(
                    f"{self.kind.value} acts on two qubits, got {len(self.qubits)}"
                )
        if self.kind is GateKind.CXX and len(self.qubits) < 2:
            raise ValueError("cxx needs a control and at least one target")

    @property
    def control(self) -> Optional[int]:
        """The control qubit for controlled gates, ``None`` otherwise."""
        if self.kind in (GateKind.CNOT, GateKind.CXX):
            return self.qubits[0]
        if self.kind in (GateKind.INJECT_T, GateKind.INJECT_TDAG):
            # Injection consumes the raw state (first operand) into the target.
            return self.qubits[0]
        return None

    @property
    def targets(self) -> Tuple[int, ...]:
        """The target qubits for controlled gates, all qubits otherwise."""
        if self.control is None:
            return self.qubits
        return self.qubits[1:]

    @property
    def is_braided(self) -> bool:
        """Whether this gate needs a braid (routing path) on the mesh."""
        return self.kind.is_braided

    @property
    def is_barrier(self) -> bool:
        """Whether this gate is a scheduling barrier."""
        return self.kind is GateKind.BARRIER

    def duration(self, durations: Optional[dict] = None) -> int:
        """Return the gate duration in logical cycles.

        Parameters
        ----------
        durations:
            Optional mapping from :class:`GateKind` to cycle counts; defaults
            to :data:`DEFAULT_DURATIONS`.
        """
        table = durations if durations is not None else DEFAULT_DURATIONS
        return table[self.kind]

    def interaction_pairs(self) -> Iterable[Tuple[int, int]]:
        """Yield the two-qubit interaction pairs induced by this gate.

        Two-qubit gates yield a single pair.  Multi-target CXX gates yield one
        pair per (control, target) combination, matching how the paper's
        interaction graphs are drawn (Fig. 4).  Single-qubit gates and
        barriers yield nothing.
        """
        if self.kind is GateKind.CNOT or self.kind in (
            GateKind.INJECT_T,
            GateKind.INJECT_TDAG,
        ):
            yield (self.qubits[0], self.qubits[1])
        elif self.kind is GateKind.CXX:
            control = self.qubits[0]
            for target in self.qubits[1:]:
                yield (control, target)

    def remap(self, mapping: dict) -> "Gate":
        """Return a copy of this gate with qubits renamed through ``mapping``.

        Qubits absent from ``mapping`` keep their original index.
        """
        new_qubits = tuple(mapping.get(q, q) for q in self.qubits)
        return Gate(self.kind, new_qubits, self.tag)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        operands = ", ".join(str(q) for q in self.qubits)
        return f"{self.kind.value}({operands})"


def prep(qubit: int, tag: Optional[str] = None) -> Gate:
    """Prepare ``qubit`` in the logical |0> state."""
    return Gate(GateKind.PREP, (qubit,), tag)


def h(qubit: int, tag: Optional[str] = None) -> Gate:
    """Hadamard on ``qubit``."""
    return Gate(GateKind.H, (qubit,), tag)


def cnot(control: int, target: int, tag: Optional[str] = None) -> Gate:
    """Braided CNOT from ``control`` to ``target``."""
    return Gate(GateKind.CNOT, (control, target), tag)


def cxx(control: int, targets: Iterable[int], tag: Optional[str] = None) -> Gate:
    """Single-control multi-target CNOT (``CXX`` in the Scaffold listing)."""
    return Gate(GateKind.CXX, (control, *targets), tag)


def inject_t(raw_state: int, target: int, tag: Optional[str] = None) -> Gate:
    """Probabilistic T-state injection of ``raw_state`` into ``target``."""
    return Gate(GateKind.INJECT_T, (raw_state, target), tag)


def inject_tdag(raw_state: int, target: int, tag: Optional[str] = None) -> Gate:
    """Probabilistic T-dagger-state injection of ``raw_state`` into ``target``."""
    return Gate(GateKind.INJECT_TDAG, (raw_state, target), tag)


def meas_x(qubit: int, tag: Optional[str] = None) -> Gate:
    """X-basis measurement of ``qubit``."""
    return Gate(GateKind.MEAS_X, (qubit,), tag)


def meas_z(qubit: int, tag: Optional[str] = None) -> Gate:
    """Z-basis measurement of ``qubit``."""
    return Gate(GateKind.MEAS_Z, (qubit,), tag)


def barrier(qubits: Iterable[int] = (), tag: Optional[str] = None) -> Gate:
    """A scheduling barrier over ``qubits`` (empty means machine-wide)."""
    return Gate(GateKind.BARRIER, tuple(qubits), tag)
