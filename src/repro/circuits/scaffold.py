"""Scaffold-style text emission and a minimal flat-assembly parser.

The paper expresses its workloads in the Scaffold language (Fig. 5) and
compiles them to gate-level instructions.  This module provides the two ends
of that pipeline for the reproduced toolchain:

* :func:`emit_scaffold` renders a :class:`~repro.circuits.circuit.Circuit`
  into a Scaffold-flavoured flat listing (one gate per line, register-indexed
  operands) so generated factories can be inspected and diffed against the
  listings in the paper.
* :func:`parse_flat_assembly` parses that same flat format back into a
  circuit, which gives the test-suite a round-trip invariant and lets users
  feed externally generated gate streams into the mapper/simulator stack.
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

from .circuit import Circuit
from .gates import Gate, GateKind

#: Gate mnemonics used in the flat listing, matching Fig. 5 where possible.
_KIND_TO_MNEMONIC = {
    GateKind.PREP: "PrepZ",
    GateKind.H: "H",
    GateKind.X: "X",
    GateKind.Z: "Z",
    GateKind.S: "S",
    GateKind.T: "T",
    GateKind.CNOT: "CNOT",
    GateKind.CXX: "CXX",
    GateKind.INJECT_T: "injectT",
    GateKind.INJECT_TDAG: "injectTdag",
    GateKind.MEAS_X: "MeasX",
    GateKind.MEAS_Z: "MeasZ",
    GateKind.BARRIER: "Barrier",
}

_MNEMONIC_TO_KIND = {
    mnemonic.lower(): kind for kind, mnemonic in _KIND_TO_MNEMONIC.items()
}

_LINE_PATTERN = re.compile(
    r"^\s*(?P<mnemonic>[A-Za-z_][A-Za-z0-9_]*)"
    r"\s*\(\s*(?P<operands>[^)]*)\)\s*;?\s*(?:$|//)"
)
_OPERAND_PATTERN = re.compile(
    r"^(?P<register>[A-Za-z_][A-Za-z0-9_]*)\s*\[\s*(?P<index>\d+)\s*\]$|^(?P<flat>\d+)$"
)


def emit_scaffold(circuit: Circuit, include_header: bool = True) -> str:
    """Render ``circuit`` as a Scaffold-flavoured flat listing.

    The output declares every register with a ``qbit name[size];`` line and
    then lists one gate per line with symbolic operands, e.g.::

        qbit raw_states[32];
        qbit out[8];
        qbit anc[13];
        H ( anc[0] );
        CNOT ( anc[1] , anc[3] );
    """
    lines: List[str] = []
    if include_header:
        lines.append(f"// circuit: {circuit.name}")
        lines.append(f"// qubits: {circuit.num_qubits}, gates: {len(circuit)}")
    for register in circuit.registers.values():
        lines.append(f"qbit {register.name}[{register.size}];")
    for gate in circuit:
        mnemonic = _KIND_TO_MNEMONIC[gate.kind]
        operands = " , ".join(circuit.qubit_name(q) for q in gate.qubits)
        comment = f"  // {gate.tag}" if gate.tag else ""
        lines.append(f"{mnemonic} ( {operands} );{comment}")
    return "\n".join(lines) + "\n"


def _parse_operand(
    token: str, registers: Dict[str, Tuple[int, int]]
) -> int:
    """Resolve a ``register[i]`` or flat-integer operand to a qubit index."""
    match = _OPERAND_PATTERN.match(token.strip())
    if match is None:
        raise ValueError(f"cannot parse operand {token!r}")
    if match.group("flat") is not None:
        return int(match.group("flat"))
    register = match.group("register")
    index = int(match.group("index"))
    if register not in registers:
        raise ValueError(f"unknown register {register!r} in operand {token!r}")
    start, size = registers[register]
    if index >= size:
        raise ValueError(
            f"operand {token!r} indexes past register size {size}"
        )
    return start + index


def parse_flat_assembly(text: str, name: str = "parsed") -> Circuit:
    """Parse a flat Scaffold-style listing back into a :class:`Circuit`.

    Supports the subset emitted by :func:`emit_scaffold`: ``qbit`` register
    declarations, the gate mnemonics of Fig. 5, ``//`` comments and blank
    lines.  Raises :class:`ValueError` on anything else.
    """
    circuit = Circuit(name)
    registers: Dict[str, Tuple[int, int]] = {}

    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("//"):
            continue
        if line.startswith("qbit"):
            decl = re.match(
                r"^qbit\s+([A-Za-z_][A-Za-z0-9_]*)\s*\[\s*(\d+)\s*\]\s*;", line
            )
            if decl is None:
                raise ValueError(f"cannot parse register declaration {line!r}")
            reg_name, size = decl.group(1), int(decl.group(2))
            register = circuit.add_register(reg_name, size)
            registers[reg_name] = (register.start, register.size)
            continue
        match = _LINE_PATTERN.match(line)
        if match is None:
            raise ValueError(f"cannot parse line {line!r}")
        mnemonic = match.group("mnemonic").lower()
        if mnemonic not in _MNEMONIC_TO_KIND:
            raise ValueError(f"unknown gate mnemonic {match.group('mnemonic')!r}")
        kind = _MNEMONIC_TO_KIND[mnemonic]
        operand_text = match.group("operands").strip()
        operands: Tuple[int, ...]
        if operand_text:
            operands = tuple(
                _parse_operand(token, registers)
                for token in operand_text.split(",")
            )
        else:
            operands = ()
        circuit.append(Gate(kind, operands))
    return circuit


def roundtrip(circuit: Circuit) -> Circuit:
    """Emit and re-parse a circuit (used by tests as an invariant check)."""
    return parse_flat_assembly(emit_scaffold(circuit), name=circuit.name)
