"""Quantum-circuit intermediate representation used by the toolchain."""

from .circuit import Circuit, QubitRegister, concatenate
from .dag import (
    DependencyDag,
    asap_levels,
    asap_start_times,
    build_dependency_dag,
    critical_path_length,
    dependency_depth,
    level_partition,
)
from .gates import (
    DEFAULT_DURATIONS,
    Gate,
    GateKind,
    barrier,
    cnot,
    cxx,
    h,
    inject_t,
    inject_tdag,
    meas_x,
    meas_z,
    prep,
)
from .scaffold import emit_scaffold, parse_flat_assembly, roundtrip

__all__ = [
    "Circuit",
    "QubitRegister",
    "concatenate",
    "DependencyDag",
    "asap_levels",
    "asap_start_times",
    "build_dependency_dag",
    "critical_path_length",
    "dependency_depth",
    "level_partition",
    "DEFAULT_DURATIONS",
    "Gate",
    "GateKind",
    "barrier",
    "cnot",
    "cxx",
    "h",
    "inject_t",
    "inject_tdag",
    "meas_x",
    "meas_z",
    "prep",
    "emit_scaffold",
    "parse_flat_assembly",
    "roundtrip",
]
