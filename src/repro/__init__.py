"""repro — reproduction of "Magic-State Functional Units" (MICRO 2018).

A toolchain for building, scheduling, mapping and simulating multi-level
Bravyi-Haah magic-state distillation factories on surface-code architectures,
reproducing the optimisation techniques and evaluation of Ding et al.,
"Magic-State Functional Units: Mapping and Scheduling Multi-Level Distillation
Circuits for Fault-Tolerant Quantum Architectures", MICRO 2018.

The most common entry points:

* :func:`repro.distillation.build_single_level_factory` /
  :func:`repro.distillation.build_two_level_factory` — generate factory
  circuits;
* :mod:`repro.mapping` — the mapping algorithms (linear baseline,
  force-directed annealing, graph partitioning, hierarchical stitching);
* :func:`repro.routing.simulate` — the cycle-accurate braid simulator;
* :func:`repro.analysis.evaluate_factory_mapping` — one-call
  build/map/simulate evaluation;
* :mod:`repro.experiments` — one module per paper figure/table.
"""

from . import analysis, circuits, distillation, graphs, mapping, routing, scheduling

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "circuits",
    "distillation",
    "graphs",
    "mapping",
    "routing",
    "scheduling",
    "__version__",
]
