"""repro — reproduction of "Magic-State Functional Units" (MICRO 2018).

A toolchain for building, scheduling, mapping and simulating multi-level
Bravyi-Haah magic-state distillation factories on surface-code architectures,
reproducing the optimisation techniques and evaluation of Ding et al.,
"Magic-State Functional Units: Mapping and Scheduling Multi-Level Distillation
Circuits for Fault-Tolerant Quantum Architectures", MICRO 2018.

The public API is organised around three pluggable abstractions in
:mod:`repro.api`:

* **Mappers** — named qubit-mapping procedures in a registry.  The five
  procedures of the paper (``random``, ``linear``, ``force_directed``,
  ``graph_partition``, ``hierarchical_stitching``) are pre-registered;
  third-party procedures join them with
  :func:`repro.api.register_mapper` and immediately work in every sweep,
  figure and CLI run.
* **The pipeline** — :class:`repro.api.Pipeline` evaluates an
  :class:`repro.api.EvaluationRequest` end to end
  (build -> map -> simulate), caching built factory circuits so a sweep
  over many mappers constructs each ``(capacity, levels, reuse)``
  configuration exactly once.  Results are
  :class:`repro.api.FactoryEvaluation` dataclasses with
  ``to_dict``/``from_dict`` JSON round-tripping.
* **Experiments** — the paper's figures and tables register declaratively
  via :func:`repro.api.register_experiment` with typed parameter specs;
  the ``repro-msfu`` command line generates its options from those specs
  and emits machine-readable output with ``--json``.
* **Sweep execution** — :class:`repro.api.SweepPlan` expands a parameter
  grid into independent requests and :class:`repro.api.SweepExecutor`
  schedules them serially or across worker processes with deterministic,
  byte-identical results; simulations are memoized
  (:class:`repro.routing.SimulationCache`) so repeated sweep points never
  re-simulate, and ``repro-msfu bench`` records the performance trajectory
  as ``BENCH_*.json``.

A custom mapper end to end::

    from repro.api import Mapper, Pipeline, EvaluationRequest, register_mapper
    from repro.mapping import random_circuit_placement

    @register_mapper
    class JitterMapper(Mapper):
        name = "jitter"

        def place(self, factory, *, seed=0, context=None):
            return random_circuit_placement(factory.circuit, seed=seed + 1)

    point = Pipeline().evaluate(EvaluationRequest(method="jitter", capacity=4))
    print(point.to_dict())

The underlying layers remain importable directly:
:mod:`repro.distillation` (factory construction and error model),
:mod:`repro.circuits` / :mod:`repro.scheduling` (circuits, DAGs, bounds),
:mod:`repro.graphs` (interaction graphs and mapping metrics),
:mod:`repro.mapping` (the mapping algorithms themselves),
:mod:`repro.routing` (the cycle-accurate braid simulator), and
:mod:`repro.experiments` (one module per paper artifact).
"""

from . import (
    analysis,
    api,
    circuits,
    distillation,
    graphs,
    mapping,
    routing,
    scheduling,
)

__version__ = "1.6.0"

__all__ = [
    "analysis",
    "api",
    "circuits",
    "distillation",
    "graphs",
    "mapping",
    "routing",
    "scheduling",
    "__version__",
]
