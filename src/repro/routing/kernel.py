"""Runtime-compiled C kernel for the batched simulator (optional).

:mod:`repro.routing.batchsim` vectorizes a group of same-circuit sweep
points with numpy; this module supplies its compiled fast path.  The
compile/cache/load machinery — host-compiler discovery, source-hash +
``REPRO_KERNEL_CFLAGS`` cache digest, on-disk ``.so`` cache, the
``REPRO_NO_KERNEL`` opt-out — lives in the shared
:class:`repro.kernels.runtime.KernelLoader`; this module keeps the
batchsim-specific ctypes facade and the historical public API
(:func:`load` / :func:`available` / :func:`reset`).
"""
from __future__ import annotations

import ctypes
import os
from typing import Optional

from ..kernels.runtime import KernelLoader

_SOURCE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                       "batchsim_kernel.c")

#: Number of int64 counter slots written by ``simulate_point`` (must match
#: the ``C_*`` enum in batchsim_kernel.c).
COUNTER_SLOTS = 9

#: ``simulate_point`` return codes.
OK = 0
MAX_CYCLES_EXCEEDED = 1
DEADLOCK = 2


class Kernel:
    """ctypes façade over the compiled library."""

    def __init__(self, lib: ctypes.CDLL, path: str) -> None:
        self.path = path
        self._build = lib.build_pair_plan
        self._build.restype = ctypes.c_int64
        self._build.argtypes = [ctypes.c_int64] * 8 + [ctypes.c_void_p] * 3
        self._build_bulk = lib.build_pair_plans
        self._build_bulk.restype = None
        self._build_bulk.argtypes = (
            [ctypes.c_void_p] + [ctypes.c_int64] * 5 + [ctypes.c_void_p] * 4
        )
        self._simulate = lib.simulate_point
        self._simulate.restype = ctypes.c_int64
        self._simulate.argtypes = (
            [ctypes.c_int64, ctypes.c_void_p, ctypes.c_void_p,
             ctypes.c_void_p, ctypes.c_void_p, ctypes.c_int64]
            + [ctypes.c_void_p] * 10
            + [ctypes.c_int64] * 3
            + [ctypes.c_void_p] * 4
        )

    def build_pair_plan(self, sr, sc, tr, tc, max_row, max_col,
                        height, width, rows_out, poff_out, pmask_out) -> int:
        return self._build(
            sr, sc, tr, tc, max_row, max_col, height, width,
            rows_out.ctypes.data, poff_out.ctypes.data, pmask_out.ctypes.data,
        )

    def build_pair_plans(self, pairs, m, max_row, max_col, height, width,
                         rows_out, poff_out, pmask_out, kept_out) -> None:
        """Bulk twin of :meth:`build_pair_plan`: m pairs, one library call."""
        self._build_bulk(
            pairs.ctypes.data, m, max_row, max_col, height, width,
            rows_out.ctypes.data, poff_out.ctypes.data, pmask_out.ctypes.data,
            kept_out.ctypes.data,
        )

    def simulate_point(self, n, kind, dur, block, count, max_legs,
                       star_start, star_count, star_ctrl,
                       succ_flat, succ_off, pred_count,
                       matrix, probe_off, probe_mask, pops,
                       span, height, max_cycles,
                       gate_start, gate_end, ready_time, counters) -> int:
        return self._simulate(
            n, kind.ctypes.data, dur.ctypes.data,
            block.ctypes.data, count.ctypes.data, max_legs,
            star_start.ctypes.data, star_count.ctypes.data,
            star_ctrl.ctypes.data,
            succ_flat.ctypes.data, succ_off.ctypes.data,
            pred_count.ctypes.data,
            matrix.ctypes.data, probe_off.ctypes.data,
            probe_mask.ctypes.data, pops.ctypes.data,
            span, height, max_cycles,
            gate_start.ctypes.data, gate_end.ctypes.data,
            ready_time.ctypes.data, counters.ctypes.data,
        )


_LOADER = KernelLoader(_SOURCE, stem="batchsim", facade=Kernel)


def load() -> Optional[Kernel]:
    """The loaded kernel, compiling on first call; None when unavailable."""
    return _LOADER.load()


def available() -> bool:
    """Whether the compiled fast path can run in this environment."""
    return _LOADER.available()


def reset() -> None:
    """Forget the cached load attempt (tests toggle REPRO_NO_KERNEL)."""
    _LOADER.reset()
