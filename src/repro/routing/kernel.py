"""Runtime-compiled C kernel for the batched simulator (optional).

:mod:`repro.routing.batchsim` vectorizes a group of same-circuit sweep
points with numpy; this module supplies its compiled fast path.  On
first use the C source next to this file is built with the host C
compiler into a shared library and loaded via :mod:`ctypes`.  The
library is cached keyed by a hash of the source text, so recompilation
only happens when the kernel changes.

Everything degrades gracefully: no compiler, no writable cache
directory, or a failed compile simply reports the kernel as unavailable
and callers stay on the pure-Python engines.  Setting
``REPRO_NO_KERNEL=1`` disables the kernel outright (used by tests to
pin the Python paths); ``REPRO_KERNEL_CACHE`` overrides the cache
directory (default: ``_kernel_cache/`` beside the source, falling back
to a per-user temp directory when that is not writable);
``REPRO_KERNEL_CFLAGS`` appends extra compiler flags — CI uses it to
build the kernel under ``-Wall -Wextra -Werror`` and the ASan/UBSan
sanitizers.  The extra flags are folded into the cache key, so a
sanitized build never reuses (or poisons) the plain cached library.
"""
from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import threading
from typing import Optional

_SOURCE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                       "batchsim_kernel.c")

#: Number of int64 counter slots written by ``simulate_point`` (must match
#: the ``C_*`` enum in batchsim_kernel.c).
COUNTER_SLOTS = 9

#: ``simulate_point`` return codes.
OK = 0
MAX_CYCLES_EXCEEDED = 1
DEADLOCK = 2

_lock = threading.Lock()
_cached: Optional["Kernel"] = None
_tried = False


class Kernel:
    """ctypes façade over the compiled library."""

    def __init__(self, lib: ctypes.CDLL, path: str) -> None:
        self.path = path
        self._build = lib.build_pair_plan
        self._build.restype = ctypes.c_int64
        self._build.argtypes = [ctypes.c_int64] * 8 + [ctypes.c_void_p] * 3
        self._build_bulk = lib.build_pair_plans
        self._build_bulk.restype = None
        self._build_bulk.argtypes = (
            [ctypes.c_void_p] + [ctypes.c_int64] * 5 + [ctypes.c_void_p] * 4
        )
        self._simulate = lib.simulate_point
        self._simulate.restype = ctypes.c_int64
        self._simulate.argtypes = (
            [ctypes.c_int64, ctypes.c_void_p, ctypes.c_void_p,
             ctypes.c_void_p, ctypes.c_void_p, ctypes.c_int64]
            + [ctypes.c_void_p] * 10
            + [ctypes.c_int64] * 3
            + [ctypes.c_void_p] * 4
        )

    def build_pair_plan(self, sr, sc, tr, tc, max_row, max_col,
                        height, width, rows_out, poff_out, pmask_out) -> int:
        return self._build(
            sr, sc, tr, tc, max_row, max_col, height, width,
            rows_out.ctypes.data, poff_out.ctypes.data, pmask_out.ctypes.data,
        )

    def build_pair_plans(self, pairs, m, max_row, max_col, height, width,
                         rows_out, poff_out, pmask_out, kept_out) -> None:
        """Bulk twin of :meth:`build_pair_plan`: m pairs, one library call."""
        self._build_bulk(
            pairs.ctypes.data, m, max_row, max_col, height, width,
            rows_out.ctypes.data, poff_out.ctypes.data, pmask_out.ctypes.data,
            kept_out.ctypes.data,
        )

    def simulate_point(self, n, kind, dur, block, count, max_legs,
                       star_start, star_count, star_ctrl,
                       succ_flat, succ_off, pred_count,
                       matrix, probe_off, probe_mask, pops,
                       span, height, max_cycles,
                       gate_start, gate_end, ready_time, counters) -> int:
        return self._simulate(
            n, kind.ctypes.data, dur.ctypes.data,
            block.ctypes.data, count.ctypes.data, max_legs,
            star_start.ctypes.data, star_count.ctypes.data,
            star_ctrl.ctypes.data,
            succ_flat.ctypes.data, succ_off.ctypes.data,
            pred_count.ctypes.data,
            matrix.ctypes.data, probe_off.ctypes.data,
            probe_mask.ctypes.data, pops.ctypes.data,
            span, height, max_cycles,
            gate_start.ctypes.data, gate_end.ctypes.data,
            ready_time.ctypes.data, counters.ctypes.data,
        )


def _compiler() -> Optional[str]:
    explicit = os.environ.get("CC")
    if explicit:
        return shutil.which(explicit) or explicit
    return shutil.which("cc") or shutil.which("gcc") or shutil.which("clang")


def _extra_cflags() -> list:
    """Extra compiler flags from ``REPRO_KERNEL_CFLAGS`` (shlex-free split)."""
    return os.environ.get("REPRO_KERNEL_CFLAGS", "").split()


def _cache_dirs():
    override = os.environ.get("REPRO_KERNEL_CACHE")
    if override:
        yield override
        return
    yield os.path.join(os.path.dirname(_SOURCE), "_kernel_cache")
    yield os.path.join(tempfile.gettempdir(),
                       f"repro-kernel-{os.getuid() if hasattr(os, 'getuid') else 'u'}")


def _compile(source_path: str, digest: str) -> Optional[str]:
    compiler = _compiler()
    if compiler is None:
        return None
    for cache_dir in _cache_dirs():
        so_path = os.path.join(cache_dir, f"batchsim_{digest}.so")
        if os.path.exists(so_path):
            return so_path
        try:
            os.makedirs(cache_dir, exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(suffix=".so", dir=cache_dir)
            os.close(fd)
        except OSError:
            continue
        try:
            proc = subprocess.run(
                [compiler, "-O3", "-fPIC", "-shared"]
                + _extra_cflags()
                + ["-o", tmp_path, source_path],
                capture_output=True,
                timeout=120,
            )
            if proc.returncode != 0:
                return None
            os.replace(tmp_path, so_path)  # atomic: racing builds converge
            return so_path
        except (OSError, subprocess.SubprocessError):
            return None
        finally:
            if os.path.exists(tmp_path):
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
    return None


def _try_load() -> Optional[Kernel]:
    if os.environ.get("REPRO_NO_KERNEL"):
        return None
    try:
        with open(_SOURCE, "rb") as handle:
            source = handle.read()
    except OSError:
        return None
    # The cache key covers the source AND the extra flags: a sanitizer
    # build must not be served the plain cached .so (or vice versa).
    hasher = hashlib.sha256(source)
    hasher.update(b"\x00")
    hasher.update(" ".join(_extra_cflags()).encode("utf-8"))
    digest = hasher.hexdigest()[:16]
    so_path = _compile(_SOURCE, digest)
    if so_path is None:
        return None
    try:
        return Kernel(ctypes.CDLL(so_path), so_path)
    except OSError:
        return None


def load() -> Optional[Kernel]:
    """The loaded kernel, compiling on first call; None when unavailable."""
    global _cached, _tried
    with _lock:
        if not _tried:
            _tried = True
            _cached = _try_load()
        return _cached


def available() -> bool:
    """Whether the compiled fast path can run in this environment."""
    return load() is not None


def reset() -> None:
    """Forget the cached load attempt (tests toggle REPRO_NO_KERNEL)."""
    global _cached, _tried
    with _lock:
        _cached = None
        _tried = False
