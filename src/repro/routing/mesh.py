"""The 2-D surface-code mesh and its routing channel lattice.

Fig. 1 of the paper shows the architecture model: logical qubits are tiles of
roughly ``d x d`` physical qubits arranged on a 2-D grid, and two-qubit
interactions are *braids* — pathways through the space between and around
tiles.  Braids may take any route and extend to arbitrary length in a single
step, but two braids may not cross (occupy the same space at the same time).

To represent the space between tiles we use a *doubled channel lattice*: the
tile at grid position ``(r, c)`` sits at lattice cell ``(2r + 1, 2c + 1)``,
and every cell with at least one even coordinate is routing channel.  A braid
is a set of lattice cells connecting two (or more) tile cells through the
channel network; two braids conflict exactly when their cell sets intersect.

For the simulator's hot path the mesh also defines a stable **flat integer
encoding** of lattice cells: cell ``(r, c)`` maps to index
``r * lattice_width + c`` (row-major), so any cell *set* can be packed into
an arbitrary-precision int bitmask with bit ``i`` standing for the cell
:meth:`Mesh.index_cell` returns for ``i``.  Two cell sets are disjoint
exactly when the AND of their masks is zero — a single machine-level
operation instead of a hash-set intersection.  The encoding depends only on
the mesh dimensions, never on placements or traffic, so masks computed once
(e.g. per cached route candidate) stay valid for the mesh's lifetime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Tuple

Cell = Tuple[int, int]
LatticeCell = Tuple[int, int]


try:
    popcount = int.bit_count  # Python >= 3.10
except AttributeError:  # pragma: no cover - exercised on Python 3.9 only
    def popcount(value: int) -> int:
        """Number of set bits (cells) in an occupancy bitmask."""
        return bin(value).count("1")


def tile_to_lattice(cell: Cell) -> LatticeCell:
    """Lattice coordinates of a tile cell ``(row, col)``."""
    row, col = cell
    return (2 * row + 1, 2 * col + 1)


def lattice_to_tile(cell: LatticeCell) -> Cell:
    """Tile coordinates of a lattice cell that hosts a tile (odd, odd)."""
    row, col = cell
    if row % 2 == 0 or col % 2 == 0:
        raise ValueError(f"lattice cell {cell} is a channel, not a tile")
    return ((row - 1) // 2, (col - 1) // 2)


def is_channel_cell(cell: LatticeCell) -> bool:
    """Whether a lattice cell belongs to the routing channel network."""
    row, col = cell
    return row % 2 == 0 or col % 2 == 0


@dataclass
class Mesh:
    """The routing substrate derived from a qubit placement.

    Attributes
    ----------
    tile_width, tile_height:
        Grid dimensions in logical-qubit tiles.
    qubit_cells:
        Lattice cell of every placed qubit.
    """

    tile_width: int
    tile_height: int
    qubit_cells: Dict[int, LatticeCell]

    @classmethod
    def from_placement(
        cls, positions: Mapping[int, Cell], width: int, height: int
    ) -> "Mesh":
        """Build a mesh from a placement's positions and grid dimensions."""
        qubit_cells = {
            qubit: tile_to_lattice(cell) for qubit, cell in positions.items()
        }
        for qubit, cell in positions.items():
            row, col = cell
            if not (0 <= row < height and 0 <= col < width):
                raise ValueError(
                    f"qubit {qubit} at tile {cell} is outside the {height}x{width} grid"
                )
        return cls(tile_width=width, tile_height=height, qubit_cells=qubit_cells)

    @property
    def lattice_height(self) -> int:
        """Number of lattice rows (2 * tile rows + 1)."""
        return 2 * self.tile_height + 1

    @property
    def lattice_width(self) -> int:
        """Number of lattice columns (2 * tile columns + 1)."""
        return 2 * self.tile_width + 1

    @property
    def area_tiles(self) -> int:
        """Mesh area in logical-qubit tiles."""
        return self.tile_width * self.tile_height

    def in_bounds(self, cell: LatticeCell) -> bool:
        """Whether a lattice cell lies inside the mesh."""
        row, col = cell
        return 0 <= row < self.lattice_height and 0 <= col < self.lattice_width

    def qubit_cell(self, qubit: int) -> LatticeCell:
        """Lattice cell of a placed qubit (KeyError if unplaced)."""
        return self.qubit_cells[qubit]

    @property
    def num_lattice_cells(self) -> int:
        """Total lattice cell count (the width of a full occupancy bitmask)."""
        return self.lattice_height * self.lattice_width

    def cell_index(self, cell: LatticeCell) -> int:
        """Flat row-major index of a lattice cell (bit position in masks)."""
        row, col = cell
        return row * self.lattice_width + col

    def index_cell(self, index: int) -> LatticeCell:
        """Inverse of :meth:`cell_index`."""
        return divmod(index, self.lattice_width)

    def cells_mask(self, cells: Iterable[LatticeCell]) -> int:
        """Pack an iterable of lattice cells into an occupancy bitmask."""
        width = self.lattice_width
        mask = 0
        for row, col in cells:
            mask |= 1 << (row * width + col)
        return mask

    def segment_mask(self, start: LatticeCell, end: LatticeCell) -> int:
        """Bitmask of an axis-aligned inclusive segment, in O(mask words).

        A horizontal run is one contiguous bit block; a vertical run is a
        cached stride-``lattice_width`` bit pattern shifted into place — no
        per-cell loop, which is what makes composing route-candidate masks
        cheap enough to replace per-cell path construction in the
        simulator's default engine.
        """
        (r1, c1), (r2, c2) = start, end
        width = self.lattice_width
        if r1 == r2:
            a, b = (c1, c2) if c1 <= c2 else (c2, c1)
            return ((1 << (b - a + 1)) - 1) << (r1 * width + a)
        if c1 == c2:
            a, b = (r1, r2) if r1 <= r2 else (r2, r1)
            return self._column_pattern(b - a + 1) << (a * width + c1)
        raise ValueError(f"segment {start} -> {end} is not axis aligned")

    def _column_pattern(self, length: int) -> int:
        """``length`` bits at stride ``lattice_width`` (a vertical unit run)."""
        patterns = getattr(self, "_col_patterns", None)
        if patterns is None:
            patterns = [0]
            self._col_patterns = patterns
        while len(patterns) <= length:
            patterns.append(
                patterns[-1] | (1 << ((len(patterns) - 1) * self.lattice_width))
            )
        return patterns[length]

    def mask_cells(self, mask: int) -> List[LatticeCell]:
        """Unpack an occupancy bitmask into its lattice cells (index order)."""
        width = self.lattice_width
        cells: List[LatticeCell] = []
        while mask:
            low = mask & -mask
            mask ^= low
            cells.append(divmod(low.bit_length() - 1, width))
        return cells

    def neighbors(self, cell: LatticeCell) -> List[LatticeCell]:
        """4-neighbourhood of a lattice cell, clipped to the mesh bounds."""
        row, col = cell
        candidates = [
            (row - 1, col),
            (row + 1, col),
            (row, col - 1),
            (row, col + 1),
        ]
        return [c for c in candidates if self.in_bounds(c)]

    def occupied_tile_cells(self) -> frozenset:
        """Lattice cells occupied by placed qubits."""
        return frozenset(self.qubit_cells.values())

    def channel_utilisation(
        self, locked_cells: Iterable[LatticeCell]
    ) -> float:
        """Fraction of channel cells currently locked by braids.

        Used for congestion reporting; returns 0.0 for an empty mesh.
        """
        total_channels = self.lattice_height * self.lattice_width - len(
            self.qubit_cells
        )
        if total_channels <= 0:
            return 0.0
        locked_channels = sum(1 for cell in locked_cells if is_channel_cell(cell))
        return locked_channels / total_channels
