"""The 2-D surface-code mesh and its routing channel lattice.

Fig. 1 of the paper shows the architecture model: logical qubits are tiles of
roughly ``d x d`` physical qubits arranged on a 2-D grid, and two-qubit
interactions are *braids* — pathways through the space between and around
tiles.  Braids may take any route and extend to arbitrary length in a single
step, but two braids may not cross (occupy the same space at the same time).

To represent the space between tiles we use a *doubled channel lattice*: the
tile at grid position ``(r, c)`` sits at lattice cell ``(2r + 1, 2c + 1)``,
and every cell with at least one even coordinate is routing channel.  A braid
is a set of lattice cells connecting two (or more) tile cells through the
channel network; two braids conflict exactly when their cell sets intersect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Tuple

Cell = Tuple[int, int]
LatticeCell = Tuple[int, int]


def tile_to_lattice(cell: Cell) -> LatticeCell:
    """Lattice coordinates of a tile cell ``(row, col)``."""
    row, col = cell
    return (2 * row + 1, 2 * col + 1)


def lattice_to_tile(cell: LatticeCell) -> Cell:
    """Tile coordinates of a lattice cell that hosts a tile (odd, odd)."""
    row, col = cell
    if row % 2 == 0 or col % 2 == 0:
        raise ValueError(f"lattice cell {cell} is a channel, not a tile")
    return ((row - 1) // 2, (col - 1) // 2)


def is_channel_cell(cell: LatticeCell) -> bool:
    """Whether a lattice cell belongs to the routing channel network."""
    row, col = cell
    return row % 2 == 0 or col % 2 == 0


@dataclass
class Mesh:
    """The routing substrate derived from a qubit placement.

    Attributes
    ----------
    tile_width, tile_height:
        Grid dimensions in logical-qubit tiles.
    qubit_cells:
        Lattice cell of every placed qubit.
    """

    tile_width: int
    tile_height: int
    qubit_cells: Dict[int, LatticeCell]

    @classmethod
    def from_placement(
        cls, positions: Mapping[int, Cell], width: int, height: int
    ) -> "Mesh":
        """Build a mesh from a placement's positions and grid dimensions."""
        qubit_cells = {
            qubit: tile_to_lattice(cell) for qubit, cell in positions.items()
        }
        for qubit, cell in positions.items():
            row, col = cell
            if not (0 <= row < height and 0 <= col < width):
                raise ValueError(
                    f"qubit {qubit} at tile {cell} is outside the {height}x{width} grid"
                )
        return cls(tile_width=width, tile_height=height, qubit_cells=qubit_cells)

    @property
    def lattice_height(self) -> int:
        """Number of lattice rows (2 * tile rows + 1)."""
        return 2 * self.tile_height + 1

    @property
    def lattice_width(self) -> int:
        """Number of lattice columns (2 * tile columns + 1)."""
        return 2 * self.tile_width + 1

    @property
    def area_tiles(self) -> int:
        """Mesh area in logical-qubit tiles."""
        return self.tile_width * self.tile_height

    def in_bounds(self, cell: LatticeCell) -> bool:
        """Whether a lattice cell lies inside the mesh."""
        row, col = cell
        return 0 <= row < self.lattice_height and 0 <= col < self.lattice_width

    def qubit_cell(self, qubit: int) -> LatticeCell:
        """Lattice cell of a placed qubit (KeyError if unplaced)."""
        return self.qubit_cells[qubit]

    def neighbors(self, cell: LatticeCell) -> List[LatticeCell]:
        """4-neighbourhood of a lattice cell, clipped to the mesh bounds."""
        row, col = cell
        candidates = [
            (row - 1, col),
            (row + 1, col),
            (row, col - 1),
            (row, col + 1),
        ]
        return [c for c in candidates if self.in_bounds(c)]

    def occupied_tile_cells(self) -> frozenset:
        """Lattice cells occupied by placed qubits."""
        return frozenset(self.qubit_cells.values())

    def channel_utilisation(
        self, locked_cells: Iterable[LatticeCell]
    ) -> float:
        """Fraction of channel cells currently locked by braids.

        Used for congestion reporting; returns 0.0 for an empty mesh.
        """
        total_channels = self.lattice_height * self.lattice_width - len(
            self.qubit_cells
        )
        if total_channels <= 0:
            return 0.0
        locked_channels = sum(1 for cell in locked_cells if is_channel_cell(cell))
        return locked_channels / total_channels
