"""Braid path construction on the channel lattice.

The router turns a pair (or star) of qubit tiles into a concrete
:class:`~repro.routing.braid.BraidPath`.  The primary route shape is the
rectilinear "around the tiles" path: leave the source tile into an adjacent
channel row, travel along channels (which are never blocked by qubit tiles),
and enter the destination tile from an adjacent channel column.  Several
symmetric variants of this shape are generated so the simulator can pick one
that avoids the cells currently locked by other braids; an optional BFS
detour router finds longer paths through free channels when all rectilinear
candidates are blocked.
"""

from __future__ import annotations

from collections import deque
from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .braid import BraidPath
from .mesh import LatticeCell, Mesh, popcount as _popcount


def _straight_segment(start: LatticeCell, end: LatticeCell) -> List[LatticeCell]:
    """Cells of an axis-aligned segment from ``start`` to ``end`` inclusive."""
    (r1, c1), (r2, c2) = start, end
    cells: List[LatticeCell] = []
    if r1 == r2:
        step = 1 if c2 >= c1 else -1
        cells = [(r1, c) for c in range(c1, c2 + step, step)]
    elif c1 == c2:
        step = 1 if r2 >= r1 else -1
        cells = [(r, c1) for r in range(r1, r2 + step, step)]
    else:
        raise ValueError(f"segment {start} -> {end} is not axis aligned")
    return cells


def _clamp(value: int, low: int, high: int) -> int:
    return max(low, min(high, value))


def rectilinear_candidates(
    mesh: Mesh, source: LatticeCell, target: LatticeCell
) -> List[List[LatticeCell]]:
    """Candidate rectilinear channel paths between two tile cells.

    Each candidate leaves the source vertically into an adjacent channel row
    (above or below), runs horizontally along that channel row to the channel
    column adjacent to the target (left or right), runs vertically along that
    channel column, and enters the target.  The transposed (column-first)
    variants are also produced.  All intermediate cells are channel cells, so
    candidates never pass through other qubit tiles.
    """
    (sr, sc), (tr, tc) = source, target
    max_row = mesh.lattice_height - 1
    max_col = mesh.lattice_width - 1
    candidates: List[List[LatticeCell]] = []

    def join(*segments: List[LatticeCell]) -> List[LatticeCell]:
        """Concatenate cell segments, dropping duplicated junction cells."""
        path: List[LatticeCell] = []
        for segment in segments:
            for cell in segment:
                if not path or path[-1] != cell:
                    path.append(cell)
        return path

    channel_rows = [_clamp(sr - 1, 0, max_row), _clamp(sr + 1, 0, max_row)]
    channel_cols = [_clamp(tc - 1, 0, max_col), _clamp(tc + 1, 0, max_col)]
    for channel_row in channel_rows:
        for channel_col in channel_cols:
            candidates.append(
                join(
                    [source],
                    _straight_segment((channel_row, sc), (channel_row, channel_col)),
                    _straight_segment((channel_row, channel_col), (tr, channel_col)),
                    [target],
                )
            )

    source_channel_cols = [_clamp(sc - 1, 0, max_col), _clamp(sc + 1, 0, max_col)]
    target_channel_rows = [_clamp(tr - 1, 0, max_row), _clamp(tr + 1, 0, max_row)]
    for channel_col in source_channel_cols:
        for channel_row in target_channel_rows:
            candidates.append(
                join(
                    [source],
                    _straight_segment((sr, channel_col), (channel_row, channel_col)),
                    _straight_segment((channel_row, channel_col), (channel_row, tc)),
                    [target],
                )
            )

    # De-duplicate candidates while preserving order.
    unique: List[List[LatticeCell]] = []
    seen: Set[FrozenSet[LatticeCell]] = set()
    for path in candidates:
        key = frozenset(path)
        if key not in seen:
            seen.add(key)
            unique.append(path)
    return unique


def bfs_detour(
    mesh: Mesh,
    source: LatticeCell,
    target: LatticeCell,
    blocked: AbstractSet[LatticeCell],
    max_length: Optional[int] = None,
) -> Optional[List[LatticeCell]]:
    """Shortest channel path avoiding ``blocked`` cells, or ``None``.

    Qubit tile cells other than the endpoints are treated as obstacles (the
    braid must go around them).  ``max_length`` caps the detour length so
    pathological routes are rejected in favour of stalling.

    This is the set-based reference implementation;
    :func:`bfs_detour_mask` is the bitmask twin used by the default
    simulation engine.  Both explore neighbours in the same order, so they
    return the identical path for the identical blocked set.
    """
    obstacles = set(mesh.occupied_tile_cells())
    obstacles.discard(source)
    obstacles.discard(target)
    if source in blocked or target in blocked:
        return None

    queue: deque = deque([source])
    parents: Dict[LatticeCell, Optional[LatticeCell]] = {source: None}
    while queue:
        cell = queue.popleft()
        if cell == target:
            break
        for neighbor in mesh.neighbors(cell):
            if neighbor in parents:
                continue
            if neighbor in blocked or neighbor in obstacles:
                continue
            parents[neighbor] = cell
            queue.append(neighbor)
    if target not in parents:
        return None
    path: List[LatticeCell] = []
    cursor: Optional[LatticeCell] = target
    while cursor is not None:
        path.append(cursor)
        cursor = parents[cursor]
    path.reverse()
    if max_length is not None and len(path) > max_length:
        return None
    return path


def bfs_detour_mask(
    mesh: Mesh,
    source: LatticeCell,
    target: LatticeCell,
    blocked_mask: int,
    max_length: Optional[int] = None,
) -> Optional[List[LatticeCell]]:
    """Bitmask twin of :func:`bfs_detour`.

    ``blocked_mask`` encodes the blocked cells via :meth:`Mesh.cell_index`;
    membership tests become single bit probes instead of hash lookups.  The
    traversal order mirrors :func:`bfs_detour` exactly (same queue, same
    clipped 4-neighbourhood order), so both functions return the identical
    path for equivalent inputs — a property the randomized parity suite
    pins.
    """
    width = mesh.lattice_width
    obstacle_mask = mesh.cells_mask(mesh.qubit_cells.values())
    obstacle_mask &= ~(1 << mesh.cell_index(source))
    obstacle_mask &= ~(1 << mesh.cell_index(target))
    if (blocked_mask >> mesh.cell_index(source)) & 1:
        return None
    if (blocked_mask >> mesh.cell_index(target)) & 1:
        return None
    excluded = blocked_mask | obstacle_mask

    queue: deque = deque([source])
    parents: Dict[LatticeCell, Optional[LatticeCell]] = {source: None}
    while queue:
        cell = queue.popleft()
        if cell == target:
            break
        for neighbor in mesh.neighbors(cell):
            if neighbor in parents:
                continue
            if (excluded >> (neighbor[0] * width + neighbor[1])) & 1:
                continue
            parents[neighbor] = cell
            queue.append(neighbor)
    if target not in parents:
        return None
    path: List[LatticeCell] = []
    cursor: Optional[LatticeCell] = target
    while cursor is not None:
        path.append(cursor)
        cursor = parents[cursor]
    path.reverse()
    if max_length is not None and len(path) > max_length:
        return None
    return path


class BraidRouter:
    """Routes braids on a mesh, avoiding a set of currently locked cells.

    The router is the simulator's answer to the question "can this braid run
    *right now*?".  For every endpoint pair it considers up to
    ``max_candidates`` rectilinear route shapes (see
    :func:`rectilinear_candidates`) and returns the first one whose cells are
    disjoint from the currently locked set.  What happens when every
    candidate is blocked is the **stall-vs-detour** policy split:

    * ``allow_detour=False`` (the paper's baseline) — the router returns
      ``None`` and the simulator *stalls* the gate, retrying it after the
      next braid completion.  Stalled cycles are charged to the mapping: a
      good placement keeps contending braids apart.
    * ``allow_detour=True`` (the routing ablation) — the router runs a BFS
      over free channel cells and accepts any path at most
      ``detour_slack`` times the best rectilinear length.  Detours trade
      braid footprint (space) for immediacy (time).

    Routing is deterministic: candidates are tried in a fixed order, so two
    simulations of the same schedule on the same placement make identical
    routing decisions.

    The candidate shapes for an endpoint pair do not depend on which cells
    are momentarily locked, so the router precomputes each pair's candidate
    paths (with their cell sets *and* their occupancy bitmasks, see
    :meth:`Mesh.cell_index`) on first use and replays them on every retry.
    The default simulation engine drives the ``*_masked`` methods, where a
    stalled gate's retry costs one integer AND per candidate; the set-based
    methods are retained as the reference oracle the parity suite checks
    the bitmask engine against.  On failure the masked methods also report
    a *watch mask* — one locked cell per blocked candidate — which is what
    lets the simulator park a stalled gate until one of those specific
    cells is released.

    Parameters
    ----------
    mesh:
        The routing substrate.
    allow_detour:
        When all rectilinear candidates are blocked, search for a BFS detour
        through free channels.  The paper's baseline simulator stalls
        instead, so the default is ``False``; the detour router is used in
        the routing ablation study.
    detour_slack:
        Maximum detour length as a multiple of the best rectilinear length.
    max_candidates:
        How many rectilinear route shapes a braid may choose from.  Small
        values model the paper's stall-on-intersection semantics (a braid
        whose natural corridor is busy waits); larger values give the router
        freedom to steer around traffic and weaken the influence of the
        mapping on latency.
    """

    def __init__(
        self,
        mesh: Mesh,
        allow_detour: bool = False,
        detour_slack: float = 2.0,
        max_candidates: int = 2,
    ) -> None:
        self.mesh = mesh
        self.allow_detour = allow_detour
        self.detour_slack = detour_slack
        self.max_candidates = max(1, max_candidates)
        # Per-endpoint-pair route plans, two parallel caches: the set-based
        # plans (candidate paths with frozen cell sets, used by the
        # reference engine and path-returning analysis helpers) and the
        # mask-only plans (candidate bitmasks, used by the default engine).
        # Keyed by lattice cells, so both stay valid for the router's
        # lifetime — candidate shapes depend only on the mesh geometry,
        # never on the locked set.
        self._pair_plans: Dict[
            Tuple[LatticeCell, LatticeCell],
            Tuple[Tuple[Tuple[List[LatticeCell], FrozenSet[LatticeCell]], ...], int],
        ] = {}
        self._mask_plans: Dict[
            Tuple[LatticeCell, LatticeCell], Tuple[Tuple[int, ...], int]
        ] = {}

    # ------------------------------------------------------------------
    # Two-endpoint braids
    # ------------------------------------------------------------------
    def route_pair(
        self,
        qubit_a: int,
        qubit_b: int,
        locked: AbstractSet[LatticeCell],
        hop: Optional[LatticeCell] = None,
    ) -> Optional[BraidPath]:
        """Route a braid between two qubits, avoiding ``locked`` cells.

        With ``hop`` set, the braid is forced through the given intermediate
        lattice cell (Valiant-style routing, Section VII-B.3); the two legs
        belong to the same braid and may share cells with each other.
        Returns ``None`` when no candidate (and, with ``allow_detour``, no
        acceptable detour) avoids the locked cells — the caller then stalls
        the gate until a braid completion frees some cells.
        """
        source = self.mesh.qubit_cell(qubit_a)
        target = self.mesh.qubit_cell(qubit_b)
        if hop is not None:
            first = self._route_cells(source, hop, locked)
            if first is not None:
                # The two legs belong to the same braid, so they are allowed
                # to touch each other; only other braids' cells are excluded.
                second = self._route_cells(hop, target, locked)
                if second is not None:
                    return BraidPath.from_cells(
                        set(first) | set(second),
                        endpoints=(source, target),
                        hop=hop,
                    )
            # Fall back to a direct route when the hop cannot be honoured.
        cells = self._route_cells(source, target, locked)
        if cells is None:
            return None
        return BraidPath.from_cells(cells, endpoints=(source, target))

    def unconstrained_pair(self, qubit_a: int, qubit_b: int) -> BraidPath:
        """The preferred (first-candidate) braid path, ignoring congestion.

        Used for analysis (e.g. measuring how much area a braid would occupy)
        and by tests that need a deterministic path.
        """
        source = self.mesh.qubit_cell(qubit_a)
        target = self.mesh.qubit_cell(qubit_b)
        candidates, _ = self._pair_plan(source, target)
        return BraidPath.from_cells(candidates[0][0], endpoints=(source, target))

    def _pair_plan(
        self, source: LatticeCell, target: LatticeCell
    ) -> Tuple[Tuple[Tuple[List[LatticeCell], FrozenSet[LatticeCell]], ...], int]:
        """The cached set-based candidate routes for an endpoint pair.

        Returns ``(candidates, best_length)`` where ``candidates`` is a tuple
        of ``(path, cell_set)`` pairs, truncated to ``max_candidates``, and
        ``best_length`` is the shortest candidate's cell count.  Callers must
        treat the returned paths as read-only.  The default engine uses the
        list-free :meth:`_mask_plan` instead.
        """
        key = (source, target)
        plan = self._pair_plans.get(key)
        if plan is None:
            candidates = rectilinear_candidates(self.mesh, source, target)
            candidates = candidates[: self.max_candidates]
            plan = (
                tuple((path, frozenset(path)) for path in candidates),
                min(len(path) for path in candidates),
            )
            self._pair_plans[key] = plan
        return plan

    def _route_cells(
        self,
        source: LatticeCell,
        target: LatticeCell,
        locked: AbstractSet[LatticeCell],
    ) -> Optional[List[LatticeCell]]:
        """Find a concrete cell path from ``source`` to ``target``."""
        if source == target:
            return [source]
        candidates, best_length = self._pair_plan(source, target)
        if not locked:
            # Early exit: nothing is in flight, the preferred shape wins.
            return candidates[0][0]
        for path, cells in candidates:
            if cells.isdisjoint(locked):
                return path
        if self.allow_detour:
            max_length = int(best_length * self.detour_slack) + 2
            detour = bfs_detour(self.mesh, source, target, locked, max_length)
            if detour is not None:
                return detour
        return None

    def _mask_plan(
        self, source: LatticeCell, target: LatticeCell
    ) -> Tuple[Tuple[int, ...], int]:
        """The cached candidate *masks* for an endpoint pair.

        The bitmask twin of :meth:`_pair_plan`, built without ever
        materializing a cell list: each rectilinear candidate is the OR of
        two :meth:`~repro.routing.mesh.Mesh.segment_mask` runs plus the
        endpoint bits, composed in the same generation order (row-first
        variants then column-first) and deduplicated by mask equality —
        masks are equal exactly when the cell sets are, so the surviving
        candidate sequence matches the set-based plan's, truncated to
        ``max_candidates``.  Returns ``(masks, best_length)`` with
        ``best_length`` the smallest candidate popcount (the detour cap).
        """
        key = (source, target)
        plan = self._mask_plans.get(key)
        if plan is None:
            mesh = self.mesh
            segment = mesh.segment_mask
            (sr, sc), (tr, tc) = source, target
            max_row = mesh.lattice_height - 1
            max_col = mesh.lattice_width - 1
            endpoint_bits = (1 << mesh.cell_index(source)) | (
                1 << mesh.cell_index(target)
            )
            limit = self.max_candidates
            masks: List[int] = []
            # Tile cells sit at odd coordinates >= 1, so only the upper
            # clamp can bind (the reference generator's _clamp agrees).
            for channel_row in (sr - 1, min(sr + 1, max_row)):
                for channel_col in (tc - 1, min(tc + 1, max_col)):
                    if len(masks) >= limit:
                        break
                    mask = (
                        endpoint_bits
                        | segment((channel_row, sc), (channel_row, channel_col))
                        | segment((channel_row, channel_col), (tr, channel_col))
                    )
                    if mask not in masks:
                        masks.append(mask)
            for channel_col in (sc - 1, min(sc + 1, max_col)):
                for channel_row in (tr - 1, min(tr + 1, max_row)):
                    if len(masks) >= limit:
                        break
                    mask = (
                        endpoint_bits
                        | segment((sr, channel_col), (channel_row, channel_col))
                        | segment((channel_row, channel_col), (channel_row, tc))
                    )
                    if mask not in masks:
                        masks.append(mask)
            if self.allow_detour:
                best_length = min(_popcount(mask) for mask in masks)
            else:
                best_length = 0  # only the detour cap reads it
            plan = (tuple(masks), best_length)
            self._mask_plans[key] = plan
        return plan

    def _route_mask(
        self,
        source: LatticeCell,
        target: LatticeCell,
        locked_mask: int,
    ) -> Tuple[bool, int]:
        """Bitmask twin of :meth:`_route_cells`.

        Returns ``(True, path_mask)`` on success and ``(False, watch_mask)``
        on failure.  The watch mask carries one blocking cell per blocked
        candidate (the lowest-index cell of ``candidate_mask & locked``) —
        the cells a stalled gate must be parked on.  This is a sound
        refinement of the full blocker union: while every watch cell stays
        locked, every candidate still intersects the locked set, so the
        route keeps failing and skipped retries could not have succeeded.
        With ``allow_detour`` a failed BFS widens the watch mask to the full
        locked mask (releasing *any* cell might open a detour).  Candidate
        order and acceptance are identical to the set-based method, so both
        make the same routing decision for the same locked set.
        """
        if source == target:
            return True, 1 << self.mesh.cell_index(source)
        masks, best_length = self._mask_plan(source, target)
        if not locked_mask:
            return True, masks[0]
        watch = 0
        for mask in masks:
            hit = mask & locked_mask
            if not hit:
                return True, mask
            watch |= hit & -hit
        if self.allow_detour:
            max_length = int(best_length * self.detour_slack) + 2
            detour = bfs_detour_mask(
                self.mesh, source, target, locked_mask, max_length
            )
            if detour is not None:
                return True, self.mesh.cells_mask(detour)
            return False, locked_mask
        return False, watch

    def route_pair_masked(
        self,
        qubit_a: int,
        qubit_b: int,
        locked_mask: int,
        hop: Optional[LatticeCell] = None,
    ) -> Tuple[bool, int]:
        """Bitmask twin of :meth:`route_pair`.

        Returns ``(True, path_mask)`` on success and ``(False, watch_mask)``
        on failure; no cell list or :class:`BraidPath` is ever built, which
        is most of the default engine's speedup.  The watch mask is sound
        for stall parking: as long as every cell in it stays locked this
        route keeps failing — for the hop form it combines the watch cells
        of each leg that was attempted with those of the direct fallback,
        since the route succeeds only if some attempted leg sequence or the
        fallback does.
        """
        source = self.mesh.qubit_cell(qubit_a)
        target = self.mesh.qubit_cell(qubit_b)
        watch = 0
        if hop is not None:
            first_ok, first_mask = self._route_mask(source, hop, locked_mask)
            if not first_ok:
                watch |= first_mask
            else:
                # The two legs belong to the same braid, so they are allowed
                # to touch each other; only other braids' cells are excluded.
                second_ok, second_mask = self._route_mask(hop, target, locked_mask)
                if second_ok:
                    return True, first_mask | second_mask
                watch |= second_mask
            # Fall back to a direct route when the hop cannot be honoured.
        ok, mask = self._route_mask(source, target, locked_mask)
        if ok:
            return True, mask
        return False, watch | mask

    # ------------------------------------------------------------------
    # Multi-target braids
    # ------------------------------------------------------------------
    def route_star(
        self,
        control: int,
        targets: Sequence[int],
        locked: AbstractSet[LatticeCell],
    ) -> Optional[BraidPath]:
        """Route a single-control multi-target CNOT as a star of braids.

        The footprint is the union of the control-to-target paths; each leg
        must avoid the locked cells, but legs of the same star may share
        cells with each other (they form one braid).  Returns ``None`` if any
        leg cannot be routed.
        """
        control_cell = self.mesh.qubit_cell(control)
        cells: Set[LatticeCell] = {control_cell}
        endpoints: List[LatticeCell] = [control_cell]
        for target in targets:
            target_cell = self.mesh.qubit_cell(target)
            endpoints.append(target_cell)
            leg = self._route_cells(control_cell, target_cell, locked)
            if leg is None:
                return None
            cells.update(leg)
        return BraidPath.from_cells(cells, endpoints=endpoints)

    def route_star_masked(
        self,
        control: int,
        targets: Sequence[int],
        locked_mask: int,
    ) -> Tuple[bool, int]:
        """Bitmask twin of :meth:`route_star`.

        Returns ``(True, path_mask)`` on success (the union of the legs, so
        its popcount is the star's footprint) and ``(False, watch_mask)`` on
        failure — the first failing leg's watch cells (while those stay
        locked the leg, and therefore the star, keeps failing, which is all
        stall parking needs).
        """
        control_cell = self.mesh.qubit_cell(control)
        mask = 1 << self.mesh.cell_index(control_cell)
        for target in targets:
            leg_ok, leg_mask = self._route_mask(
                control_cell, self.mesh.qubit_cell(target), locked_mask
            )
            if not leg_ok:
                return False, leg_mask
            mask |= leg_mask
        return True, mask
