"""Batched braid simulation: K sweep points through one event loop.

A capacity sweep simulates the *same circuit* under many placements and
configs.  :func:`simulate_batch` exploits that: it groups requests by
circuit, shares the per-circuit preparation (dependency DAG, gate
metadata) and the per-endpoint-pair route plans across the whole group,
and advances every point of a group through a single time-stepped event
loop whose per-step work is done at the *array* level — the cost of a
step is a fixed number of numpy operations over all K points' events,
not a Python-level loop over each point's events.

Occupancy representation
------------------------
Every route candidate the router can produce is an L-shaped path: one
horizontal segment, one vertical segment, and the two endpoint cells.
The batched engine therefore keeps each point's ``locked`` occupancy in
a *dual* row/column bitboard — one ``uint64`` word per lattice row (bit
= column) concatenated with one word per lattice column (bit = row),
i.e. a ``(K, H + W)`` array — so a candidate's conflict test collapses
to exactly four word probes: the horizontal segment against its row
word, the vertical segment against its column word, and one bit per
endpoint.  A wave's candidate tests are then a single ``(attempts,
candidates, 4)`` gather + AND over the batch instead of a dense scan of
the full lattice bitmask.  This requires lattice dimensions ≤ 64 in
both axes; larger meshes fall back to the scalar engine per point.

The rest of the batched state:

* all candidate rows (dual representation) live in one master matrix,
  one block per endpoint-pair plan, bracketed by zero guard rows, with
  parallel per-candidate probe tables;
* per-gate bookkeeping (start/end cycles, ready times, remaining
  dependency counts, stall scans, park generations) lives in flat
  ``(K * n,)`` arrays indexed by ``k * n + gate``, updated with
  vectorized scatter ops (``ufunc.at``) per step;
* parked gates sit in a sparse *watch pool* — one row per (gate,
  blocked candidate, watched cell) — tested against the step's freed
  cells in one vectorized AND.

Within a step, a point's pending attempts must be consumed in program
order against its live occupancy (an earlier issue can block a later
candidate).  The engine exploits a monotonicity fact: during a step's
attempt phase a point's occupancy only *grows*, and only via the
point's *own* issues — so verdicts computed against the occupancy at
the top of a wave stay exact for every attempt up to and including the
point's first issue of that wave (parks don't change occupancy).  Each
wave therefore batch-tests *all* remaining attempts of all points,
commits every pre-first-issue park and the first issue per point, and
re-queues only the attempts after the issue; the number of waves is
bounded by the deepest same-step issue chain.  Star (CXX) gates test
every leg against the same occupancy, so their multi-leg verdicts
vectorize identically with one extra axis.  When few attempts remain,
the survivors finish through a scalar big-int loop (in the same padded
cell space, so watch-cell identity is preserved bit for bit).

Exactness contract
------------------
Per-point results are **byte-identical** (``SimulationResult.to_dict()``
equality) to :func:`repro.routing.simulator.simulate` and
:func:`repro.routing.simulator.simulate_reference` at any batch size and
any grouping: same candidate order and truncation, same
one-lowest-blocking-cell-per-candidate watch masks (cells are compared
row-major, and the padded 64-bit row stride preserves that order), the
same wake rule, and the same legacy ``scan`` clock behind
``stall_events``.  Points whose config needs the router's special paths
(hop/Valiant routes, BFS detours, or a star leg with coincident
endpoints) fall back to the scalar engine per point — exact by
construction, just not batched.

Engine selection
----------------
``simulate_batch`` prefers the compiled C kernel
(:mod:`repro.routing.kernel` — the same group representation driven by a
per-point C event loop, built on demand with the host C compiler) when
it is available and a group has batchable points; next the vectorized
numpy group engine; otherwise it falls back to the scalar
:func:`~repro.routing.simulator.simulate` per request (the fallback *is*
the oracle, so degraded environments lose speed, never correctness).
Force a path with ``engine="compiled"`` / ``"vector"`` / ``"scalar"`` —
the differential fuzz harness pins all available paths against the
reference engine.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Tuple

try:  # numpy is an optional accelerator, never a hard dependency
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None

from ..circuits.gates import GateKind
from ..mapping.placement import Placement
from . import kernel as _kernel
from .mesh import LatticeCell, Mesh, popcount as _popcount
from .simulator import (
    RoutingDeadlockError,
    SimulationResult,
    SimulatorConfig,
    _empty_result,
    _gate_list,
    circuit_fingerprint,
    simulate,
)

__all__ = ["simulate_batch", "numpy_available", "kernel_available", "BatchPoint"]

#: One batch request: (circuit_or_gates, placement, config-or-None).
BatchPoint = Tuple[object, Placement, Optional[SimulatorConfig]]

#: Gate kinds in the flat ``kind`` array.
_KIND_PLAIN = 0   # non-braided: always issues
_KIND_PAIR = 1    # simple two-endpoint braid: candidate block in the matrix
_KIND_STAR = 2    # CXX star: per-leg candidate blocks + a control-cell row

#: Zero guard rows at the head and tail of the master matrix.  Row 0 is
#: the canonical "no candidate" row (padding star legs point at it); the
#: tail pad keeps per-attempt candidate windows in bounds when a plan has
#: fewer candidates than the widest plan of the wave.
_GUARD_ROWS = 8

#: Both lattice dimensions must fit one uint64 word for the dual
#: row/column occupancy representation.
_MAX_DIM = 64

#: Below this many pending attempts, the wave machinery hands off to the
#: scalar sequential loop — array-op overhead no longer amortizes.
_TAIL_ATTEMPTS = 24

#: Attempts tested per point per wave.  Verdicts past a point's first
#: issue are invalidated by that issue and would be recomputed anyway, so
#: testing the full depth mostly wastes gather bandwidth; a short prefix
#: keeps the waste bounded by (prefix - 1) lanes per issue.
_WAVE_PREFIX = 4

#: Sentinel cell index larger than any real padded cell (64 * 64).
_NO_CELL = 1 << 20


def numpy_available() -> bool:
    """Whether the vectorized group engine can run in this environment."""
    return _np is not None


# ----------------------------------------------------------------------
# Shared route plans
# ----------------------------------------------------------------------
_REP64 = [0]  # _REP64[L] = sum(2 ** (64 * i) for i in range(L))


def _rep64(length: int) -> int:
    while len(_REP64) <= length:
        _REP64.append((_REP64[-1] << 64) | 1)
    return _REP64[length]


class _Candidate:
    """One L-shaped route candidate in the dual padded representation.

    ``rbytes`` is the little-endian serialization of the padded row-major
    mask (cell (r, c) -> bit ``r * 64 + c``, ``group_height`` words);
    ``cbytes`` is its column-major transpose (bit ``c * 64 + r``,
    ``group_width`` words); ``probes`` is the 4-probe conflict test:
    (word offset into a point's dual bitboard, word mask).
    """

    __slots__ = ("rbytes", "cbytes", "probes")

    def __init__(self, rbytes: bytes, cbytes: bytes,
                 probes: Tuple[Tuple[int, int], ...]):
        self.rbytes = rbytes
        self.cbytes = cbytes
        self.probes = probes


class _PairPlan:
    """Untruncated candidates for one endpoint pair on one mesh size.

    The candidate shapes depend only on the lattice dimensions and the two
    endpoint cells — never on the locked set, the placement's other tiles,
    or ``max_candidates`` — so one plan serves every point of a batch whose
    mesh has the same dimensions, across all configs.  Slicing the first
    ``max_candidates`` reproduces the router's truncated plan exactly (its
    generation-order dedup stops appending at the limit, which equals
    truncating the full dedup'd sequence).

    ``packed`` is the candidates' master-matrix block verbatim: ``count``
    dual-representation rows, little-endian, ``head`` bytes of row words
    then the column words.  ``probe_arr`` is the matching ``(count * 4,
    2)`` uint64 (offset, mask) probe table.  ``masks`` — the padded
    big-int masks in generation order — materializes lazily; only the
    scalar paths read it.
    """

    __slots__ = ("count", "block", "packed", "probe_arr", "_head", "_masks")

    def __init__(self, count: int, packed: bytes, probe_arr, head: int):
        self.count = count
        self.block = -1  # row offset in the group's master candidate matrix
        self.packed = packed
        self.probe_arr = probe_arr
        self._head = head
        self._masks: Optional[Tuple[int, ...]] = None

    @property
    def masks(self) -> Tuple[int, ...]:
        masks = self._masks
        if masks is None:
            packed = self.packed
            if not isinstance(packed, (bytes, bytearray)):
                packed = packed.tobytes()  # bulk-prefetched plans hold views
            stride = len(packed) // self.count if self.count else 0
            head = self._head
            masks = tuple(
                int.from_bytes(packed[i * stride: i * stride + head], "little")
                for i in range(self.count)
            )
            self._masks = masks
        return masks


def _plan_from_candidates(candidates: List[_Candidate], head: int) -> _PairPlan:
    packed = b"".join(
        part
        for candidate in candidates
        for part in (candidate.rbytes, candidate.cbytes)
    )
    probe_arr = _np.asarray(
        [probe for candidate in candidates for probe in candidate.probes],
        dtype="<u8",
    ).reshape(len(candidates) * 4, 2)
    return _PairPlan(len(candidates), packed, probe_arr, head)


def _pair_candidate(endpoints, hrow: int, hcols, vcol: int, vrows,
                    height: int, width: int) -> _Candidate:
    (sr, sc), (tr, tc) = endpoints
    ha, hb = hcols if hcols[0] <= hcols[1] else (hcols[1], hcols[0])
    va, vb = vrows if vrows[0] <= vrows[1] else (vrows[1], vrows[0])
    hmask = ((1 << (hb - ha + 1)) - 1) << ha   # bits are columns
    vmask = ((1 << (vb - va + 1)) - 1) << va   # bits are rows
    rbig = (
        (1 << (sr * 64 + sc))
        | (1 << (tr * 64 + tc))
        | (hmask << (hrow * 64))
        | (_rep64(vb - va + 1) << (va * 64 + vcol))
    )
    cbig = (
        (1 << (sc * 64 + sr))
        | (1 << (tc * 64 + tr))
        | (vmask << (vcol * 64))
        | (_rep64(hb - ha + 1) << (ha * 64 + hrow))
    )
    probes = (
        (sr, 1 << sc),
        (tr, 1 << tc),
        (hrow, hmask),
        (height + vcol, vmask),
    )
    return _Candidate(
        rbig.to_bytes(height * 8, "little"),
        cbig.to_bytes(width * 8, "little"),
        probes,
    )


def _build_pair_plan(mesh: Mesh, source: LatticeCell, target: LatticeCell,
                     height: int, width: int) -> _PairPlan:
    """Full (untruncated) twin of ``BraidRouter._mask_plan``.

    Same channel enumeration and generation-order dedup; candidates are
    composed from their segment geometry instead of dense cell masks.
    """
    endpoints = (source, target)
    (sr, sc), (tr, tc) = endpoints
    max_row = mesh.lattice_height - 1
    max_col = mesh.lattice_width - 1
    candidates: List[_Candidate] = []
    seen: Dict[bytes, bool] = {}
    for channel_row in (sr - 1, min(sr + 1, max_row)):
        for channel_col in (tc - 1, min(tc + 1, max_col)):
            candidate = _pair_candidate(
                endpoints,
                channel_row, (sc, channel_col),
                channel_col, (channel_row, tr),
                height, width,
            )
            if candidate.rbytes not in seen:
                seen[candidate.rbytes] = True
                candidates.append(candidate)
    for channel_col in (sc - 1, min(sc + 1, max_col)):
        for channel_row in (tr - 1, min(tr + 1, max_row)):
            candidate = _pair_candidate(
                endpoints,
                channel_row, (channel_col, tc),
                channel_col, (sr, channel_row),
                height, width,
            )
            if candidate.rbytes not in seen:
                seen[candidate.rbytes] = True
                candidates.append(candidate)
    return _plan_from_candidates(candidates, height * 8)


class _PlanCache:
    """Per-group cache of :class:`_PairPlan` keyed by (dims, source, target).

    When the compiled kernel is available, plan geometry is generated by
    its C ``build_pair_plan`` (byte-identical rows and probes — pinned by
    ``test_simulator_batch``'s builder-parity test); otherwise the pure
    Python big-int composition above runs.
    """

    __slots__ = ("_plans", "_height", "_width", "_kernel", "_rows_buf",
                 "_poff_buf", "_pmask_buf")

    def __init__(self, height: int, width: int, kernel=None) -> None:
        self._plans: Dict[Tuple, _PairPlan] = {}
        self._height = height
        self._width = width
        self._kernel = kernel
        if kernel is not None:
            span = height + width
            self._rows_buf = _np.zeros((8, span), dtype="<u8")
            self._poff_buf = _np.zeros((8, 4), dtype=_np.int64)
            self._pmask_buf = _np.zeros((8, 4), dtype="<u8")

    def _pair_compiled(self, mesh: Mesh, source: LatticeCell,
                       target: LatticeCell) -> _PairPlan:
        height = self._height
        (sr, sc), (tr, tc) = source, target
        kept = self._kernel.build_pair_plan(
            sr, sc, tr, tc,
            mesh.lattice_height - 1, mesh.lattice_width - 1,
            height, self._width,
            self._rows_buf, self._poff_buf, self._pmask_buf,
        )
        probe_arr = _np.empty((kept * 4, 2), dtype="<u8")
        probe_arr[:, 0] = self._poff_buf[:kept].reshape(-1)
        probe_arr[:, 1] = self._pmask_buf[:kept].reshape(-1)
        return _PairPlan(
            kept, self._rows_buf[:kept].tobytes(), probe_arr, height * 8
        )

    def prefetch(self, mesh: Mesh, pairs) -> None:
        """Build every uncached plan of ``pairs`` in one kernel call.

        Per-pair ctypes round trips dominate plan building for large
        circuits, so the batched engine pre-resolves a placement's whole
        pair set through the kernel's bulk ``build_pair_plans`` and keeps
        ndarray views into the bulk buffers (no per-pair copies).  Pairs
        already cached, touching the padding frame (a coordinate < 1), or
        rejected by the kernel (kept < 0) are left for :meth:`pair`.
        No-op without a kernel.
        """
        kern = self._kernel
        if kern is None:
            return
        width_cells = mesh.lattice_width
        height_cells = mesh.lattice_height
        wanted = []
        queued = set()
        for source, target in pairs:
            key = (width_cells, height_cells, source, target)
            if key in self._plans or key in queued:
                continue
            if source == target:  # degenerate star leg: point goes scalar
                continue
            if min(source[0], source[1], target[0], target[1]) < 1:
                continue
            queued.add(key)
            wanted.append((key, source, target))
        if not wanted:
            return
        m = len(wanted)
        span = self._height + self._width
        coords = _np.empty((m, 4), dtype=_np.int64)
        for i, (_, (sr, sc), (tr, tc)) in enumerate(wanted):
            coords[i, 0] = sr
            coords[i, 1] = sc
            coords[i, 2] = tr
            coords[i, 3] = tc
        # np.empty, not zeros: the kernel fully writes every kept row and
        # its 4 probes, and slots beyond kept[i] are never read (callers
        # slice ``[:kept]``), so the zero-fill would be pure overhead.
        rows = _np.empty((m, 8, span), dtype="<u8")
        poff = _np.empty((m, 8, 4), dtype=_np.int64)
        pmask = _np.empty((m, 8, 4), dtype="<u8")
        kept = _np.empty(m, dtype=_np.int64)
        kern.build_pair_plans(
            coords, m, height_cells - 1, width_cells - 1,
            self._height, self._width, rows, poff, pmask, kept,
        )
        probes = _np.empty((m, 8, 4, 2), dtype="<u8")
        probes[..., 0] = poff  # non-negative offsets: safe int64 -> uint64
        probes[..., 1] = pmask
        head = self._height * 8
        for i, (key, _, _) in enumerate(wanted):
            k = int(kept[i])
            if k < 0:
                continue
            self._plans[key] = _PairPlan(
                k, rows[i, :k], probes[i, :k].reshape(k * 4, 2), head
            )

    def pair(self, mesh: Mesh, source: LatticeCell, target: LatticeCell) -> _PairPlan:
        key = (mesh.lattice_width, mesh.lattice_height, source, target)
        plan = self._plans.get(key)
        if plan is None:
            if self._kernel is not None and min(
                source[0], source[1], target[0], target[1]
            ) >= 1:
                plan = self._pair_compiled(mesh, source, target)
            else:
                plan = _build_pair_plan(
                    mesh, source, target, self._height, self._width
                )
            self._plans[key] = plan
        return plan


# ----------------------------------------------------------------------
# Group preparation
# ----------------------------------------------------------------------
class _Shared:
    """Per-circuit state shared by every point of a group."""

    __slots__ = (
        "gates",
        "n",
        "qubits",
        "braided",
        "is_star",
        "max_legs",
        "succ_flat",
        "succ_off",
        "succ_cnt",
        "pred_count",
        "roots",
        "used_qubits",
    )

    def __init__(self, gates) -> None:
        from ..circuits.dag import build_dependency_dag

        self.gates = gates
        n = len(gates)
        self.n = n
        self.qubits = [gate.qubits for gate in gates]
        self.braided = [gate.is_braided for gate in gates]
        self.is_star = [gate.kind is GateKind.CXX for gate in gates]
        self.max_legs = max(
            (len(q) - 1 for q, star in zip(self.qubits, self.is_star) if star),
            default=0,
        )
        dag = build_dependency_dag(gates)
        succ_flat: List[int] = []
        succ_off: List[int] = [0]
        for successors in dag.successors:
            succ_flat.extend(successors)
            succ_off.append(len(succ_flat))
        self.succ_flat = _np.asarray(succ_flat, dtype=_np.int64)
        self.succ_off = _np.asarray(succ_off, dtype=_np.int64)
        self.succ_cnt = _np.diff(self.succ_off)
        self.pred_count = [len(p) for p in dag.predecessors]
        self.roots = [i for i in range(n) if self.pred_count[i] == 0]
        used: set = set()
        for gate in gates:
            used.update(gate.qubits)
        self.used_qubits = used


def _validate_placement(shared: _Shared, placement: Placement) -> None:
    """Same check (and message) as ``simulator._prepare_simulation``."""
    missing = [q for q in shared.used_qubits if q not in placement.positions]
    if missing:
        raise ValueError(
            f"{len(missing)} qubits used by the circuit are not placed "
            f"(first few: {sorted(missing)[:5]})"
        )


class _MatrixBuilder:
    """Accumulates candidate rows (dual representation + probe tables).

    The matrix opens and closes with :data:`_GUARD_ROWS` zero rows so that
    padding lanes (short plans, absent star legs) can safely read a zero
    candidate without branching.
    """

    __slots__ = ("height", "width", "span", "blocks", "probe_parts", "rows")

    def __init__(self, height: int, width: int) -> None:
        self.height = height
        self.width = width
        self.span = height + width
        self.blocks: List[bytes] = [bytes(_GUARD_ROWS * self.span * 8)]
        self.probe_parts: List[object] = [
            _np.zeros((_GUARD_ROWS * 4, 2), dtype="<u8")
        ]
        self.rows = _GUARD_ROWS

    def register(self, plan: _PairPlan) -> int:
        if plan.block < 0:
            self.blocks.append(plan.packed)
            self.probe_parts.append(plan.probe_arr)
            plan.block = self.rows
            self.rows += plan.count
        return plan.block

    def register_cell(self, row: int, col: int) -> int:
        """A single-cell row (star control cells); never probed."""
        self.blocks.append((1 << (row * 64 + col)).to_bytes(self.height * 8, "little"))
        self.blocks.append((1 << (col * 64 + row)).to_bytes(self.width * 8, "little"))
        self.probe_parts.append(_np.zeros((4, 2), dtype="<u8"))
        index = self.rows
        self.rows += 1
        return index

    def finish(self):
        self.blocks.append(bytes(_GUARD_ROWS * self.span * 8))
        self.probe_parts.append(_np.zeros((_GUARD_ROWS * 4, 2), dtype="<u8"))
        total = self.rows + _GUARD_ROWS
        # frombuffer gives a readonly view over the joined bytes — fine,
        # the master matrix is only ever gathered from, never written.
        matrix = _np.frombuffer(b"".join(self.blocks), dtype="<u8").reshape(
            total, self.span
        )
        flat = _np.concatenate(self.probe_parts)
        probe_off = flat[:, 0].astype(_np.int64).reshape(total, 4)
        probe_mask = _np.ascontiguousarray(flat[:, 1]).reshape(total, 4)
        return matrix, probe_off, probe_mask


class _PlacementPlans:
    """Per-(circuit, placement) route-plan resolution, shared across configs.

    ``kind``/``block``/``length`` are per-gate arrays describing how to
    attempt each gate; star gates additionally get per-leg candidate
    blocks (``star_start``/``star_len``), a control-cell row
    (``star_ctrl``), and a big-int tuple in ``stars`` for the scalar
    paths.  ``degenerate`` marks a star with a leg whose endpoints
    coincide — the router's source==target special case — which sends the
    whole point down the scalar fallback.
    """

    __slots__ = (
        "kind",
        "block",
        "length",
        "pairs",
        "stars",
        "star_start",
        "star_len",
        "star_ctrl",
        "degenerate",
    )

    def __init__(self, shared: _Shared, mesh: Mesh, plans: _PlanCache,
                 matrix: _MatrixBuilder) -> None:
        n = shared.n
        max_legs = shared.max_legs
        qubit_cell = mesh.qubit_cells
        kind = [0] * n
        block = [0] * n
        length = [0] * n
        self.pairs: List[Optional[_PairPlan]] = [None] * n
        self.stars: Dict[int, tuple] = {}
        self.degenerate = False
        star_start = star_len = star_ctrl = None
        if max_legs:
            star_start = _np.zeros((n, max_legs), dtype=_np.int64)
            star_len = _np.zeros((n, max_legs), dtype=_np.int64)
            star_ctrl = _np.zeros(n, dtype=_np.int64)
        wanted = []
        seen_pairs = set()
        for gate in range(n):
            if not shared.braided[gate]:
                continue
            qubits = shared.qubits[gate]
            if shared.is_star[gate]:
                control_cell = qubit_cell[qubits[0]]
                endpoint_pairs = [
                    (control_cell, qubit_cell[target]) for target in qubits[1:]
                ]
            else:
                endpoint_pairs = [(qubit_cell[qubits[0]], qubit_cell[qubits[1]])]
            for endpoints in endpoint_pairs:
                if endpoints not in seen_pairs:
                    seen_pairs.add(endpoints)
                    wanted.append(endpoints)
        plans.prefetch(mesh, wanted)
        for gate in range(n):
            if not shared.braided[gate]:
                continue
            qubits = shared.qubits[gate]
            if shared.is_star[gate]:
                control_cell = qubit_cell[qubits[0]]
                legs = []
                for target in qubits[1:]:
                    target_cell = qubit_cell[target]
                    if target_cell == control_cell:
                        self.degenerate = True
                        return
                    legs.append(plans.pair(mesh, control_cell, target_cell))
                kind[gate] = _KIND_STAR
                for leg_index, leg in enumerate(legs):
                    star_start[gate, leg_index] = matrix.register(leg)
                    star_len[gate, leg_index] = leg.count
                row, col = control_cell
                star_ctrl[gate] = matrix.register_cell(row, col)
                self.stars[gate] = (1 << (row * 64 + col), tuple(legs))
            else:
                plan = plans.pair(
                    mesh, qubit_cell[qubits[0]], qubit_cell[qubits[1]]
                )
                kind[gate] = _KIND_PAIR
                block[gate] = matrix.register(plan)
                length[gate] = plan.count
                self.pairs[gate] = plan
        self.kind = _np.asarray(kind, dtype=_np.int8)
        self.block = _np.asarray(block, dtype=_np.int64)
        self.length = _np.asarray(length, dtype=_np.int64)
        self.star_start = star_start
        self.star_len = star_len
        self.star_ctrl = star_ctrl


class _Point:
    """Per-point simulation state inside a vectorized group."""

    __slots__ = (
        "k",
        "config",
        "placement",
        "mc",
        "plans",
        "attempt",
        "locked_int",
        "finished",
    )

    def __init__(self, k: int, config: SimulatorConfig, placement: Placement,
                 plans: _PlacementPlans) -> None:
        self.k = k
        self.config = config
        self.placement = placement
        self.mc = max(1, config.max_candidates)
        self.plans = plans
        self.attempt: List[int] = []
        self.locked_int: Optional[int] = None  # materialized for scalar paths
        self.finished = False


# ----------------------------------------------------------------------
# The vectorized group engine
# ----------------------------------------------------------------------
class _ArrayGroup:
    """Runs K same-circuit points through one array-level event loop."""

    def __init__(self, shared: _Shared, points: List[_Point],
                 matrix: _MatrixBuilder, durations: List[List[int]]) -> None:
        self.shared = shared
        self.points = points
        K = len(points)
        n = shared.n
        self.K = K
        self.n = n
        self.height = matrix.height
        self.span = matrix.span
        self.M, self.probe_off, self.probe_mask = matrix.finish()
        if hasattr(_np, "bitwise_count"):
            row_part = self.M[:, : self.height]
            self.POPS = _np.bitwise_count(row_part).sum(axis=1, dtype=_np.int64)
            self._popcount_rows = lambda rows: _np.bitwise_count(
                rows[:, : self.height]
            ).sum(axis=1, dtype=_np.int64)
        else:  # pragma: no cover - numpy < 2.0
            height = self.height

            def _pops(rows):
                return _np.asarray(
                    [
                        int.from_bytes(row[:height].tobytes(), "little").bit_count()
                        for row in rows
                    ],
                    dtype=_np.int64,
                )

            self.POPS = _pops(self.M)
            self._popcount_rows = _pops

        self.locked = _np.zeros((K, self.span), dtype="<u8")
        self.freed = _np.zeros((K, self.span), dtype="<u8")

        # Flat per-(point, gate) state, indexed k * n + gate.
        self.kind = _np.concatenate([p.plans.kind for p in points])
        self.block = _np.concatenate([p.plans.block for p in points])
        self.count = _np.concatenate(
            [_np.minimum(p.plans.length, p.mc) for p in points]
        )
        if shared.max_legs:
            self.star_start = _np.concatenate(
                [p.plans.star_start for p in points]
            )
            self.star_count = _np.concatenate(
                [_np.minimum(p.plans.star_len, p.mc) for p in points]
            )
            self.star_ctrl = _np.concatenate([p.plans.star_ctrl for p in points])
        else:
            self.star_start = self.star_count = self.star_ctrl = None
        self.dur = _np.concatenate(
            [_np.asarray(d, dtype=_np.int64) for d in durations]
        )
        self.start = _np.full(K * n, -1, dtype=_np.int64)
        self.end = _np.full(K * n, -1, dtype=_np.int64)
        self.ready = _np.zeros(K * n, dtype=_np.int64)
        self.remaining = _np.tile(
            _np.asarray(shared.pred_count, dtype=_np.int64), K
        )
        self.first_stall = _np.full(K * n, -1, dtype=_np.int64)
        self.park_gen = _np.zeros(K * n, dtype=_np.int64)
        self.park_rows = _np.zeros(K * n, dtype=_np.int64)
        self.choice = _np.full(K * n, -1, dtype=_np.int64)

        # Per-point counters.
        self.scan_k = _np.zeros(K, dtype=_np.int64)
        self.completed_k = _np.zeros(K, dtype=_np.int64)
        self.stall_events_k = _np.zeros(K, dtype=_np.int64)
        self.distinct_k = _np.zeros(K, dtype=_np.int64)
        self.wakeups_k = _np.zeros(K, dtype=_np.int64)
        self.cells_k = _np.zeros(K, dtype=_np.int64)
        self.braids_k = _np.zeros(K, dtype=_np.int64)
        self.conc_k = _np.zeros(K, dtype=_np.int64)
        self.max_conc_k = _np.zeros(K, dtype=_np.int64)
        self.active_k = _np.zeros(K, dtype=_np.int64)
        self.parked_k = _np.zeros(K, dtype=_np.int64)
        self.max_cycles_k = _np.asarray(
            [p.config.max_cycles for p in points], dtype=_np.int64
        )

        # Rows of braids issued outside the master matrix (star composites):
        # (k, gate) -> dual-representation uint64 row, popped at retirement.
        self.big_rows: Dict[Tuple[int, int], object] = {}

        # Calendar of retirement events: end time -> ([ks], [gates]).
        self.calendar: Dict[int, Tuple[List[int], List[int]]] = {}
        self.times: List[int] = []

        # Sparse watch pool: one row per (parked gate, blocked candidate).
        cap = 1024
        self.pool_flat = _np.zeros(cap, dtype=_np.int64)
        self.pool_word = _np.zeros(cap, dtype="<u8")
        self.pool_idx = _np.zeros(cap, dtype=_np.int64)  # k * n + gate
        self.pool_gen = _np.zeros(cap, dtype=_np.int64)
        self.pool_size = 0
        self.pool_live = 0

        self.live = K
        self._freed_ks: List[int] = []

    # -- small helpers -------------------------------------------------
    def _calendar_add_arrays(self, ends, ks, gates) -> None:
        """File vectorized issues into the retirement calendar."""
        calendar = self.calendar
        for end in _np.unique(ends).tolist():
            mask = ends == end
            bucket = calendar.get(end)
            if bucket is None:
                calendar[end] = (ks[mask].tolist(), gates[mask].tolist())
                heapq.heappush(self.times, end)
            else:
                bucket[0].extend(ks[mask].tolist())
                bucket[1].extend(gates[mask].tolist())

    def _calendar_add_one(self, end: int, k: int, gate: int) -> None:
        bucket = self.calendar.get(end)
        if bucket is None:
            self.calendar[end] = ([k], [gate])
            heapq.heappush(self.times, end)
        else:
            bucket[0].append(k)
            bucket[1].append(gate)

    def _pool_reserve(self, extra: int) -> None:
        needed = self.pool_size + extra
        cap = len(self.pool_flat)
        if needed <= cap:
            return
        while cap < needed:
            cap *= 2
        for name in ("pool_flat", "pool_word", "pool_idx", "pool_gen"):
            old = getattr(self, name)
            grown = _np.zeros(cap, dtype=old.dtype)
            grown[: self.pool_size] = old[: self.pool_size]
            setattr(self, name, grown)

    def _pool_compact(self) -> None:
        """Drop rows whose generation no longer matches (woken/re-parked)."""
        size = self.pool_size
        keep = self.park_gen[self.pool_idx[:size]] == self.pool_gen[:size]
        count = int(keep.sum())
        for name in ("pool_flat", "pool_word", "pool_idx", "pool_gen"):
            arr = getattr(self, name)
            arr[:count] = arr[:size][keep]
        self.pool_size = count
        self.pool_live = count

    # -- the main loop -------------------------------------------------
    def run(self) -> List[SimulationResult]:
        points = self.points
        for point in points:
            point.attempt = list(self.shared.roots)
        self._attempt_phase(points, 0)
        self._check_idle(points)
        while self.live:
            if not self.times:
                break
            now = heapq.heappop(self.times)
            bucket = self.calendar.pop(now, None)
            if not bucket:
                continue
            touched = self._retire(bucket, now)
            self._wake()
            self._attempt_phase([p for p in touched if p.attempt], now)
            self._check_idle(touched)
        return [self._result(point) for point in points]

    # -- retire --------------------------------------------------------
    def _retire(self, bucket: Tuple[List[int], List[int]], now: int) -> List[_Point]:
        points = self.points
        n = self.n
        k_arr = _np.asarray(bucket[0], dtype=_np.int64)
        g_arr = _np.asarray(bucket[1], dtype=_np.int64)
        idx = k_arr * n + g_arr

        touched_ks = _np.unique(k_arr)
        self.scan_k[touched_ks] += 1
        counts_k = _np.bincount(k_arr, minlength=self.K)
        self.active_k -= counts_k
        self.completed_k += counts_k
        # ``simulate()`` checks max_cycles at the top of its loop, i.e. the
        # last event time only raises for a point that still has unfinished
        # gates after processing that event's retirements.
        over = touched_ks[
            (self.completed_k[touched_ks] < n)
            & (now > self.max_cycles_k[touched_ks])
        ]
        if over.size:
            limit = int(self.max_cycles_k[over[0]])
            raise RuntimeError(f"simulation exceeded max_cycles={limit}")

        kinds = self.kind[idx]
        braided = kinds != _KIND_PLAIN
        freed_ks: List[int] = []
        if braided.any():
            k_br = k_arr[braided]
            idx_br = idx[braided]
            choices = self.choice[idx_br]
            from_matrix = choices >= 0
            if from_matrix.any():
                rows = self.M[self.block[idx_br[from_matrix]] + choices[from_matrix]]
                _np.bitwise_or.at(self.freed, k_br[from_matrix], rows)
            if not from_matrix.all():
                big_rows = self.big_rows
                for k, gate in zip(
                    k_br[~from_matrix].tolist(), g_arr[braided][~from_matrix].tolist()
                ):
                    self.freed[k] |= big_rows.pop((k, gate))
            _np.subtract.at(self.conc_k, k_br, 1)
            freed_ks = _np.unique(k_br).tolist()
            self.locked[freed_ks] &= ~self.freed[freed_ks]
            for k in freed_ks:
                points[k].locked_int = None  # big-int mirror is stale
        self._freed_ks = freed_ks

        # Dependency bookkeeping for every retired gate's successors.
        cnt = self.shared.succ_cnt[g_arr]
        total = int(cnt.sum())
        if total:
            cum = _np.cumsum(cnt)
            starts = self.shared.succ_off[g_arr]
            offsets = _np.repeat(starts - (cum - cnt), cnt) + _np.arange(total)
            succs = self.shared.succ_flat[offsets]
            owner = _np.repeat(k_arr, cnt)
            sidx = owner * n + succs
            _np.subtract.at(self.remaining, sidx, 1)
            _np.maximum.at(self.ready, sidx, now)
            newly = _np.unique(sidx[self.remaining[sidx] == 0])
            for flat in newly.tolist():
                points[flat // n].attempt.append(flat % n)
        return [points[k] for k in touched_ks.tolist()]

    # -- wake ----------------------------------------------------------
    def _wake(self) -> None:
        freed_ks = self._freed_ks
        size = self.pool_size
        if freed_ks and size:
            hits = (
                self.freed.reshape(-1)[self.pool_flat[:size]]
                & self.pool_word[:size]
            )
            nzi = _np.nonzero(hits)[0]
            if nzi.size:
                cand_idx = self.pool_idx[nzi]
                valid = self.park_gen[cand_idx] == self.pool_gen[nzi]
                woken = _np.unique(cand_idx[valid])
                if woken.size:
                    self.park_gen[woken] += 1
                    ks = woken // self.n
                    counts = _np.bincount(ks, minlength=self.K)
                    self.parked_k -= counts
                    self.wakeups_k += counts
                    self.pool_live -= int(self.park_rows[woken].sum())
                    points = self.points
                    n = self.n
                    for flat in woken.tolist():
                        points[flat // n].attempt.append(flat % n)
        if freed_ks:
            # Always consume the freed scratch rows, even with an empty
            # watch pool: stale bits would make the *next* retirement's
            # ``locked &= ~freed`` clear cells of braids issued since.
            self.freed[freed_ks] = 0
        if size > 512 and self.pool_live * 2 < size:
            self._pool_compact()

    # -- idle / finish -------------------------------------------------
    def _check_idle(self, candidates: List[_Point]) -> None:
        active = self.active_k
        parked = self.parked_k
        for point in candidates:
            if point.finished or active[point.k]:
                continue
            if parked[point.k]:
                raise RoutingDeadlockError(
                    f"{int(parked[point.k])} gates cannot be routed on an "
                    f"otherwise idle mesh"
                )
            point.finished = True
            self.live -= 1

    # -- the attempt phase ---------------------------------------------
    def _attempt_phase(self, step_points: List[_Point], now: int) -> None:
        """Consume every pending attempt of ``step_points`` at time ``now``.

        Non-braided gates issue first in one vectorized batch (their issue
        cannot change any braided verdict).  Braided attempts then go
        through full-depth waves (see the module docstring); a small
        residue finishes through the scalar sequential loop.
        """
        if not step_points:
            return
        all_k: List[int] = []
        all_g: List[int] = []
        for point in step_points:
            order = sorted(point.attempt)
            point.attempt.clear()
            all_g.extend(order)
            all_k.extend([point.k] * len(order))
        k_at = _np.asarray(all_k, dtype=_np.int64)
        g_at = _np.asarray(all_g, dtype=_np.int64)
        kinds = self.kind[k_at * self.n + g_at]
        braided = kinds != _KIND_PLAIN
        if not braided.all():
            plain = ~braided
            self._issue_plain(k_at[plain], g_at[plain], now)
            k_at = k_at[braided]
            g_at = g_at[braided]
        while k_at.size:
            if k_at.size <= _TAIL_ATTEMPTS:
                self._scalar_tail(k_at.tolist(), g_at.tolist(), now)
                return
            k_at, g_at = self._wave(k_at, g_at, now)

    def _issue_plain(self, k_arr, g_arr, now: int) -> None:
        """Issue all pending non-braided gates of the step in one batch."""
        idx = k_arr * self.n + g_arr
        ends = now + self.dur[idx]
        self.start[idx] = now
        self.end[idx] = ends
        self.active_k += _np.bincount(k_arr, minlength=self.K)
        # Non-braided gates never park, so no stall accounting applies.
        self._calendar_add_arrays(ends, k_arr, g_arr)

    def _probe(self, owners, cand):
        """Conflict test for candidate rows: 4 word probes per candidate.

        ``owners`` broadcasts against ``cand`` (candidate row indices); the
        result tuple is (hit words, hit?, probe offsets) with a trailing
        probe axis.
        """
        off = self.probe_off[cand]
        locked_flat = self.locked.reshape(-1)
        gathered = locked_flat[
            (owners * self.span).reshape(
                owners.shape + (1,) * (cand.ndim - owners.ndim + 1)
            )
            + off
        ]
        hit = gathered & self.probe_mask[cand]
        return hit, hit != _np.uint64(0), off

    def _watch_cells(self, hit, nz, off):
        """Lowest blocked cell per candidate, in padded row-major order.

        Row probes watch cell ``off * 64 + ctz(hit)``; column probes watch
        ``ctz(hit) * 64 + (off - height)``.  The minimum over the probe
        axis is the candidate's watch cell (lowbit of the full overlap).
        """
        low = hit & (_np.zeros_like(hit) - hit)
        ctz = _np.bitwise_count(low - _np.uint64(1)).astype(_np.int64)
        is_row = off < self.height
        cell = _np.where(is_row, off * 64 + ctz, ctz * 64 + (off - self.height))
        cell = _np.where(nz, cell, _NO_CELL)
        return cell.min(axis=-1)

    def _wave(self, k_at, g_at, now: int):
        """One wave over a prefix of each point's remaining attempts.

        Verdicts are computed against start-of-wave occupancy, which stays
        exact for every attempt up to and including a point's first issue
        (earlier parks don't change occupancy).  Each wave therefore tests
        only the first :data:`_WAVE_PREFIX` attempts per point — testing
        deeper is wasted work whenever an issue lands, since post-issue
        verdicts must be recomputed anyway — commits every pre-first-issue
        park and the first issue per point, and returns the untouched rest
        (later prefix attempts and the deferred suffix, in order) for the
        next wave.
        """
        n = self.n
        A = k_at.size
        pos = _np.arange(A)
        change = _np.empty(A, dtype=bool)
        change[0] = True
        change[1:] = k_at[1:] != k_at[:-1]
        seg = _np.cumsum(change) - 1
        seg_first = pos[change]
        selected = (pos - seg_first[seg]) < _WAVE_PREFIX
        full = bool(selected.all())
        if full:
            k_sel, g_sel, pos_sel, seg_sel = k_at, g_at, pos, seg
        else:
            k_sel = k_at[selected]
            g_sel = g_at[selected]
            pos_sel = pos[selected]
            seg_sel = seg[selected]
        S = k_sel.size
        idx = k_sel * n + g_sel
        kinds = self.kind[idx]

        star_sel = kinds == _KIND_STAR
        any_stars = bool(star_sel.any())
        has_free = _np.empty(S, dtype=bool)

        # Pair verdicts: (attempts, candidates, 4 probes) in one gather.
        ppos = _np.nonzero(~star_sel)[0] if any_stars else _np.arange(S)
        if ppos.size:
            pidx = idx[ppos]
            p_starts = self.block[pidx]
            p_counts = self.count[pidx]
            cmax = int(p_counts.max())
            col = _np.arange(cmax)
            p_cand = p_starts[:, None] + col
            hit, nz, off = self._probe(k_sel[ppos], p_cand)
            blocked = nz.any(axis=2)
            p_valid = col < p_counts[:, None]
            p_open = ~blocked & p_valid
            p_free = p_open.any(axis=1)
            p_choice = p_open.argmax(axis=1)
            has_free[ppos] = p_free

        # Star verdicts: every leg tests against the same occupancy, so
        # the same gather with a leg axis.  Padding lanes read guard row 0.
        if any_stars:
            spos = _np.nonzero(star_sel)[0]
            sidx = idx[spos]
            leg_start = self.star_start[sidx]        # (S, L)
            leg_count = self.star_count[sidx]        # (S, L)
            scmax = int(leg_count.max())
            scol = _np.arange(scmax)
            s_cand = leg_start[:, :, None] + scol
            s_hit, s_nz, s_off = self._probe(k_sel[spos], s_cand)
            s_blocked = s_nz.any(axis=3)
            s_valid = scol < leg_count[:, :, None]
            s_open = ~s_blocked & s_valid
            leg_free = s_open.any(axis=2)            # (S, L)
            leg_used = leg_count > 0
            s_free = (leg_free | ~leg_used).all(axis=1)
            s_choice = s_open.argmax(axis=2)         # (S, L)
            has_free[spos] = s_free

        # Per point (a contiguous segment of the attempt arrays), find the
        # first successful attempt; everything before it parks, everything
        # after it retries next wave.
        first = _np.full(int(seg[-1]) + 1, A, dtype=_np.int64)
        _np.minimum.at(first, seg_sel, _np.where(has_free, pos_sel, A))
        first_pos = first[seg_sel]
        is_park = pos_sel < first_pos
        is_issue = pos_sel == first_pos

        if ppos.size:
            sel = is_issue[ppos]
            ji = _np.nonzero(sel)[0]
            if ji.size:
                ki = k_sel[ppos[ji]]
                idxi = pidx[ji]
                ci = p_choice[ji]
                row_idx = p_starts[ji] + ci
                self.locked[ki] |= self.M[row_idx]
                self.choice[idxi] = ci
                self.cells_k[ki] += self.POPS[row_idx]
                self._issue_braids(ki, g_sel[ppos[ji]], idxi, now)
            sel = is_park[ppos]
            jp = _np.nonzero(sel)[0]
            if jp.size:
                kp = k_sel[ppos[jp]]
                cells = self._watch_cells(hit[jp], nz[jp], off[jp])
                lane = p_valid[jp]
                picked = cells[lane]
                self._park_batch(
                    kp,
                    pidx[jp],
                    (kp[:, None] * self.span + (cells >> 6))[lane],
                    _np.uint64(1) << (picked & 63).astype(_np.uint64),
                    p_counts[jp],
                )

        if any_stars:
            sel = is_issue[spos]
            js = _np.nonzero(sel)[0]
            if js.size:
                ks = k_sel[spos[js]]
                idxs = sidx[js]
                gates = g_sel[spos[js]]
                composed = _np.bitwise_or.reduce(
                    self.M[leg_start[js] + s_choice[js]], axis=1
                )
                composed |= self.M[self.star_ctrl[idxs]]
                self.locked[ks] |= composed
                self.cells_k[ks] += self._popcount_rows(composed)
                self._issue_braids(ks, gates, idxs, now)
                big_rows = self.big_rows
                for j, k, gate in zip(
                    range(js.size), ks.tolist(), gates.tolist()
                ):
                    big_rows[(k, gate)] = composed[j]
            sel = is_park[spos]
            jp = _np.nonzero(sel)[0]
            if jp.size:
                ksp = k_sel[spos[jp]]
                # Park on the first failing leg, watching that leg's
                # lowest blocking cell per candidate.
                fail_leg = _np.argmax(leg_used[jp] & ~leg_free[jp], axis=1)
                lane0 = _np.arange(jp.size)
                cells = self._watch_cells(
                    s_hit[jp][lane0, fail_leg],
                    s_nz[jp][lane0, fail_leg],
                    s_off[jp][lane0, fail_leg],
                )
                leg_cnt = leg_count[jp][lane0, fail_leg]
                lane = _np.arange(cells.shape[1]) < leg_cnt[:, None]
                picked = cells[lane]
                self._park_batch(
                    ksp,
                    sidx[jp],
                    (ksp[:, None] * self.span + (cells >> 6))[lane],
                    _np.uint64(1) << (picked & 63).astype(_np.uint64),
                    leg_cnt,
                )

        keep = pos > first[seg]
        if not full:
            keep |= ~selected
        return k_at[keep], g_at[keep]

    def _issue_braids(self, ki, gi, idxi, now: int) -> None:
        """Shared issue bookkeeping; ``ki`` holds at most one row per point."""
        self.braids_k[ki] += 1
        conc = self.conc_k[ki] + 1
        self.conc_k[ki] = conc
        self.max_conc_k[ki] = _np.maximum(self.max_conc_k[ki], conc)
        first = self.first_stall[idxi]
        stalled = first >= 0
        if stalled.any():
            ks = ki[stalled]
            self.stall_events_k[ks] += self.scan_k[ks] - first[stalled]
        ends = now + self.dur[idxi]
        self.start[idxi] = now
        self.end[idxi] = ends
        self.active_k[ki] += 1
        self._calendar_add_arrays(ends, ki, gi)
        points = self.points
        for k in ki.tolist():
            points[k].locked_int = None

    def _park_batch(self, kp, idxp, flat, bits, rows_per) -> None:
        """Shared park bookkeeping; ``kp`` may repeat a point (several
        pre-issue parks of one point in one wave)."""
        gens = self.park_gen[idxp] + 1
        self.park_gen[idxp] = gens
        self.park_rows[idxp] = rows_per
        first = self.first_stall[idxp]
        fresh = first < 0
        if fresh.any():
            kf = kp[fresh]
            self.first_stall[idxp[fresh]] = self.scan_k[kf]
            _np.add.at(self.distinct_k, kf, 1)
        _np.add.at(self.parked_k, kp, 1)
        total = int(flat.size)
        self._pool_reserve(total)
        s = self.pool_size
        e = s + total
        self.pool_flat[s:e] = flat
        self.pool_word[s:e] = bits
        self.pool_idx[s:e] = _np.repeat(idxp, rows_per)
        self.pool_gen[s:e] = _np.repeat(gens, rows_per)
        self.pool_size = e
        self.pool_live += total

    # -- scalar paths (small tails) --------------------------------------
    def _locked_int(self, point: _Point) -> int:
        if point.locked_int is None:
            point.locked_int = int.from_bytes(
                self.locked[point.k, : self.height].tobytes(), "little"
            )
        return point.locked_int

    def _scalar_tail(self, k_list: List[int], g_list: List[int], now: int) -> None:
        """Consume a small attempt residue with the scalar big-int loop.

        The flat attempt arrays keep each point's attempts contiguous and
        ordered, so a linear walk preserves per-point program order;
        points never share occupancy, so their interleave is irrelevant.
        All big-int masks live in the padded 64-bit-row cell space, which
        preserves row-major cell order (and therefore watch lowbits).
        """
        n = self.n
        kind = self.kind
        points = self.points
        for k, gate in zip(k_list, g_list):
            point = points[k]
            flat = k * n + gate
            if kind[flat] == _KIND_STAR:
                self._scalar_star(point, gate, now)
                continue
            locked = self._locked_int(point)
            plan = point.plans.pairs[gate]
            candidates = plan.masks[: int(self.count[flat])]
            if not locked:
                self._scalar_issue_pair(point, gate, now, candidates[0], 0)
                continue
            chosen = -1
            watch = 0
            for index, candidate in enumerate(candidates):
                hit = candidate & locked
                if not hit:
                    chosen = index
                    break
                watch |= hit & -hit
            if chosen >= 0:
                self._scalar_issue_pair(point, gate, now, candidates[chosen], chosen)
            else:
                self._scalar_park(point, gate, watch)

    def _scalar_star(self, point: _Point, gate: int, now: int) -> None:
        """Exact ``route_star_masked`` replica against live occupancy."""
        control_bit, legs = point.plans.stars[gate]
        locked = self._locked_int(point)
        mc = point.mc
        mask = control_bit
        choices: List[int] = []
        routed = True
        for leg in legs:
            candidates = leg.masks[:mc]
            if not locked:
                mask |= candidates[0]
                choices.append(0)
                continue
            leg_choice = -1
            watch = 0
            for index, candidate in enumerate(candidates):
                hit = candidate & locked
                if not hit:
                    leg_choice = index
                    mask |= candidate
                    break
                watch |= hit & -hit
            if leg_choice < 0:
                routed = False
                mask = watch
                break
            choices.append(leg_choice)
        if not routed:
            self._scalar_park(point, gate, mask)
            return
        k = point.k
        flat = k * self.n + gate
        # Compose the dual-representation row from the chosen legs.
        row = self.M[int(self.star_ctrl[flat])].copy()
        leg_starts = self.star_start[flat]
        for leg_index, leg_choice in enumerate(choices):
            row |= self.M[int(leg_starts[leg_index]) + leg_choice]
        self.big_rows[(k, gate)] = row
        self.locked[k] |= row
        point.locked_int = locked | mask
        self._scalar_issue_common(point, gate, now, _popcount(mask))

    def _scalar_issue_pair(self, point: _Point, gate: int, now: int,
                           big: int, chosen: int) -> None:
        k = point.k
        flat = k * self.n + gate
        point.locked_int = self._locked_int(point) | big
        self.choice[flat] = chosen
        row_idx = int(self.block[flat]) + chosen
        self.locked[k] |= self.M[row_idx]
        self._scalar_issue_common(point, gate, now, int(self.POPS[row_idx]))

    def _scalar_issue_common(self, point: _Point, gate: int, now: int,
                             pop: int) -> None:
        k = point.k
        flat = k * self.n + gate
        self.cells_k[k] += pop
        self.braids_k[k] += 1
        conc = int(self.conc_k[k]) + 1
        self.conc_k[k] = conc
        if conc > self.max_conc_k[k]:
            self.max_conc_k[k] = conc
        first = int(self.first_stall[flat])
        if first >= 0:
            self.stall_events_k[k] += int(self.scan_k[k]) - first
        end = now + int(self.dur[flat])
        self.start[flat] = now
        self.end[flat] = end
        self.active_k[k] += 1
        self._calendar_add_one(end, k, gate)

    def _scalar_park(self, point: _Point, gate: int, watch: int) -> None:
        k = point.k
        flat = k * self.n + gate
        if self.first_stall[flat] < 0:
            self.first_stall[flat] = self.scan_k[k]
            self.distinct_k[k] += 1
        gen = int(self.park_gen[flat]) + 1
        self.park_gen[flat] = gen
        self.parked_k[k] += 1
        base = k * self.span
        rows: List[Tuple[int, int]] = []
        while watch:
            low = watch & -watch
            watch ^= low
            bit = low.bit_length() - 1
            rows.append((base + (bit >> 6), 1 << (bit & 63)))
        self.park_rows[flat] = len(rows)
        total = len(rows)
        self._pool_reserve(total)
        s = self.pool_size
        for offset, (flat_word, bits) in enumerate(rows):
            self.pool_flat[s + offset] = flat_word
            self.pool_word[s + offset] = bits
            self.pool_idx[s + offset] = flat
            self.pool_gen[s + offset] = gen
        self.pool_size = s + total
        self.pool_live += total

    # -- result assembly -----------------------------------------------
    def _result(self, point: _Point) -> SimulationResult:
        n = self.n
        base = point.k * n
        start = self.start[base: base + n]
        end = self.end[base: base + n]
        ready = self.ready[base: base + n]
        issued = start >= 0
        stall_cycles = int(
            _np.maximum(0, (start - ready)[issued]).sum()
        )
        return SimulationResult(
            latency=int(end.max()) if n else 0,
            area=point.placement.area,
            gate_start=start.tolist(),
            gate_end=end.tolist(),
            stall_cycles=stall_cycles,
            stall_events=int(self.stall_events_k[point.k]),
            braided_gates=int(self.braids_k[point.k]),
            max_concurrent_braids=int(self.max_conc_k[point.k]),
            total_braid_cells=int(self.cells_k[point.k]),
            distinct_stalls=int(self.distinct_k[point.k]),
            wakeups=int(self.wakeups_k[point.k]),
        )


# ----------------------------------------------------------------------
# The compiled kernel path
# ----------------------------------------------------------------------
def _row_popcounts(matrix, height: int):
    """Popcount of each row's row-major part (cells, not column mirrors)."""
    if hasattr(_np, "bitwise_count"):
        return _np.bitwise_count(matrix[:, :height]).sum(
            axis=1, dtype=_np.int64
        )
    return _np.asarray(  # pragma: no cover - numpy < 2.0
        [
            int.from_bytes(row[:height].tobytes(), "little").bit_count()
            for row in matrix
        ],
        dtype=_np.int64,
    )


def _run_kernel_group(kern, shared: _Shared, points: List[_Point],
                      matrix: _MatrixBuilder,
                      durations: List[List[int]]) -> List[SimulationResult]:
    """Run a group's points through the compiled per-point event loop.

    The group preparation (master candidate matrix, probe tables, plan
    dedup) is shared exactly as in the vectorized engine; each point's
    event loop then runs in C over the same tables.
    """
    M, probe_off, probe_mask = matrix.finish()
    height = matrix.height
    span = matrix.span
    pops = _row_popcounts(M, height)
    n = shared.n
    pred = _np.asarray(shared.pred_count, dtype=_np.int64)
    dummy = _np.zeros(1, dtype=_np.int64)
    kind_cache: Dict[int, object] = {}
    results: List[SimulationResult] = []
    for point, dur_list in zip(points, durations):
        plans = point.plans
        kind64 = kind_cache.get(id(plans))
        if kind64 is None:
            kind64 = plans.kind.astype(_np.int64)
            kind_cache[id(plans)] = kind64
        count = _np.minimum(plans.length, point.mc)
        if shared.max_legs:
            star_start = plans.star_start
            star_count = _np.minimum(plans.star_len, point.mc)
            star_ctrl = plans.star_ctrl
        else:
            star_start = star_count = star_ctrl = dummy
        dur = _np.asarray(dur_list, dtype=_np.int64)
        gate_start = _np.empty(n, dtype=_np.int64)
        gate_end = _np.empty(n, dtype=_np.int64)
        ready = _np.empty(n, dtype=_np.int64)
        counters = _np.zeros(_kernel.COUNTER_SLOTS, dtype=_np.int64)
        code = kern.simulate_point(
            n, kind64, dur, plans.block, count, shared.max_legs,
            star_start, star_count, star_ctrl,
            shared.succ_flat, shared.succ_off, pred,
            M, probe_off, probe_mask, pops,
            span, height, point.config.max_cycles,
            gate_start, gate_end, ready, counters,
        )
        if code == _kernel.MAX_CYCLES_EXCEEDED:
            raise RuntimeError(
                f"simulation exceeded max_cycles={point.config.max_cycles}"
            )
        if code == _kernel.DEADLOCK:
            raise RoutingDeadlockError(
                f"{int(counters[0])} gates cannot be routed on an "
                f"otherwise idle mesh"
            )
        if code != _kernel.OK:  # pragma: no cover - allocation failure
            raise RuntimeError(f"batchsim kernel failed with code {code}")
        results.append(SimulationResult(
            latency=int(counters[8]),
            area=point.placement.area,
            gate_start=gate_start.tolist(),
            gate_end=gate_end.tolist(),
            stall_cycles=int(counters[7]),
            stall_events=int(counters[1]),
            braided_gates=int(counters[2]),
            max_concurrent_braids=int(counters[3]),
            total_braid_cells=int(counters[4]),
            distinct_stalls=int(counters[5]),
            wakeups=int(counters[6]),
        ))
    return results


# ----------------------------------------------------------------------
# Public entry point
# ----------------------------------------------------------------------
def _needs_scalar_config(config: SimulatorConfig) -> bool:
    """Configs whose routes take the router's special paths."""
    return config.allow_detour or bool(config.hops)


def kernel_available() -> bool:
    """Whether the compiled kernel engine can run in this environment."""
    return _np is not None and _kernel.available()


def simulate_batch(
    requests: Sequence[BatchPoint],
    engine: str = "auto",
) -> List[SimulationResult]:
    """Simulate many (circuit, placement, config) points, batched.

    ``requests`` is a sequence of ``(circuit_or_gates, placement, config)``
    triples (``config`` may be ``None`` for the default).  Requests are
    grouped by circuit content; each group of K > 1 batchable points runs
    through the vectorized group engine when numpy is available, sharing
    the circuit preparation and route plans and advancing all points per
    event-loop step.  Results come back in request order and are
    byte-identical to per-request :func:`~repro.routing.simulator.simulate`
    calls.

    ``engine`` selects the path: ``"auto"`` (compiled kernel when
    available, else vectorize when possible), ``"compiled"`` (require the
    C kernel, raise :class:`RuntimeError` when it cannot be built),
    ``"vector"`` (require numpy, raise :class:`RuntimeError` without it),
    or ``"scalar"`` (always fall back to per-request ``simulate``).
    """
    if engine not in ("auto", "compiled", "vector", "scalar"):
        raise ValueError(f"unknown batch engine {engine!r}")
    if engine == "vector" and _np is None:
        raise RuntimeError("engine='vector' requires numpy, which is not installed")
    if engine == "compiled":
        if _np is None:
            raise RuntimeError(
                "engine='compiled' requires numpy, which is not installed"
            )
        if not _kernel.available():
            raise RuntimeError(
                "engine='compiled' requires a working C compiler to build "
                "the simulator kernel"
            )

    normalized: List[Tuple[object, Placement, SimulatorConfig]] = []
    for request in requests:
        circuit_or_gates, placement, config = request
        normalized.append(
            (circuit_or_gates, placement, config or SimulatorConfig())
        )

    results: List[Optional[SimulationResult]] = [None] * len(normalized)
    use_vector = engine != "scalar" and _np is not None

    if not use_vector:
        for index, (circ, placement, config) in enumerate(normalized):
            results[index] = simulate(circ, placement, config)
        return results  # type: ignore[return-value]

    # The compiled kernel, when buildable, both generates route plans
    # (all engines) and runs the per-point event loop (auto/compiled).
    kern = _kernel.load()
    use_kernel_loop = kern is not None and engine in ("auto", "compiled")

    # Group same-circuit requests; keep gate tuples so one-shot iterables
    # are read exactly once.  Sweeps typically pass the same circuit (or
    # gate tuple) object for every point, so memoize the content
    # fingerprint by object identity.
    groups: Dict[str, List[int]] = {}
    gate_lists: List[tuple] = []
    fp_by_id: Dict[int, str] = {}
    for index, (circ, _placement, _config) in enumerate(normalized):
        gates = _gate_list(circ)
        gate_lists.append(gates)
        fingerprint = fp_by_id.get(id(gates))
        if fingerprint is None:
            fingerprint = circuit_fingerprint(gates)
            fp_by_id[id(gates)] = fingerprint
        groups.setdefault(fingerprint, []).append(index)

    mesh_cache: Dict[tuple, Mesh] = {}
    for indices in groups.values():
        gates = gate_lists[indices[0]]
        if len(gates) == 0:
            for index in indices:
                results[index] = _empty_result(normalized[index][1])
            continue
        shared = _Shared(gates)
        height = width = 0
        meshes: Dict[tuple, Mesh] = {}
        oversized: set = set()
        for index in indices:
            placement = normalized[index][1]
            _validate_placement(shared, placement)
            mesh_key = placement.fingerprint()
            mesh = mesh_cache.get(mesh_key)
            if mesh is None:
                mesh = Mesh.from_placement(
                    placement.positions,
                    width=placement.width,
                    height=placement.height,
                )
                mesh_cache[mesh_key] = mesh
            meshes[mesh_key] = mesh
            if mesh.lattice_height > _MAX_DIM or mesh.lattice_width > _MAX_DIM:
                oversized.add(mesh_key)
            else:
                height = max(height, mesh.lattice_height)
                width = max(width, mesh.lattice_width)

        matrix = _MatrixBuilder(height, width)
        # Plans carry their master-matrix block offset, which is per-group
        # state, so the plan cache cannot outlive the group.
        plans = _PlanCache(height, width, kernel=kern)
        placement_plans: Dict[tuple, _PlacementPlans] = {}
        duration_cache: Dict[tuple, List[int]] = {}
        points: List[_Point] = []
        durations: List[List[int]] = []
        batch_order: List[int] = []
        for index in indices:
            _circ, placement, config = normalized[index]
            mesh_key = placement.fingerprint()
            if mesh_key in oversized or _needs_scalar_config(config):
                results[index] = simulate(gates, placement, config)
                continue
            resolved = placement_plans.get(mesh_key)
            if resolved is None:
                resolved = _PlacementPlans(shared, meshes[mesh_key], plans, matrix)
                placement_plans[mesh_key] = resolved
            if resolved.degenerate:
                results[index] = simulate(gates, placement, config)
                continue
            duration_key = tuple(
                sorted((kind.value, int(v)) for kind, v in config.durations.items())
            )
            point_durations = duration_cache.get(duration_key)
            if point_durations is None:
                point_durations = [gate.duration(config.durations) for gate in gates]
                duration_cache[duration_key] = point_durations
            points.append(_Point(len(points), config, placement, resolved))
            durations.append(point_durations)
            batch_order.append(index)

        if len(points) == 1 and engine != "compiled" and not use_kernel_loop:
            # A lone point gains nothing from group prep without the
            # kernel; the masked engine is the cheaper exact path.
            index = batch_order[0]
            results[index] = simulate(gates, normalized[index][1], normalized[index][2])
        elif points:
            if use_kernel_loop:
                group_results = _run_kernel_group(
                    kern, shared, points, matrix, durations
                )
            else:
                group_results = _ArrayGroup(shared, points, matrix, durations).run()
            for index, result in zip(batch_order, group_results):
                results[index] = result
    return results  # type: ignore[return-value]
