"""Braid path representation.

A braid is the spatial footprint of a single two-qubit (or multi-target)
operation on the mesh: the set of lattice cells the braid's pathway occupies
while it executes.  Two braids conflict when their footprints intersect —
the simulator then stalls one of them (Section VIII-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional, Sequence, Tuple

from .mesh import LatticeCell


@dataclass(frozen=True)
class BraidPath:
    """An immutable braid footprint on the channel lattice.

    Attributes
    ----------
    cells:
        All lattice cells occupied by the braid (endpoints included).
    endpoints:
        The tile lattice cells of the qubits the braid connects.
    hop:
        Optional Valiant-style intermediate destination the braid was routed
        through (used by the permutation-step optimisation of Section
        VII-B.3); ``None`` for direct braids.
    """

    cells: FrozenSet[LatticeCell]
    endpoints: Tuple[LatticeCell, ...]
    hop: Optional[LatticeCell] = None

    @classmethod
    def from_cells(
        cls,
        cells: Iterable[LatticeCell],
        endpoints: Sequence[LatticeCell],
        hop: Optional[LatticeCell] = None,
    ) -> "BraidPath":
        """Build a braid path from an iterable of cells and its endpoints."""
        return cls(cells=frozenset(cells), endpoints=tuple(endpoints), hop=hop)

    @property
    def length(self) -> int:
        """Number of lattice cells the braid occupies."""
        return len(self.cells)

    def conflicts_with(self, other: "BraidPath") -> bool:
        """Whether this braid shares any lattice cell with ``other``."""
        return not self.cells.isdisjoint(other.cells)

    def conflicts_with_cells(self, cells: FrozenSet[LatticeCell]) -> bool:
        """Whether this braid shares any lattice cell with a locked-cell set."""
        return not self.cells.isdisjoint(cells)

    def union(self, other: "BraidPath") -> "BraidPath":
        """Combine two braid footprints (used to build multi-target stars)."""
        return BraidPath(
            cells=self.cells | other.cells,
            endpoints=tuple(dict.fromkeys(self.endpoints + other.endpoints)),
            hop=self.hop or other.hop,
        )
