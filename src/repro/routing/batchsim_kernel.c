/* batchsim_kernel.c — compiled fast path for the batched braid simulator.
 *
 * Exact C port of the masked engine in repro/routing/simulator.py over
 * the batched group representation built by repro/routing/batchsim.py:
 * a dense master matrix of candidate rows in the dual row/column uint64
 * bitboard (row word r holds the columns occupied in lattice row r; word
 * height + c holds the rows occupied in lattice column c), plus a
 * 4-probe conflict table per row (two endpoint bits, the horizontal
 * segment against its row word, the vertical segment against its column
 * word).
 *
 * Two entry points, loaded via ctypes by repro/routing/kernel.py:
 *
 *   build_pair_plan  — candidate-row generation for one endpoint pair,
 *                      replicating BraidRouter._mask_plan's channel
 *                      enumeration and generation-order dedup.
 *   simulate_point   — one sweep point's full event loop, byte-identical
 *                      to simulate() (and therefore simulate_reference).
 *
 * Exactness notes mirrored from the Python engines:
 *   - attempts pop from a min-heap of gate indices (program order);
 *   - `locked == 0` shortcut takes candidate 0 without probing;
 *   - a blocked candidate contributes the lowest set bit of its overlap
 *     with the locked set, in padded row-major cell order; the 4-probe
 *     minimum reproduces that lowbit exactly because the probes cover
 *     every cell of the candidate and padded row-major order is the
 *     probe-local (word offset, bit) order;
 *   - stall accounting: first_stall_scan latches the retirement-step
 *     counter at first park, stall_events accrues scan - first at issue;
 *   - wakeups: one per parked gate whose blocker set intersects the
 *     cells freed during a retirement step (the per-event waiter-queue
 *     walk in simulate() wakes the same set — a woken gate's blocker is
 *     cleared, so later events in the step cannot wake it again, and
 *     the attempt heap restores program order);
 *   - max_cycles raises only when an event time exceeds the limit with
 *     gates still unfinished (simulate() checks at the top of the next
 *     loop iteration, which only runs while completed < n).
 */

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

#define ERR_OK 0
#define ERR_MAX_CYCLES 1
#define ERR_DEADLOCK 2
#define ERR_ALLOC 3

#define MAX_SPAN 128          /* both lattice dims capped at 64 words */
#define MAX_CANDIDATES 8      /* _mask_plan emits at most 4 + 4 rows */

/* ---- min-heap of gate indices (the attempt queue) ------------------ */

static void ipush(int64_t *heap, int64_t *size, int64_t value)
{
    int64_t i = (*size)++;
    while (i > 0) {
        int64_t parent = (i - 1) >> 1;
        if (heap[parent] <= value)
            break;
        heap[i] = heap[parent];
        i = parent;
    }
    heap[i] = value;
}

static int64_t ipop(int64_t *heap, int64_t *size)
{
    int64_t top = heap[0];
    int64_t last = heap[--(*size)];
    int64_t n = *size;
    int64_t i = 0;
    for (;;) {
        int64_t child = 2 * i + 1;
        if (child >= n)
            break;
        if (child + 1 < n && heap[child + 1] < heap[child])
            child++;
        if (heap[child] >= last)
            break;
        heap[i] = heap[child];
        i = child;
    }
    heap[i] = last;
    return top;
}

/* ---- min-heap of (time, gate) events (active braids) --------------- */

typedef struct {
    int64_t t;
    int64_t g;
} event_t;

static int ev_lt(event_t a, event_t b)
{
    return a.t < b.t || (a.t == b.t && a.g < b.g);
}

static void epush(event_t *heap, int64_t *size, event_t value)
{
    int64_t i = (*size)++;
    while (i > 0) {
        int64_t parent = (i - 1) >> 1;
        if (!ev_lt(value, heap[parent]))
            break;
        heap[i] = heap[parent];
        i = parent;
    }
    heap[i] = value;
}

static event_t epop(event_t *heap, int64_t *size)
{
    event_t top = heap[0];
    event_t last = heap[--(*size)];
    int64_t n = *size;
    int64_t i = 0;
    for (;;) {
        int64_t child = 2 * i + 1;
        if (child >= n)
            break;
        if (child + 1 < n && ev_lt(heap[child + 1], heap[child]))
            child++;
        if (!ev_lt(heap[child], last))
            break;
        heap[i] = heap[child];
        i = child;
    }
    heap[i] = last;
    return top;
}

/* ---- candidate conflict probe -------------------------------------- */

/* Returns 1 when the candidate row is free; otherwise 0 with *watch_out
 * set to the lowest blocked cell in padded row-major order (r * 64 + c),
 * i.e. the lowbit of (candidate & locked) in the big-int engine. */
static int probe_row(const uint64_t *locked, const int64_t *poff,
                     const uint64_t *pmask, int64_t row, int64_t height,
                     int64_t *watch_out)
{
    const int64_t *off = poff + 4 * row;
    const uint64_t *pm = pmask + 4 * row;
    uint64_t hits[4];
    hits[0] = locked[off[0]] & pm[0];
    hits[1] = locked[off[1]] & pm[1];
    hits[2] = locked[off[2]] & pm[2];
    hits[3] = locked[off[3]] & pm[3];
    if (!(hits[0] | hits[1] | hits[2] | hits[3]))
        return 1;
    int64_t best = INT64_MAX;
    for (int i = 0; i < 4; i++) {
        if (!hits[i])
            continue;
        int64_t bit = __builtin_ctzll(hits[i]);
        int64_t cell = off[i] < height
            ? off[i] * 64 + bit               /* row word: bit is a column */
            : bit * 64 + (off[i] - height);   /* column word: bit is a row */
        if (cell < best)
            best = cell;
    }
    *watch_out = best;
    return 0;
}

/* ---- candidate-plan generation ------------------------------------- */

static uint64_t span_mask(int64_t lo, int64_t hi)
{
    int64_t width = hi - lo + 1;
    uint64_t bits = width >= 64 ? ~0ull : (1ull << width) - 1;
    return bits << lo;
}

static int64_t emit_candidate(
    int64_t sr, int64_t sc, int64_t tr, int64_t tc,
    int64_t hrow, int64_t h0, int64_t h1, int64_t vcol, int64_t v0, int64_t v1,
    int64_t height, int64_t span,
    uint64_t *rows_out, int64_t *poff_out, uint64_t *pmask_out, int64_t kept)
{
    uint64_t row[MAX_SPAN];
    memset(row, 0, (size_t)span * 8);
    int64_t ha = h0 <= h1 ? h0 : h1, hb = h0 <= h1 ? h1 : h0;
    int64_t va = v0 <= v1 ? v0 : v1, vb = v0 <= v1 ? v1 : v0;
    row[sr] |= 1ull << sc;
    row[height + sc] |= 1ull << sr;
    row[tr] |= 1ull << tc;
    row[height + tc] |= 1ull << tr;
    uint64_t hmask = span_mask(ha, hb);      /* bits are columns */
    uint64_t vmask = span_mask(va, vb);      /* bits are rows */
    row[hrow] |= hmask;
    for (int64_t c = ha; c <= hb; c++)
        row[height + c] |= 1ull << hrow;
    row[height + vcol] |= vmask;
    for (int64_t r = va; r <= vb; r++)
        row[r] |= 1ull << vcol;
    for (int64_t i = 0; i < kept; i++)
        if (!memcmp(rows_out + i * span, row, (size_t)span * 8))
            return kept;                     /* generation-order dedup */
    memcpy(rows_out + kept * span, row, (size_t)span * 8);
    int64_t *po = poff_out + kept * 4;
    uint64_t *pm = pmask_out + kept * 4;
    po[0] = sr;            pm[0] = 1ull << sc;
    po[1] = tr;            pm[1] = 1ull << tc;
    po[2] = hrow;          pm[2] = hmask;
    po[3] = height + vcol; pm[3] = vmask;
    return kept + 1;
}

/* Candidate rows for one endpoint pair: the same channel enumeration as
 * BraidRouter._mask_plan (row-first then column-first L shapes), with
 * duplicate rows dropped in generation order.  Buffers must hold
 * MAX_CANDIDATES rows; returns how many were kept, or -1 when a channel
 * coordinate would be negative (callers fall back to Python, which
 * reproduces the big-int engine's behavior for such degenerate meshes). */
int64_t build_pair_plan(
    int64_t sr, int64_t sc, int64_t tr, int64_t tc,
    int64_t max_row, int64_t max_col,
    int64_t height, int64_t width,
    uint64_t *rows_out, int64_t *poff_out, uint64_t *pmask_out)
{
    int64_t span = height + width;
    if (sr < 1 || sc < 1 || tr < 1 || tc < 1 || span > MAX_SPAN)
        return -1;
    int64_t kept = 0;
    int64_t row_opts[2] = { sr - 1, sr + 1 < max_row ? sr + 1 : max_row };
    int64_t col_opts[2] = { tc - 1, tc + 1 < max_col ? tc + 1 : max_col };
    for (int a = 0; a < 2; a++)
        for (int b = 0; b < 2; b++) {
            int64_t cr = row_opts[a], cc = col_opts[b];
            kept = emit_candidate(sr, sc, tr, tc,
                                  cr, sc, cc, cc, cr, tr,
                                  height, span,
                                  rows_out, poff_out, pmask_out, kept);
        }
    int64_t col_opts2[2] = { sc - 1, sc + 1 < max_col ? sc + 1 : max_col };
    int64_t row_opts2[2] = { tr - 1, tr + 1 < max_row ? tr + 1 : max_row };
    for (int a = 0; a < 2; a++)
        for (int b = 0; b < 2; b++) {
            int64_t cc = col_opts2[a], cr = row_opts2[b];
            kept = emit_candidate(sr, sc, tr, tc,
                                  cr, cc, tc, cc, sr, cr,
                                  height, span,
                                  rows_out, poff_out, pmask_out, kept);
        }
    return kept;
}

/* Bulk twin of build_pair_plan: m pairs in one call (one ctypes round
 * trip per placement instead of one per pair).  pairs is m * 4 ints
 * (sr, sc, tr, tc); each pair writes its own MAX_CANDIDATES-row slot in
 * rows_out / poff_out / pmask_out and its kept count (or -1) into
 * kept_out. */
void build_pair_plans(
    const int64_t *pairs, int64_t m,
    int64_t max_row, int64_t max_col,
    int64_t height, int64_t width,
    uint64_t *rows_out, int64_t *poff_out, uint64_t *pmask_out,
    int64_t *kept_out)
{
    int64_t span = height + width;
    for (int64_t i = 0; i < m; i++) {
        const int64_t *p = pairs + i * 4;
        kept_out[i] = build_pair_plan(
            p[0], p[1], p[2], p[3],
            max_row, max_col, height, width,
            rows_out + (size_t)(i * MAX_CANDIDATES) * (size_t)span,
            poff_out + i * MAX_CANDIDATES * 4,
            pmask_out + (size_t)(i * MAX_CANDIDATES) * 4);
    }
}

/* ---- the event loop ------------------------------------------------ */

/* Counter slot layout shared with kernel.py. */
enum {
    C_ERR_DETAIL = 0,    /* parked count (deadlock) / limit (max_cycles) */
    C_STALL_EVENTS,
    C_BRAIDED,
    C_MAX_CONC,
    C_CELLS,
    C_DISTINCT,
    C_WAKEUPS,
    C_STALL_CYCLES,
    C_LATENCY,
    C_COUNT
};

int64_t simulate_point(
    int64_t n,
    const int64_t *kind,          /* 0 plain, 1 pair, 2 star */
    const int64_t *dur,
    const int64_t *block,         /* pair: first candidate row */
    const int64_t *count,         /* pair: candidates after truncation */
    int64_t max_legs,
    const int64_t *star_start,    /* n * max_legs: leg's first row */
    const int64_t *star_count,    /* n * max_legs: 0 marks no leg */
    const int64_t *star_ctrl,     /* star: control-cell row */
    const int64_t *succ_flat,
    const int64_t *succ_off,      /* n + 1 */
    const int64_t *pred_count,
    const uint64_t *M,            /* rows * span master matrix */
    const int64_t *poff,          /* rows * 4 probe word offsets */
    const uint64_t *pmask,        /* rows * 4 probe word masks */
    const int64_t *pops,          /* rows: popcount of the row part */
    int64_t span,
    int64_t height,
    int64_t max_cycles,
    int64_t *gate_start,          /* out, n */
    int64_t *gate_end,            /* out, n */
    int64_t *ready_time,          /* out, n */
    int64_t *counters)            /* out, C_COUNT */
{
    int64_t ml1 = max_legs + 1;
    int64_t err = ERR_OK;

    uint64_t *locked = calloc((size_t)span, 8);
    uint64_t *freed = calloc((size_t)span, 8);
    uint64_t *tmp = malloc((size_t)span * 8);
    uint64_t *blocker = calloc((size_t)n * height, 8);
    int64_t *remaining = malloc((size_t)n * 8);
    int64_t *first_stall = malloc((size_t)n * 8);
    int64_t *issued_rows = malloc((size_t)n * ml1 * 8);
    int64_t *issued_cnt = calloc((size_t)n, 8);
    int64_t *parked_list = malloc((size_t)n * 8);
    int64_t *attempt = malloc((size_t)(n + 1) * 8);
    event_t *active = malloc((size_t)(n + 1) * sizeof(event_t));

    if (!locked || !freed || !tmp || !blocker || !remaining || !first_stall
        || !issued_rows || !issued_cnt || !parked_list || !attempt || !active) {
        err = ERR_ALLOC;
        goto done;
    }

    for (int64_t i = 0; i < n; i++) {
        remaining[i] = pred_count[i];
        first_stall[i] = -1;
        gate_start[i] = -1;
        gate_end[i] = -1;
        ready_time[i] = 0;
    }
    memset(counters, 0, C_COUNT * 8);

    int64_t attempt_size = 0, active_size = 0;
    for (int64_t i = 0; i < n; i++)
        if (remaining[i] == 0)
            attempt[attempt_size++] = i;   /* ascending: already a heap */

    int64_t now = 0, scan = 0, completed = 0;
    int64_t conc = 0, max_conc = 0, parked = 0;
    int64_t stall_events = 0, distinct = 0, wakeups = 0;
    int64_t braids = 0, cells = 0;
    int64_t wc[MAX_CANDIDATES];

    for (;;) {
        /* -- attempt phase at `now`, in program order ---------------- */
        while (attempt_size) {
            int64_t g = ipop(attempt, &attempt_size);
            int64_t kg = kind[g];
            int64_t nw = 0;
            if (kg == 1) {                               /* simple pair */
                int64_t base = block[g], cnt = count[g], chosen = -1;
                if (conc == 0) {
                    chosen = base;
                } else {
                    for (int64_t c = 0; c < cnt; c++) {
                        int64_t cell;
                        if (probe_row(locked, poff, pmask, base + c,
                                      height, &cell)) {
                            chosen = base + c;
                            break;
                        }
                        wc[nw++] = cell;
                    }
                }
                if (chosen < 0)
                    goto park;
                const uint64_t *row = M + chosen * span;
                for (int64_t w = 0; w < span; w++)
                    locked[w] |= row[w];
                cells += pops[chosen];
                issued_rows[g * ml1] = chosen;
                issued_cnt[g] = 1;
            } else if (kg == 2) {                        /* CXX star */
                int64_t *rows = issued_rows + g * ml1;
                int64_t nr = 0;
                int routed = 1;
                for (int64_t leg = 0; leg < max_legs; leg++) {
                    int64_t cnt = star_count[g * max_legs + leg];
                    if (cnt == 0)
                        break;
                    int64_t base = star_start[g * max_legs + leg];
                    if (conc == 0) {
                        rows[nr++] = base;
                        continue;
                    }
                    int64_t chosen = -1;
                    nw = 0;
                    for (int64_t c = 0; c < cnt; c++) {
                        int64_t cell;
                        if (probe_row(locked, poff, pmask, base + c,
                                      height, &cell)) {
                            chosen = base + c;
                            break;
                        }
                        wc[nw++] = cell;
                    }
                    if (chosen < 0) {
                        routed = 0;      /* only the failing leg watches */
                        break;
                    }
                    rows[nr++] = chosen;
                }
                if (!routed)
                    goto park;
                rows[nr++] = star_ctrl[g];
                issued_cnt[g] = nr;
                memset(tmp, 0, (size_t)span * 8);
                for (int64_t i = 0; i < nr; i++) {
                    const uint64_t *row = M + rows[i] * span;
                    for (int64_t w = 0; w < span; w++)
                        tmp[w] |= row[w];
                }
                int64_t pc = 0;
                for (int64_t w = 0; w < span; w++) {
                    locked[w] |= tmp[w];
                    if (w < height)
                        pc += __builtin_popcountll(tmp[w]);
                }
                cells += pc;
            }
            if (kg != 0) {
                conc++;
                if (conc > max_conc)
                    max_conc = conc;
                braids++;
            }
            if (first_stall[g] >= 0)
                stall_events += scan - first_stall[g];
            gate_start[g] = now;
            gate_end[g] = now + dur[g];
            epush(active, &active_size, (event_t){ now + dur[g], g });
            continue;

        park:
            if (first_stall[g] < 0) {
                first_stall[g] = scan;
                distinct++;
            }
            {
                uint64_t *b = blocker + (size_t)g * height;
                for (int64_t i = 0; i < nw; i++) {
                    int64_t cell = wc[i];
                    b[cell >> 6] |= 1ull << (cell & 63);
                }
            }
            parked_list[parked++] = g;
        }

        /* -- idle check ---------------------------------------------- */
        if (active_size == 0) {
            if (parked) {
                counters[C_ERR_DETAIL] = parked;
                err = ERR_DEADLOCK;
            }
            break;
        }

        /* -- retire every event at the next time -------------------- */
        now = active[0].t;
        scan++;
        int freed_any = 0;
        while (active_size && active[0].t == now) {
            event_t ev = epop(active, &active_size);
            int64_t g = ev.g;
            if (kind[g] != 0) {
                const int64_t *rows = issued_rows + g * ml1;
                int64_t m = issued_cnt[g];
                for (int64_t i = 0; i < m; i++) {
                    const uint64_t *row = M + rows[i] * span;
                    for (int64_t w = 0; w < span; w++)
                        freed[w] |= row[w];
                }
                conc--;
                freed_any = 1;
            }
            completed++;
            for (int64_t si = succ_off[g]; si < succ_off[g + 1]; si++) {
                int64_t s = succ_flat[si];
                remaining[s]--;
                if (ready_time[s] < now)
                    ready_time[s] = now;
                if (remaining[s] == 0)
                    ipush(attempt, &attempt_size, s);
            }
        }
        if (completed >= n)
            break;
        if (now > max_cycles) {
            counters[C_ERR_DETAIL] = max_cycles;
            err = ERR_MAX_CYCLES;
            break;
        }
        if (freed_any) {
            for (int64_t w = 0; w < span; w++)
                locked[w] &= ~freed[w];
            for (int64_t i = 0; i < parked; ) {
                int64_t g = parked_list[i];
                const uint64_t *b = blocker + (size_t)g * height;
                uint64_t hit = 0;
                for (int64_t w = 0; w < height; w++) {
                    hit = b[w] & freed[w];
                    if (hit)
                        break;
                }
                if (hit) {
                    memset(blocker + (size_t)g * height, 0,
                           (size_t)height * 8);
                    parked_list[i] = parked_list[--parked];
                    wakeups++;
                    ipush(attempt, &attempt_size, g);
                } else {
                    i++;
                }
            }
            memset(freed, 0, (size_t)span * 8);
        }
    }

    if (err == ERR_OK) {
        int64_t latency = 0, stall_cycles = 0;
        for (int64_t i = 0; i < n; i++) {
            if (gate_end[i] > latency)
                latency = gate_end[i];
            if (gate_start[i] >= 0) {
                int64_t d = gate_start[i] - ready_time[i];
                if (d > 0)
                    stall_cycles += d;
            }
        }
        counters[C_STALL_EVENTS] = stall_events;
        counters[C_BRAIDED] = braids;
        counters[C_MAX_CONC] = max_conc;
        counters[C_CELLS] = cells;
        counters[C_DISTINCT] = distinct;
        counters[C_WAKEUPS] = wakeups;
        counters[C_STALL_CYCLES] = stall_cycles;
        counters[C_LATENCY] = latency;
    }

done:
    free(locked);
    free(freed);
    free(tmp);
    free(blocker);
    free(remaining);
    free(first_stall);
    free(issued_rows);
    free(issued_cnt);
    free(parked_list);
    free(attempt);
    free(active);
    return err;
}
