"""Cycle-accurate braid scheduling simulator.

This is the evaluation substrate of the paper (Section VIII-A): a simulator
that takes a gate-level schedule plus a physical qubit mapping and executes
the braids on the 2-D mesh, in parallel where the dependency structure and
routing allow, inserting stalls whenever two braids would intersect.

Semantics reproduced from the paper's description:

* any data hazard (the same qubit appearing in two instructions) is treated
  as a true dependency;
* braids are scheduled in parallel when their paths do not intersect; when
  they would intersect, one braid stalls until the other completes;
* barriers are machine-wide synchronisation points (implemented by the
  paper as a multi-target CNOT over every qubit);
* multi-target CNOT gates are routed as a star of paths from the control to
  every target, occupying the union of those paths.

The simulator is event driven: time jumps from one braid-completion event to
the next, so the cost is proportional to the number of gates and stall
retries rather than to the final cycle count.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from ..circuits.circuit import Circuit
from ..circuits.dag import build_dependency_dag
from ..circuits.gates import DEFAULT_DURATIONS, Gate, GateKind
from ..mapping.placement import Placement
from .braid import BraidPath
from .mesh import Cell, LatticeCell, Mesh, tile_to_lattice
from .router import BraidRouter


@dataclass
class SimulatorConfig:
    """Knobs of the braid simulator.

    Attributes
    ----------
    durations:
        Gate-kind to cycle-count mapping (defaults to
        :data:`~repro.circuits.gates.DEFAULT_DURATIONS`).
    allow_detour:
        Let blocked braids search for longer detour routes instead of
        stalling (off by default, matching the paper's stall-only baseline).
    detour_slack:
        Maximum detour length as a multiple of the shortest route.
    hops:
        Optional map from gate index to an intermediate *tile* cell the braid
        must pass through (Valiant-style routing for permutation braids,
        Section VII-B.3).
    max_cycles:
        Safety limit; simulation aborts with an error beyond this.
    """

    durations: Mapping[GateKind, int] = field(
        default_factory=lambda: dict(DEFAULT_DURATIONS)
    )
    allow_detour: bool = False
    detour_slack: float = 2.0
    max_candidates: int = 2
    hops: Mapping[int, Cell] = field(default_factory=dict)
    max_cycles: int = 10_000_000


@dataclass
class SimulationResult:
    """Outcome of simulating one circuit on one placement."""

    latency: int
    area: int
    gate_start: List[int]
    gate_end: List[int]
    stall_cycles: int
    stall_events: int
    braided_gates: int
    max_concurrent_braids: int
    total_braid_cells: int

    @property
    def volume(self) -> int:
        """Space-time volume (area in tiles times latency in cycles)."""
        return self.area * self.latency

    @property
    def average_braid_length(self) -> float:
        """Average braid footprint in lattice cells."""
        if self.braided_gates == 0:
            return 0.0
        return self.total_braid_cells / self.braided_gates


class RoutingDeadlockError(RuntimeError):
    """Raised when no ready braid can be routed and nothing is in flight."""


def _gate_list(circuit_or_gates) -> Tuple[Gate, ...]:
    if isinstance(circuit_or_gates, Circuit):
        return circuit_or_gates.gates
    return tuple(circuit_or_gates)


def simulate(
    circuit_or_gates,
    placement: Placement,
    config: Optional[SimulatorConfig] = None,
) -> SimulationResult:
    """Simulate a circuit on a placement and return timing/volume results.

    Every qubit referenced by the gate list must be placed.  Gates are issued
    in program order among those whose dependencies are satisfied; braided
    gates that cannot be routed without intersecting an in-flight braid are
    stalled and retried after the next braid completion.
    """
    config = config or SimulatorConfig()
    gates = _gate_list(circuit_or_gates)
    durations = config.durations

    used_qubits: Set[int] = set()
    for gate in gates:
        used_qubits.update(gate.qubits)
    missing = [q for q in used_qubits if q not in placement.positions]
    if missing:
        raise ValueError(
            f"{len(missing)} qubits used by the circuit are not placed "
            f"(first few: {sorted(missing)[:5]})"
        )

    mesh = Mesh.from_placement(
        placement.positions, width=placement.width, height=placement.height
    )
    router = BraidRouter(
        mesh,
        allow_detour=config.allow_detour,
        detour_slack=config.detour_slack,
        max_candidates=config.max_candidates,
    )
    hop_cells: Dict[int, LatticeCell] = {
        index: tile_to_lattice(cell) for index, cell in config.hops.items()
    }

    dag = build_dependency_dag(gates)
    n = len(gates)
    if n == 0:
        return SimulationResult(
            latency=0,
            area=placement.area,
            gate_start=[],
            gate_end=[],
            stall_cycles=0,
            stall_events=0,
            braided_gates=0,
            max_concurrent_braids=0,
            total_braid_cells=0,
        )

    remaining_preds = [len(p) for p in dag.predecessors]
    ready_time = [0] * n
    ready: List[int] = [i for i in range(n) if remaining_preds[i] == 0]
    ready.sort()

    gate_start: List[int] = [-1] * n
    gate_end: List[int] = [-1] * n
    locked: Set[LatticeCell] = set()
    active: List[Tuple[int, int, FrozenSet[LatticeCell]]] = []
    now = 0
    completed = 0
    stall_events = 0
    total_braid_cells = 0
    braided_gates = 0
    concurrent_braids = 0
    max_concurrent_braids = 0

    def try_route(index: int, gate: Gate) -> Optional[BraidPath]:
        """Attempt to route the braid of ``gate`` avoiding locked cells."""
        locked_frozen = frozenset(locked)
        if gate.kind is GateKind.CXX:
            return router.route_star(gate.qubits[0], gate.qubits[1:], locked_frozen)
        hop = hop_cells.get(index)
        return router.route_pair(
            gate.qubits[0], gate.qubits[1], locked_frozen, hop=hop
        )

    while completed < n:
        if now > config.max_cycles:
            raise RuntimeError(
                f"simulation exceeded max_cycles={config.max_cycles}"
            )
        # ------------------------------------------------------------------
        # Start every ready gate we can at the current time, in program order.
        # ------------------------------------------------------------------
        still_ready: List[int] = []
        for index in ready:
            gate = gates[index]
            duration = gate.duration(durations)
            if gate.is_braided:
                path = try_route(index, gate)
                if path is None:
                    stall_events += 1
                    still_ready.append(index)
                    continue
                locked.update(path.cells)
                total_braid_cells += path.length
                braided_gates += 1
                concurrent_braids += 1
                max_concurrent_braids = max(max_concurrent_braids, concurrent_braids)
                cells: FrozenSet[LatticeCell] = path.cells
            else:
                cells = frozenset()
            gate_start[index] = now
            gate_end[index] = now + duration
            heapq.heappush(active, (now + duration, index, cells))
        ready = still_ready

        if completed + len(active) == n and not active:
            break
        if not active:
            if ready:
                raise RoutingDeadlockError(
                    f"{len(ready)} gates cannot be routed on an otherwise idle mesh"
                )
            break

        # ------------------------------------------------------------------
        # Advance to the next completion event and retire everything there.
        # ------------------------------------------------------------------
        now = active[0][0]
        while active and active[0][0] == now:
            _, index, cells = heapq.heappop(active)
            if cells:
                locked.difference_update(cells)
                concurrent_braids -= 1
            completed += 1
            for successor in dag.successors[index]:
                remaining_preds[successor] -= 1
                ready_time[successor] = max(ready_time[successor], now)
                if remaining_preds[successor] == 0:
                    ready.append(successor)
        ready.sort()

    latency = max(gate_end) if gate_end else 0
    stall_cycles = sum(
        max(0, start - ready_at)
        for start, ready_at in zip(gate_start, ready_time)
        if start >= 0
    )
    return SimulationResult(
        latency=latency,
        area=placement.area,
        gate_start=gate_start,
        gate_end=gate_end,
        stall_cycles=stall_cycles,
        stall_events=stall_events,
        braided_gates=braided_gates,
        max_concurrent_braids=max_concurrent_braids,
        total_braid_cells=total_braid_cells,
    )


def simulate_latency(
    circuit_or_gates, placement: Placement, config: Optional[SimulatorConfig] = None
) -> int:
    """Convenience wrapper returning only the circuit latency in cycles."""
    return simulate(circuit_or_gates, placement, config).latency
