"""Cycle-accurate braid scheduling simulator.

This is the evaluation substrate of the paper (Section VIII-A): a simulator
that takes a gate-level schedule plus a physical qubit mapping and executes
the braids on the 2-D mesh, in parallel where the dependency structure and
routing allow, inserting stalls whenever two braids would intersect.

Semantics reproduced from the paper's description:

* any data hazard (the same qubit appearing in two instructions) is treated
  as a true dependency;
* braids are scheduled in parallel when their paths do not intersect; when
  they would intersect, one braid stalls until the other completes;
* barriers are machine-wide synchronisation points (implemented by the
  paper as a multi-target CNOT over every qubit);
* multi-target CNOT gates are routed as a star of paths from the control to
  every target, occupying the union of those paths.

The simulator is event driven: time jumps from one braid-completion event to
the next, so the cost is proportional to the number of gates and stall
retries rather than to the final cycle count.
"""

from __future__ import annotations

import dataclasses
import hashlib
import heapq
import weakref
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from ..circuits.circuit import Circuit
from ..circuits.dag import build_dependency_dag
from ..circuits.gates import DEFAULT_DURATIONS, Gate, GateKind
from ..mapping.placement import Placement
from .braid import BraidPath
from .mesh import Cell, LatticeCell, Mesh, tile_to_lattice
from .router import BraidRouter


@dataclass
class SimulatorConfig:
    """Knobs of the braid simulator.

    Attributes
    ----------
    durations:
        Gate-kind to cycle-count mapping (defaults to
        :data:`~repro.circuits.gates.DEFAULT_DURATIONS`).
    allow_detour:
        Let blocked braids search for longer detour routes instead of
        stalling (off by default, matching the paper's stall-only baseline).
    detour_slack:
        Maximum detour length as a multiple of the shortest route.
    max_candidates:
        How many rectilinear route shapes each braid may choose from before
        it stalls (or detours); forwarded to
        :class:`~repro.routing.router.BraidRouter`.  The default of 2 models
        the paper's stall-on-intersection semantics, where a braid whose
        natural corridor is busy waits; larger values let braids steer
        around traffic and weaken the mapping's influence on latency.
    hops:
        Optional map from gate index to an intermediate *tile* cell the braid
        must pass through (Valiant-style routing for permutation braids,
        Section VII-B.3).
    max_cycles:
        Safety limit; simulation aborts with an error beyond this.
    """

    durations: Mapping[GateKind, int] = field(
        default_factory=lambda: dict(DEFAULT_DURATIONS)
    )
    allow_detour: bool = False
    detour_slack: float = 2.0
    max_candidates: int = 2
    hops: Mapping[int, Cell] = field(default_factory=dict)
    max_cycles: int = 10_000_000


@dataclass
class SimulationResult:
    """Outcome of simulating one circuit on one placement."""

    latency: int
    area: int
    gate_start: List[int]
    gate_end: List[int]
    stall_cycles: int
    stall_events: int
    braided_gates: int
    max_concurrent_braids: int
    total_braid_cells: int

    @property
    def volume(self) -> int:
        """Space-time volume (area in tiles times latency in cycles)."""
        return self.area * self.latency

    @property
    def average_braid_length(self) -> float:
        """Average braid footprint in lattice cells."""
        if self.braided_gates == 0:
            return 0.0
        return self.total_braid_cells / self.braided_gates


class RoutingDeadlockError(RuntimeError):
    """Raised when no ready braid can be routed and nothing is in flight."""


def _gate_list(circuit_or_gates) -> Tuple[Gate, ...]:
    if isinstance(circuit_or_gates, Circuit):
        return circuit_or_gates.gates
    return tuple(circuit_or_gates)


def simulate(
    circuit_or_gates,
    placement: Placement,
    config: Optional[SimulatorConfig] = None,
) -> SimulationResult:
    """Simulate a schedule on a placement and return timing/volume results.

    This is the cycle-accurate evaluation of Section VIII-A.  Every qubit
    referenced by the gate list must be placed; the simulation is
    deterministic, so the same (circuit, placement, config) triple always
    produces the same :class:`SimulationResult` (which is what makes
    :class:`SimulationCache` sound).

    Execution model:

    * gates become *ready* when every dependency (as computed by
      :func:`~repro.circuits.dag.build_dependency_dag`; any shared qubit is
      a true dependency) has completed;
    * ready gates are issued in program order; non-braided gates always
      start immediately;
    * a braided gate asks the :class:`~repro.routing.router.BraidRouter` for
      a path avoiding the cells locked by in-flight braids.  If no path
      exists the gate **stalls** — it stays ready and is retried at the next
      braid-completion event (with ``allow_detour`` the router may instead
      accept a longer path through free channels, trading space for time;
      see the router's stall-vs-detour notes);
    * a routed braid locks its cells for the gate's duration and releases
      them on completion.

    Time jumps from one completion event to the next, so the cost is
    proportional to the number of gates and stall retries rather than to the
    final cycle count.  Stalled cycles (start minus ready time, summed over
    gates) are reported as ``stall_cycles`` and charged to the mapping.

    Raises :class:`RoutingDeadlockError` if ready braids cannot be routed on
    an otherwise idle mesh, and :class:`RuntimeError` past
    ``config.max_cycles``.
    """
    config = config or SimulatorConfig()
    gates = _gate_list(circuit_or_gates)
    durations = config.durations

    used_qubits: Set[int] = set()
    for gate in gates:
        used_qubits.update(gate.qubits)
    missing = [q for q in used_qubits if q not in placement.positions]
    if missing:
        raise ValueError(
            f"{len(missing)} qubits used by the circuit are not placed "
            f"(first few: {sorted(missing)[:5]})"
        )

    mesh = Mesh.from_placement(
        placement.positions, width=placement.width, height=placement.height
    )
    router = BraidRouter(
        mesh,
        allow_detour=config.allow_detour,
        detour_slack=config.detour_slack,
        max_candidates=config.max_candidates,
    )
    hop_cells: Dict[int, LatticeCell] = {
        index: tile_to_lattice(cell) for index, cell in config.hops.items()
    }

    dag = build_dependency_dag(gates)
    n = len(gates)
    if n == 0:
        return SimulationResult(
            latency=0,
            area=placement.area,
            gate_start=[],
            gate_end=[],
            stall_cycles=0,
            stall_events=0,
            braided_gates=0,
            max_concurrent_braids=0,
            total_braid_cells=0,
        )

    remaining_preds = [len(p) for p in dag.predecessors]
    ready_time = [0] * n
    ready: List[int] = [i for i in range(n) if remaining_preds[i] == 0]
    ready.sort()

    gate_start: List[int] = [-1] * n
    gate_end: List[int] = [-1] * n
    locked: Set[LatticeCell] = set()
    active: List[Tuple[int, int, FrozenSet[LatticeCell]]] = []
    now = 0
    completed = 0
    stall_events = 0
    total_braid_cells = 0
    braided_gates = 0
    concurrent_braids = 0
    max_concurrent_braids = 0

    def try_route(index: int, gate: Gate) -> Optional[BraidPath]:
        """Attempt to route the braid of ``gate`` avoiding locked cells.

        The live ``locked`` set is passed to the router directly (it only
        reads it); copying it into a frozenset per attempt used to dominate
        retry cost on congested meshes.
        """
        if gate.kind is GateKind.CXX:
            return router.route_star(gate.qubits[0], gate.qubits[1:], locked)
        hop = hop_cells.get(index)
        return router.route_pair(gate.qubits[0], gate.qubits[1], locked, hop=hop)

    while completed < n:
        if now > config.max_cycles:
            raise RuntimeError(
                f"simulation exceeded max_cycles={config.max_cycles}"
            )
        # ------------------------------------------------------------------
        # Start every ready gate we can at the current time, in program order.
        # ------------------------------------------------------------------
        still_ready: List[int] = []
        for index in ready:
            gate = gates[index]
            duration = gate.duration(durations)
            if gate.is_braided:
                path = try_route(index, gate)
                if path is None:
                    stall_events += 1
                    still_ready.append(index)
                    continue
                locked.update(path.cells)
                total_braid_cells += path.length
                braided_gates += 1
                concurrent_braids += 1
                max_concurrent_braids = max(max_concurrent_braids, concurrent_braids)
                cells: FrozenSet[LatticeCell] = path.cells
            else:
                cells = frozenset()
            gate_start[index] = now
            gate_end[index] = now + duration
            heapq.heappush(active, (now + duration, index, cells))
        ready = still_ready

        if completed + len(active) == n and not active:
            break
        if not active:
            if ready:
                raise RoutingDeadlockError(
                    f"{len(ready)} gates cannot be routed on an otherwise idle mesh"
                )
            break

        # ------------------------------------------------------------------
        # Advance to the next completion event and retire everything there.
        # ------------------------------------------------------------------
        now = active[0][0]
        while active and active[0][0] == now:
            _, index, cells = heapq.heappop(active)
            if cells:
                locked.difference_update(cells)
                concurrent_braids -= 1
            completed += 1
            for successor in dag.successors[index]:
                remaining_preds[successor] -= 1
                ready_time[successor] = max(ready_time[successor], now)
                if remaining_preds[successor] == 0:
                    ready.append(successor)
        ready.sort()

    latency = max(gate_end) if gate_end else 0
    stall_cycles = sum(
        max(0, start - ready_at)
        for start, ready_at in zip(gate_start, ready_time)
        if start >= 0
    )
    return SimulationResult(
        latency=latency,
        area=placement.area,
        gate_start=gate_start,
        gate_end=gate_end,
        stall_cycles=stall_cycles,
        stall_events=stall_events,
        braided_gates=braided_gates,
        max_concurrent_braids=max_concurrent_braids,
        total_braid_cells=total_braid_cells,
    )


def simulate_latency(
    circuit_or_gates, placement: Placement, config: Optional[SimulatorConfig] = None
) -> int:
    """Convenience wrapper returning only the circuit latency in cycles."""
    return simulate(circuit_or_gates, placement, config).latency


# ----------------------------------------------------------------------
# Simulation memoization
# ----------------------------------------------------------------------
#: Content fingerprints of circuits already hashed, keyed weakly by the
#: circuit object so the memo dies with the circuit.  Guarded by the gate
#: count: the evaluation pipeline treats circuits as immutable once built,
#: but a circuit that grew since it was fingerprinted is re-hashed.
_circuit_fingerprints: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def _gates_fingerprint(gates: Sequence[Gate]) -> str:
    """Stable content hash of a gate sequence.

    Hashes exactly the gate properties the simulator depends on (kind and
    qubit operands, in order) with :func:`hashlib.blake2b`, so the digest is
    identical across processes and interpreter runs — unlike built-in
    ``hash()``, which is randomized per process for strings.
    """
    h = hashlib.blake2b(digest_size=16)
    for gate in gates:
        h.update(gate.kind.value.encode())
        h.update(b"(")
        h.update(",".join(map(str, gate.qubits)).encode())
        h.update(b")")
    return h.hexdigest()


def circuit_fingerprint(circuit_or_gates) -> str:
    """Content hash of a circuit (or raw gate sequence) for cache keying.

    :class:`~repro.circuits.circuit.Circuit` instances memoize their digest
    (recomputed if the gate count changed since it was taken).
    """
    if isinstance(circuit_or_gates, Circuit):
        cached = _circuit_fingerprints.get(circuit_or_gates)
        if cached is not None and cached[0] == len(circuit_or_gates):
            return cached[1]
        digest = _gates_fingerprint(circuit_or_gates.gates)
        _circuit_fingerprints[circuit_or_gates] = (len(circuit_or_gates), digest)
        return digest
    return _gates_fingerprint(tuple(circuit_or_gates))


def _placement_key(placement: Placement) -> Tuple:
    return (
        placement.width,
        placement.height,
        tuple(sorted(placement.positions.items())),
    )


def _config_key(config: SimulatorConfig) -> Tuple:
    """Hashable key covering *every* :class:`SimulatorConfig` field.

    Derived from ``dataclasses.fields`` so a future config knob is included
    automatically (an unhashable new field fails loudly here rather than
    silently aliasing distinct configs in the cache); only the two mapping
    fields need explicit normalization.
    """
    key = []
    for f in dataclasses.fields(SimulatorConfig):
        value = getattr(config, f.name)
        if f.name == "durations":
            value = tuple(sorted((kind.value, int(v)) for kind, v in value.items()))
        elif f.name == "hops":
            value = tuple(sorted((index, tuple(cell)) for index, cell in value.items()))
        key.append((f.name, value))
    return tuple(key)


def simulation_cache_key(
    circuit_or_gates,
    placement: Placement,
    config: Optional[SimulatorConfig] = None,
) -> Tuple:
    """The memoization key for one simulation: (circuit hash, placement, config).

    Two simulations with equal keys are guaranteed to produce equal results
    (the simulator is deterministic), which is what makes
    :class:`SimulationCache` a pure optimization.
    """
    return (
        circuit_fingerprint(circuit_or_gates),
        _placement_key(placement),
        _config_key(config or SimulatorConfig()),
    )


class SimulationCache:
    """LRU memo of :class:`SimulationResult`s keyed by (circuit, placement, config).

    Sweeps frequently revisit the same simulation point — the same factory
    under the same mapping appears in multiple figures, in reuse/no-reuse
    comparisons, and in repeated CLI runs within one process.  Routing
    through a cache makes every repeat free.  Cached results must be treated
    as read-only (they are shared between hits).

    The cache is bounded (``max_entries``, LRU eviction) because results
    hold per-gate timing lists.  ``hits`` / ``misses`` counters make cache
    accounting exact for benchmarking.
    """

    def __init__(self, max_entries: int = 512) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[Tuple, SimulationResult]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop every cached result (the counters are kept)."""
        self._entries.clear()

    def simulate(
        self,
        circuit_or_gates,
        placement: Placement,
        config: Optional[SimulatorConfig] = None,
    ) -> SimulationResult:
        """Memoized :func:`simulate` — repeated sweep points never re-simulate."""
        if not isinstance(circuit_or_gates, Circuit):
            # Materialize one-shot iterables up front: fingerprinting reads
            # the gates once and the simulation must read the same gates.
            circuit_or_gates = tuple(circuit_or_gates)
        key = simulation_cache_key(circuit_or_gates, placement, config)
        cached = self._entries.get(key)
        if cached is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            return cached
        result = simulate(circuit_or_gates, placement, config)
        self.misses += 1
        self._entries[key] = result
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
        return result
