"""Cycle-accurate braid scheduling simulator.

This is the evaluation substrate of the paper (Section VIII-A): a simulator
that takes a gate-level schedule plus a physical qubit mapping and executes
the braids on the 2-D mesh, in parallel where the dependency structure and
routing allow, inserting stalls whenever two braids would intersect.

Semantics reproduced from the paper's description:

* any data hazard (the same qubit appearing in two instructions) is treated
  as a true dependency;
* braids are scheduled in parallel when their paths do not intersect; when
  they would intersect, one braid stalls until the other completes;
* barriers are machine-wide synchronisation points (implemented by the
  paper as a multi-target CNOT over every qubit);
* multi-target CNOT gates are routed as a star of paths from the control to
  every target, occupying the union of those paths.

The simulator is event driven: time jumps from one braid-completion event to
the next.  Two engines implement these semantics:

* :func:`simulate` — the default **bitmask occupancy / event-driven wakeup**
  engine.  Cell sets are packed into arbitrary-precision int bitmasks (see
  :meth:`~repro.routing.mesh.Mesh.cell_index`), so "is this path free?" is
  one integer AND against a single ``locked`` mask.  A braid that stalls is
  *parked* on a watch set of cells that blocked its route candidates (one
  blocker per candidate) and is only re-tried when a retiring braid frees
  one of those cells, so the cost is proportional to the number of events
  and wakeups rather than ``events x stalled gates x candidates``.
* :func:`simulate_reference` — the retained set-based oracle: frozenset
  occupancy, every stalled gate re-tried at every completion event.  The
  two engines produce byte-identical :meth:`SimulationResult.to_dict`
  output (pinned by the randomized parity suite); the oracle additionally
  asserts the wakeup engine's parking invariant — a parked gate none of
  whose recorded blockers was freed must still fail to route.
"""

from __future__ import annotations

import dataclasses
import heapq
import json
import os
import warnings
import weakref
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from ..circuits.circuit import Circuit
from ..circuits.dag import build_dependency_dag
from ..circuits.gates import DEFAULT_DURATIONS, Gate, GateKind
from ..mapping.placement import Placement
from ..persistutil import atomic_write_json, tagged_fingerprint
from .braid import BraidPath
from .mesh import Cell, LatticeCell, Mesh, popcount as _popcount, tile_to_lattice
from .router import BraidRouter


@dataclass
class SimulatorConfig:
    """Knobs of the braid simulator.

    Attributes
    ----------
    durations:
        Gate-kind to cycle-count mapping (defaults to
        :data:`~repro.circuits.gates.DEFAULT_DURATIONS`).
    allow_detour:
        Let blocked braids search for longer detour routes instead of
        stalling (off by default, matching the paper's stall-only baseline).
    detour_slack:
        Maximum detour length as a multiple of the shortest route.
    max_candidates:
        How many rectilinear route shapes each braid may choose from before
        it stalls (or detours); forwarded to
        :class:`~repro.routing.router.BraidRouter`.  The default of 2 models
        the paper's stall-on-intersection semantics, where a braid whose
        natural corridor is busy waits; larger values let braids steer
        around traffic and weaken the mapping's influence on latency.
    hops:
        Optional map from gate index to an intermediate *tile* cell the braid
        must pass through (Valiant-style routing for permutation braids,
        Section VII-B.3).
    max_cycles:
        Safety limit; simulation aborts with an error beyond this.
    """

    durations: Mapping[GateKind, int] = field(
        default_factory=lambda: dict(DEFAULT_DURATIONS)
    )
    allow_detour: bool = False
    detour_slack: float = 2.0
    max_candidates: int = 2
    hops: Mapping[int, Cell] = field(default_factory=dict)
    max_cycles: int = 10_000_000


@dataclass
class SimulationResult:
    """Outcome of simulating one circuit on one placement.

    Stall accounting reports three counters:

    ``stall_events``
        The *legacy retry count*: how many failed route attempts the
        retry-every-event reference engine performs — one per stalled gate
        per completion event it stays stalled through.  Kept for
        comparability with earlier BENCH records; the wakeup engine derives
        the identical value from event indices without performing the
        retries.
    ``distinct_stalls``
        How many gates stalled at least once (engine-independent).
    ``wakeups``
        How many times a parked gate was re-tried because a retiring braid
        freed one of its recorded blocking cells.  This is the wakeup
        engine's actual retry count; ``stall_events - wakeups`` failed
        retries are the work the event-driven engine skips.
        :func:`simulate_reference` reproduces the same number via shadow
        accounting when ``track_wakeups`` is on (its default), and reports
        0 when tracking is disabled for like-for-like timing.
    """

    latency: int
    area: int
    gate_start: List[int]
    gate_end: List[int]
    stall_cycles: int
    stall_events: int
    braided_gates: int
    max_concurrent_braids: int
    total_braid_cells: int
    distinct_stalls: int = 0
    wakeups: int = 0

    @property
    def volume(self) -> int:
        """Space-time volume (area in tiles times latency in cycles)."""
        return self.area * self.latency

    @property
    def average_braid_length(self) -> float:
        """Average braid footprint in lattice cells."""
        if self.braided_gates == 0:
            return 0.0
        return self.total_braid_cells / self.braided_gates

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe dict of every field plus the derived volume metrics."""
        data: Dict[str, object] = {
            f.name: getattr(self, f.name) for f in dataclasses.fields(self)
        }
        data["gate_start"] = list(self.gate_start)
        data["gate_end"] = list(self.gate_end)
        data["volume"] = self.volume
        data["average_braid_length"] = self.average_braid_length
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SimulationResult":
        """Inverse of :meth:`to_dict` (derived keys are ignored)."""
        names = {f.name for f in dataclasses.fields(cls) if f.init}
        payload = {key: value for key, value in data.items() if key in names}
        payload["gate_start"] = [int(v) for v in payload.get("gate_start", [])]
        payload["gate_end"] = [int(v) for v in payload.get("gate_end", [])]
        return cls(**payload)  # type: ignore[arg-type]


class RoutingDeadlockError(RuntimeError):
    """Raised when no ready braid can be routed and nothing is in flight."""


def _gate_list(circuit_or_gates) -> Tuple[Gate, ...]:
    if isinstance(circuit_or_gates, Circuit):
        return circuit_or_gates.gates
    return tuple(circuit_or_gates)


def _prepare_simulation(
    circuit_or_gates, placement: Placement, config: SimulatorConfig
):
    """Shared setup of both engines: validation, mesh, router, hops, DAG."""
    gates = _gate_list(circuit_or_gates)
    used_qubits: Set[int] = set()
    for gate in gates:
        used_qubits.update(gate.qubits)
    missing = [q for q in used_qubits if q not in placement.positions]
    if missing:
        raise ValueError(
            f"{len(missing)} qubits used by the circuit are not placed "
            f"(first few: {sorted(missing)[:5]})"
        )

    mesh = Mesh.from_placement(
        placement.positions, width=placement.width, height=placement.height
    )
    router = BraidRouter(
        mesh,
        allow_detour=config.allow_detour,
        detour_slack=config.detour_slack,
        max_candidates=config.max_candidates,
    )
    hop_cells: Dict[int, LatticeCell] = {
        index: tile_to_lattice(cell) for index, cell in config.hops.items()
    }
    dag = build_dependency_dag(gates)
    return gates, mesh, router, hop_cells, dag


def _empty_result(placement: Placement) -> SimulationResult:
    return SimulationResult(
        latency=0,
        area=placement.area,
        gate_start=[],
        gate_end=[],
        stall_cycles=0,
        stall_events=0,
        braided_gates=0,
        max_concurrent_braids=0,
        total_braid_cells=0,
        distinct_stalls=0,
        wakeups=0,
    )


def simulate(
    circuit_or_gates,
    placement: Placement,
    config: Optional[SimulatorConfig] = None,
) -> SimulationResult:
    """Simulate a schedule on a placement and return timing/volume results.

    This is the cycle-accurate evaluation of Section VIII-A.  Every qubit
    referenced by the gate list must be placed; the simulation is
    deterministic, so the same (circuit, placement, config) triple always
    produces the same :class:`SimulationResult` (which is what makes
    :class:`SimulationCache` sound).

    Execution model:

    * gates become *ready* when every dependency (as computed by
      :func:`~repro.circuits.dag.build_dependency_dag`; any shared qubit is
      a true dependency) has completed;
    * ready gates are issued in program order; non-braided gates always
      start immediately;
    * a braided gate asks the :class:`~repro.routing.router.BraidRouter` for
      a path avoiding the cells locked by in-flight braids.  If no path
      exists the gate **stalls** until a braid completion frees a cell that
      blocked it (with ``allow_detour`` the router may instead accept a
      longer path through free channels, trading space for time; see the
      router's stall-vs-detour notes);
    * a routed braid locks its cells for the gate's duration and releases
      them on completion.

    This default engine keeps occupancy as one integer bitmask (bit ``i`` =
    lattice cell ``i``, see :meth:`~repro.routing.mesh.Mesh.cell_index`) and
    is **event-driven all the way down**: a stalled gate is parked in a
    cell -> waiters index keyed by its watch cells — one blocking cell per
    route candidate (the full locked set after a failed BFS detour) — and
    is re-tried only when a retiring braid frees one of those cells.
    Parking is sound because routing failure is monotone in the locked
    set: while every watch cell stays locked, each candidate still
    intersects the locked set, so skipped retries could not have
    succeeded.
    Issue order within an event is program order (a min-heap on the gate
    index), and time still jumps from one completion event to the next, so
    the cost is proportional to events plus wakeups — not
    ``events x stalled gates``.  Results are byte-identical to
    :func:`simulate_reference`, which retains the retry-every-event
    set-based loop as the verification oracle.

    Stalled cycles (start minus ready time, summed over gates) are reported
    as ``stall_cycles`` and charged to the mapping; see
    :class:`SimulationResult` for the three stall counters.

    Raises :class:`RoutingDeadlockError` if ready braids cannot be routed on
    an otherwise idle mesh, and :class:`RuntimeError` past
    ``config.max_cycles``.
    """
    config = config or SimulatorConfig()
    durations = config.durations
    gates, mesh, router, hop_cells, dag = _prepare_simulation(
        circuit_or_gates, placement, config
    )
    n = len(gates)
    if n == 0:
        return _empty_result(placement)

    remaining_preds = [len(p) for p in dag.predecessors]
    ready_time = [0] * n
    gate_start: List[int] = [-1] * n
    gate_end: List[int] = [-1] * n

    # Per-gate lookups hoisted out of the attempt loop: durations and gate
    # kinds are immutable, and enum/dict probes per retry are measurable on
    # congested runs.
    gate_durations = [gate.duration(durations) for gate in gates]
    gate_braided = [gate.is_braided for gate in gates]
    route_pair = router.route_pair_masked
    route_star = router.route_star_masked
    # Plain pair braids (no hop, no detour) are the overwhelming majority of
    # retries, so their candidate masks are cached per gate index and the
    # accept test is unrolled inline — a stalled gate's retry is then a few
    # integer ANDs with no method or dict-lookup overhead.  Stars, hop
    # routes and detour fallbacks keep going through the router.
    simple_pair = [
        gate.is_braided
        and gate.kind is not GateKind.CXX
        and index not in hop_cells
        and not config.allow_detour
        for index, gate in enumerate(gates)
    ]
    pair_masks: List[Optional[Tuple[int, ...]]] = [None] * n

    locked_mask = 0
    active: List[Tuple[int, int, int]] = []  # (end time, gate index, cell mask)
    now = 0
    completed = 0
    stall_events = 0
    distinct_stalls = 0
    wakeups = 0
    total_braid_cells = 0
    braided_gates = 0
    concurrent_braids = 0
    max_concurrent_braids = 0

    # Wakeup machinery.  ``scan`` counts completion-event iterations (the
    # reference engine's retry rounds); a gate that first stalled at scan s
    # and issues at scan t would have failed t - s reference retries, which
    # is how the legacy ``stall_events`` count is derived without performing
    # them.  ``blocker_mask[i]`` is nonzero exactly while gate i is parked;
    # ``waiters`` maps a cell index to the gates parked on it (entries are
    # lazily discarded when the recorded mask no longer claims the cell).
    scan = 0
    first_stall_scan = [-1] * n
    blocker_mask = [0] * n
    parked_count = 0
    waiters: Dict[int, List[int]] = {}
    # OR of every cell with at least one registered waiter: a retiring braid
    # whose mask misses it wakes nobody and costs a single AND — only the
    # intersecting bits are ever decomposed.
    waited_mask = 0

    # Gates to attempt at the current event, popped in program order.
    attempt: List[int] = [i for i in range(n) if remaining_preds[i] == 0]
    heapq.heapify(attempt)

    while completed < n:
        if now > config.max_cycles:
            raise RuntimeError(
                f"simulation exceeded max_cycles={config.max_cycles}"
            )
        # ------------------------------------------------------------------
        # Attempt every newly ready or woken gate, in program order.
        # ------------------------------------------------------------------
        while attempt:
            index = heapq.heappop(attempt)
            if gate_braided[index]:
                qubits = gates[index].qubits
                if simple_pair[index]:
                    masks = pair_masks[index]
                    if masks is None:
                        masks, _ = router._mask_plan(
                            mesh.qubit_cell(qubits[0]), mesh.qubit_cell(qubits[1])
                        )
                        pair_masks[index] = masks
                    if not locked_mask:
                        routed, mask = True, masks[0]
                    else:
                        routed = False
                        mask = 0
                        for candidate in masks:
                            hit = candidate & locked_mask
                            if not hit:
                                routed, mask = True, candidate
                                break
                            mask |= hit & -hit
                elif gates[index].kind is GateKind.CXX:
                    routed, mask = route_star(qubits[0], qubits[1:], locked_mask)
                else:
                    routed, mask = route_pair(
                        qubits[0],
                        qubits[1],
                        locked_mask,
                        hop=hop_cells.get(index) if hop_cells else None,
                    )
                if not routed:
                    # Park the gate on its watch cells (one blocker per
                    # blocked candidate); it is re-tried only when one of
                    # them is freed.
                    if first_stall_scan[index] < 0:
                        first_stall_scan[index] = scan
                        distinct_stalls += 1
                    blocker_mask[index] = mask
                    parked_count += 1
                    waited_mask |= mask
                    bits = mask
                    while bits:
                        low = bits & -bits
                        bits ^= low
                        waiters.setdefault(low.bit_length() - 1, []).append(index)
                    continue
                locked_mask |= mask
                total_braid_cells += _popcount(mask)
                braided_gates += 1
                concurrent_braids += 1
                if concurrent_braids > max_concurrent_braids:
                    max_concurrent_braids = concurrent_braids
            else:
                mask = 0
            if first_stall_scan[index] >= 0:
                # The reference engine would have re-tried (and failed) this
                # gate at every event since its first stall.
                stall_events += scan - first_stall_scan[index]
            duration = gate_durations[index]
            gate_start[index] = now
            gate_end[index] = now + duration
            heapq.heappush(active, (now + duration, index, mask))

        if not active:
            if parked_count:
                raise RoutingDeadlockError(
                    f"{parked_count} gates cannot be routed on an otherwise idle mesh"
                )
            break

        # ------------------------------------------------------------------
        # Advance to the next completion event, retire everything there, and
        # wake the gates parked on the freed cells.
        # ------------------------------------------------------------------
        now = active[0][0]
        scan += 1
        while active and active[0][0] == now:
            _, index, mask = heapq.heappop(active)
            if mask:
                locked_mask &= ~mask
                concurrent_braids -= 1
                bits = mask & waited_mask
                while bits:
                    low = bits & -bits
                    bits ^= low
                    waited_mask ^= low
                    queue = waiters.pop(low.bit_length() - 1, None)
                    if queue:
                        for waiter in queue:
                            if blocker_mask[waiter] & low:
                                blocker_mask[waiter] = 0
                                parked_count -= 1
                                wakeups += 1
                                heapq.heappush(attempt, waiter)
            completed += 1
            for successor in dag.successors[index]:
                remaining_preds[successor] -= 1
                if ready_time[successor] < now:
                    ready_time[successor] = now
                if remaining_preds[successor] == 0:
                    heapq.heappush(attempt, successor)

    latency = max(gate_end) if gate_end else 0
    stall_cycles = sum(
        max(0, start - ready_at)
        for start, ready_at in zip(gate_start, ready_time)
        if start >= 0
    )
    return SimulationResult(
        latency=latency,
        area=placement.area,
        gate_start=gate_start,
        gate_end=gate_end,
        stall_cycles=stall_cycles,
        stall_events=stall_events,
        braided_gates=braided_gates,
        max_concurrent_braids=max_concurrent_braids,
        total_braid_cells=total_braid_cells,
        distinct_stalls=distinct_stalls,
        wakeups=wakeups,
    )


def simulate_reference(
    circuit_or_gates,
    placement: Placement,
    config: Optional[SimulatorConfig] = None,
    track_wakeups: bool = True,
) -> SimulationResult:
    """The retained set-based oracle engine (PR 2/3 semantics).

    Occupancy is a plain set of lattice cells and every stalled gate is
    re-tried at every completion event — the straightforward transcription
    of the paper's semantics that :func:`simulate` must match byte for
    byte.  Use it to verify the default engine (the randomized parity suite
    does) or to time the pre-wakeup behaviour.

    With ``track_wakeups`` (the default) the oracle additionally runs
    *shadow parking accounting*: on each failed route it records the same
    blocker set the wakeup engine would park on (via the router's masked
    methods) and counts a wakeup whenever a retired braid frees one of the
    recorded cells, reproducing the wakeup engine's ``wakeups`` counter
    exactly.  Two invariants are asserted along the way — a retry that
    succeeds must coincide with a shadow wakeup (else the wakeup engine
    would have missed it), and the masked router must agree with the
    set-based router on every failure — so a divergence in the parking
    logic fails loudly here rather than silently skewing results.  Pass
    ``track_wakeups=False`` for like-for-like timing of the old engine
    (the result then reports ``wakeups=0``).
    """
    config = config or SimulatorConfig()
    durations = config.durations
    gates, mesh, router, hop_cells, dag = _prepare_simulation(
        circuit_or_gates, placement, config
    )
    n = len(gates)
    if n == 0:
        return _empty_result(placement)

    remaining_preds = [len(p) for p in dag.predecessors]
    ready_time = [0] * n
    ready: List[int] = [i for i in range(n) if remaining_preds[i] == 0]
    ready.sort()

    gate_start: List[int] = [-1] * n
    gate_end: List[int] = [-1] * n
    locked: Set[LatticeCell] = set()
    active: List[Tuple[int, int, FrozenSet[LatticeCell]]] = []
    now = 0
    completed = 0
    stall_events = 0
    stalled_ever: Set[int] = set()
    wakeups = 0

    # Shadow parking state (track_wakeups only): the blocker mask the wakeup
    # engine would have parked each stalled gate on, and the gates whose
    # recorded blockers intersected the cells freed at the current event.
    locked_mask = 0
    shadow: Dict[int, int] = {}
    woken: Set[int] = set()

    total_braid_cells = 0
    braided_gates = 0
    concurrent_braids = 0
    max_concurrent_braids = 0

    def try_route(index: int, gate: Gate) -> Optional[BraidPath]:
        """Attempt to route the braid of ``gate`` avoiding locked cells.

        The live ``locked`` set is passed to the router directly (it only
        reads it); copying it into a frozenset per attempt used to dominate
        retry cost on congested meshes.
        """
        if gate.kind is GateKind.CXX:
            return router.route_star(gate.qubits[0], gate.qubits[1:], locked)
        hop = hop_cells.get(index)
        return router.route_pair(gate.qubits[0], gate.qubits[1], locked, hop=hop)

    def shadow_blockers(index: int, gate: Gate) -> int:
        """The watch mask the wakeup engine would park this gate on."""
        if gate.kind is GateKind.CXX:
            routed, mask = router.route_star_masked(
                gate.qubits[0], gate.qubits[1:], locked_mask
            )
        else:
            routed, mask = router.route_pair_masked(
                gate.qubits[0], gate.qubits[1], locked_mask, hop=hop_cells.get(index)
            )
        if routed:
            raise AssertionError(
                f"engine divergence: the masked router routed gate {index} "
                "that the set-based router stalled"
            )
        return mask

    while completed < n:
        if now > config.max_cycles:
            raise RuntimeError(
                f"simulation exceeded max_cycles={config.max_cycles}"
            )
        # ------------------------------------------------------------------
        # Start every ready gate we can at the current time, in program order.
        # ------------------------------------------------------------------
        still_ready: List[int] = []
        for index in ready:
            gate = gates[index]
            duration = gate.duration(durations)
            if gate.is_braided:
                path = try_route(index, gate)
                if path is None:
                    stall_events += 1
                    stalled_ever.add(index)
                    if track_wakeups and (index not in shadow or index in woken):
                        # First stall, or a woken retry that failed again:
                        # the wakeup engine would (re-)park here.  A parked
                        # gate that was not woken keeps its recorded
                        # blockers, exactly like the wakeup engine.
                        shadow[index] = shadow_blockers(index, gate)
                    still_ready.append(index)
                    continue
                if track_wakeups:
                    if index in shadow and index not in woken:
                        raise AssertionError(
                            f"wakeup invariant violated: gate {index} routed "
                            "although none of its recorded blockers was freed"
                        )
                    shadow.pop(index, None)
                    locked_mask |= mesh.cells_mask(path.cells)
                locked.update(path.cells)
                total_braid_cells += path.length
                braided_gates += 1
                concurrent_braids += 1
                max_concurrent_braids = max(max_concurrent_braids, concurrent_braids)
                cells: FrozenSet[LatticeCell] = path.cells
            else:
                cells = frozenset()
            gate_start[index] = now
            gate_end[index] = now + duration
            heapq.heappush(active, (now + duration, index, cells))
        ready = still_ready
        woken.clear()

        if not active:
            if ready:
                raise RoutingDeadlockError(
                    f"{len(ready)} gates cannot be routed on an otherwise idle mesh"
                )
            break

        # ------------------------------------------------------------------
        # Advance to the next completion event and retire everything there.
        # ------------------------------------------------------------------
        now = active[0][0]
        freed_mask = 0
        while active and active[0][0] == now:
            _, index, cells = heapq.heappop(active)
            if cells:
                locked.difference_update(cells)
                concurrent_braids -= 1
                if track_wakeups:
                    freed_mask |= mesh.cells_mask(cells)
            completed += 1
            for successor in dag.successors[index]:
                remaining_preds[successor] -= 1
                ready_time[successor] = max(ready_time[successor], now)
                if remaining_preds[successor] == 0:
                    ready.append(successor)
        ready.sort()
        if track_wakeups and freed_mask:
            locked_mask &= ~freed_mask
            for index, blockers in shadow.items():
                if blockers & freed_mask:
                    woken.add(index)
            wakeups += len(woken)

    latency = max(gate_end) if gate_end else 0
    stall_cycles = sum(
        max(0, start - ready_at)
        for start, ready_at in zip(gate_start, ready_time)
        if start >= 0
    )
    return SimulationResult(
        latency=latency,
        area=placement.area,
        gate_start=gate_start,
        gate_end=gate_end,
        stall_cycles=stall_cycles,
        stall_events=stall_events,
        braided_gates=braided_gates,
        max_concurrent_braids=max_concurrent_braids,
        total_braid_cells=total_braid_cells,
        distinct_stalls=len(stalled_ever),
        wakeups=wakeups,
    )


def simulate_latency(
    circuit_or_gates, placement: Placement, config: Optional[SimulatorConfig] = None
) -> int:
    """Convenience wrapper returning only the circuit latency in cycles."""
    return simulate(circuit_or_gates, placement, config).latency


# ----------------------------------------------------------------------
# Simulation memoization
# ----------------------------------------------------------------------
#: Content fingerprints of circuits already hashed, keyed weakly by the
#: circuit object so the memo dies with the circuit.  Guarded by the gate
#: count: the evaluation pipeline treats circuits as immutable once built,
#: but a circuit that grew since it was fingerprinted is re-hashed.
_circuit_fingerprints: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


#: Schema tag salted into every circuit fingerprint.  Content hashes that
#: feed cache keys must be tag-salted (:func:`~repro.persistutil
#: .tagged_fingerprint`) so an encoding change re-addresses old digests
#: instead of colliding with them.
_CIRCUIT_FINGERPRINT_TAG = "repro-msfu-circuit/v1"


def _gates_fingerprint(gates: Sequence[Gate]) -> str:
    """Stable content hash of a gate sequence.

    Hashes exactly the gate properties the simulator depends on (kind and
    qubit operands, in order) via the tag-salted blake2b scheme of
    :func:`~repro.persistutil.tagged_fingerprint`, so the digest is
    identical across processes and interpreter runs — unlike built-in
    ``hash()``, which is randomized per process for strings.
    """
    parts: List[bytes] = []
    for gate in gates:
        parts.append(gate.kind.value.encode())
        parts.append(b"(")
        parts.append(",".join(map(str, gate.qubits)).encode())
        parts.append(b")")
    return tagged_fingerprint(_CIRCUIT_FINGERPRINT_TAG, b"".join(parts), digest_size=16)


def circuit_fingerprint(circuit_or_gates) -> str:
    """Content hash of a circuit (or raw gate sequence) for cache keying.

    :class:`~repro.circuits.circuit.Circuit` instances memoize their digest
    (recomputed if the gate count changed since it was taken).
    """
    if isinstance(circuit_or_gates, Circuit):
        cached = _circuit_fingerprints.get(circuit_or_gates)
        if cached is not None and cached[0] == len(circuit_or_gates):
            return cached[1]
        digest = _gates_fingerprint(circuit_or_gates.gates)
        _circuit_fingerprints[circuit_or_gates] = (len(circuit_or_gates), digest)
        return digest
    return _gates_fingerprint(tuple(circuit_or_gates))


def _placement_key(placement: Placement) -> Tuple:
    """Hashable placement identity for cache keys.

    Delegates to :meth:`~repro.mapping.placement.Placement.fingerprint`,
    which memoizes the sorted-positions tuple on the placement itself —
    hot sweeps probe the :class:`SimulationCache` with the same placement
    object many times, and re-sorting ``positions.items()`` per probe was
    O(n log n) pure overhead.
    """
    return placement.fingerprint()


def _config_key(config: SimulatorConfig) -> Tuple:
    """Hashable key covering *every* :class:`SimulatorConfig` field.

    Derived from ``dataclasses.fields`` so a future config knob is included
    automatically (an unhashable new field fails loudly here rather than
    silently aliasing distinct configs in the cache); only the two mapping
    fields need explicit normalization.
    """
    key = []
    for f in dataclasses.fields(SimulatorConfig):
        value = getattr(config, f.name)
        if f.name == "durations":
            value = tuple(sorted((kind.value, int(v)) for kind, v in value.items()))
        elif f.name == "hops":
            value = tuple(sorted((index, tuple(cell)) for index, cell in value.items()))
        key.append((f.name, value))
    return tuple(key)


def simulation_cache_key(
    circuit_or_gates,
    placement: Placement,
    config: Optional[SimulatorConfig] = None,
) -> Tuple:
    """The memoization key for one simulation: (circuit hash, placement, config).

    Two simulations with equal keys are guaranteed to produce equal results
    (the simulator is deterministic), which is what makes
    :class:`SimulationCache` a pure optimization.
    """
    return (
        circuit_fingerprint(circuit_or_gates),
        _placement_key(placement),
        _config_key(config or SimulatorConfig()),
    )


#: Version tag folded into :func:`simulation_fingerprint`.  Bump whenever
#: simulator semantics or the cache-key encoding change, so persisted cache
#: files from older code become unreachable instead of wrong.  v2: circuit
#: fingerprints moved to the tag-salted blake2b scheme, changing every
#: cache key's digest component.
SIM_CACHE_SCHEMA_VERSION = 2

_SIM_FINGERPRINT_TAG = "repro-msfu-sim-cache/v{version}"


class SimulationCacheWarning(UserWarning):
    """A persisted simulation-cache file or entry was unreadable."""


def _key_fingerprint(key: Tuple, schema_version: int = SIM_CACHE_SCHEMA_VERSION) -> str:
    """Hex content address of one cache key (store fingerprint discipline).

    The key tuple contains only primitives with deterministic ``repr``
    (digest strings, ints, floats, bools, nested tuples), so hashing the
    ``repr`` is stable across processes and machines — the same
    :func:`~repro.persistutil.tagged_fingerprint` scheme as
    :func:`repro.api.store.request_fingerprint`.
    """
    return tagged_fingerprint(
        _SIM_FINGERPRINT_TAG.format(version=schema_version), repr(key)
    )


def simulation_fingerprint(
    circuit_or_gates,
    placement: Placement,
    config: Optional[SimulatorConfig] = None,
) -> str:
    """Stable hex fingerprint of one simulation point.

    This is the persistence address used by :meth:`SimulationCache.save` /
    :meth:`SimulationCache.load` — equal fingerprints name byte-identical
    :class:`SimulationResult`s, exactly like the request fingerprints of
    :class:`repro.api.store.ResultStore`.
    """
    return _key_fingerprint(
        simulation_cache_key(circuit_or_gates, placement, config)
    )


class SimulationCache:
    """LRU memo of :class:`SimulationResult`s keyed by (circuit, placement, config).

    Sweeps frequently revisit the same simulation point — the same factory
    under the same mapping appears in multiple figures, in reuse/no-reuse
    comparisons, and in repeated CLI runs within one process.  Routing
    through a cache makes every repeat free.  Cached results must be treated
    as read-only (they are shared between hits).

    The cache is bounded (``max_entries``, LRU eviction) because results
    hold per-gate timing lists.  ``hits`` / ``misses`` counters make cache
    accounting exact for benchmarking.

    Entries are **persistable**: :meth:`save` writes every live entry to a
    JSON file addressed by :func:`simulation_fingerprint` (the same
    blake2b + schema-tag discipline as the
    :class:`~repro.api.store.ResultStore`), and :meth:`load` rehydrates
    them into a fingerprint-indexed side table consulted on in-memory
    misses (``persisted_hits`` counts those answers, which also count as
    ``hits``).  A corrupt or foreign-schema file loads as empty with a
    :class:`SimulationCacheWarning`, never as wrong results.

    Note the bounds: ``max_entries`` caps only the hot LRU table.  The
    persisted side table holds whatever :meth:`load` read — bounded by the
    file, or explicitly via ``load(..., max_persisted=N)`` for long-lived
    processes loading cache files grown over many :meth:`save` cycles.
    """

    def __init__(self, max_entries: int = 512) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.persisted_hits = 0
        self._entries: "OrderedDict[Tuple, SimulationResult]" = OrderedDict()
        self._persisted: Dict[str, SimulationResult] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop every cached result, persisted ones included (counters kept)."""
        self._entries.clear()
        self._persisted.clear()

    def simulate(
        self,
        circuit_or_gates,
        placement: Placement,
        config: Optional[SimulatorConfig] = None,
    ) -> SimulationResult:
        """Memoized :func:`simulate` — repeated sweep points never re-simulate."""
        if not isinstance(circuit_or_gates, Circuit):
            # Materialize one-shot iterables up front: fingerprinting reads
            # the gates once and the simulation must read the same gates.
            circuit_or_gates = tuple(circuit_or_gates)
        key = simulation_cache_key(circuit_or_gates, placement, config)
        cached = self._entries.get(key)
        if cached is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            return cached
        if self._persisted:
            # Only pay the fingerprint hash when a persisted table exists.
            persisted = self._persisted.get(_key_fingerprint(key))
            if persisted is not None:
                self.hits += 1
                self.persisted_hits += 1
                self._insert(key, persisted)
                return persisted
        result = simulate(circuit_or_gates, placement, config)
        self.misses += 1
        self._insert(key, result)
        return result

    def lookup(
        self,
        circuit_or_gates,
        placement: Placement,
        config: Optional[SimulatorConfig] = None,
    ) -> Optional[SimulationResult]:
        """Probe the memo without simulating on a miss.

        A hit counts as a ``hits`` (exactly like :meth:`simulate`); a miss
        returns ``None`` *uncounted* — the caller is expected to compute the
        result some other way (e.g. through the batched engine) and insert
        it with :meth:`store_result`, which books the miss.  The batched
        evaluation pipeline uses this pair so its cache accounting is
        identical to per-request :meth:`simulate` calls.
        """
        if not isinstance(circuit_or_gates, Circuit):
            circuit_or_gates = tuple(circuit_or_gates)
        key = simulation_cache_key(circuit_or_gates, placement, config)
        cached = self._entries.get(key)
        if cached is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            return cached
        if self._persisted:
            persisted = self._persisted.get(_key_fingerprint(key))
            if persisted is not None:
                self.hits += 1
                self.persisted_hits += 1
                self._insert(key, persisted)
                return persisted
        return None

    def store_result(
        self,
        circuit_or_gates,
        placement: Placement,
        config: Optional[SimulatorConfig],
        result: SimulationResult,
    ) -> None:
        """Insert an externally computed result, counted as a ``misses``.

        The counterpart of a :meth:`lookup` miss: simulation happened
        outside the cache (the batched engine), so book the miss here to
        keep the hit/miss counters byte-identical to an unbatched run.
        """
        if not isinstance(circuit_or_gates, Circuit):
            circuit_or_gates = tuple(circuit_or_gates)
        key = simulation_cache_key(circuit_or_gates, placement, config)
        self.misses += 1
        self._insert(key, result)

    def _insert(self, key: Tuple, result: SimulationResult) -> None:
        self._entries[key] = result
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path) -> int:
        """Write every live entry (in-memory + persisted) to a JSON file.

        Returns the number of entries written.  The write is atomic
        (temporary file + :func:`os.replace`), mirroring the result store.
        """
        entries: Dict[str, Dict] = {
            fingerprint: result.to_dict()
            for fingerprint, result in self._persisted.items()
        }
        for key, result in self._entries.items():
            entries[_key_fingerprint(key)] = result.to_dict()
        payload = {
            "schema": _SIM_FINGERPRINT_TAG.format(version=SIM_CACHE_SCHEMA_VERSION),
            "entries": entries,
        }
        atomic_write_json(path, payload)
        return len(entries)

    @classmethod
    def load(
        cls,
        path,
        max_entries: int = 512,
        max_persisted: Optional[int] = None,
    ) -> "SimulationCache":
        """Rehydrate a cache saved by :meth:`save`.

        Unreadable files, foreign schema tags, and undecodable entries are
        skipped with a :class:`SimulationCacheWarning` — a stale or damaged
        cache file degrades to re-simulation, never to wrong results.
        ``max_persisted`` caps how many entries are held in memory (the
        first N of the file, with a warning when truncating); the default
        ``None`` loads everything.
        """
        cache = cls(max_entries=max_entries)
        try:
            with open(os.fspath(path), "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError, UnicodeDecodeError) as error:
            warnings.warn(
                f"simulation cache: cannot load {path} ({error}); starting empty",
                SimulationCacheWarning,
                stacklevel=2,
            )
            return cache
        expected = _SIM_FINGERPRINT_TAG.format(version=SIM_CACHE_SCHEMA_VERSION)
        if not isinstance(payload, dict) or payload.get("schema") != expected:
            warnings.warn(
                f"simulation cache: {path} has schema "
                f"{payload.get('schema') if isinstance(payload, dict) else None!r}, "
                f"expected {expected!r}; starting empty",
                SimulationCacheWarning,
                stacklevel=2,
            )
            return cache
        entries = payload.get("entries")
        if entries is not None and not isinstance(entries, dict):
            warnings.warn(
                f"simulation cache: {path} has a non-object entries table; "
                f"starting empty",
                SimulationCacheWarning,
                stacklevel=2,
            )
            return cache
        for fingerprint, entry in (entries or {}).items():
            if max_persisted is not None and len(cache._persisted) >= max_persisted:
                warnings.warn(
                    f"simulation cache: {path} holds more than {max_persisted} "
                    f"entries; loading only the first {max_persisted}",
                    SimulationCacheWarning,
                    stacklevel=2,
                )
                break
            try:
                cache._persisted[str(fingerprint)] = SimulationResult.from_dict(entry)
            except (AttributeError, KeyError, TypeError, ValueError) as error:
                warnings.warn(
                    f"simulation cache: skipping undecodable entry "
                    f"{fingerprint} in {path} ({error})",
                    SimulationCacheWarning,
                    stacklevel=2,
                )
        return cache
