"""Surface-code braid routing substrate and cycle-accurate simulator."""

from .braid import BraidPath
from .mesh import Cell, LatticeCell, Mesh, is_channel_cell, lattice_to_tile, tile_to_lattice
from .router import BraidRouter, bfs_detour, rectilinear_candidates
from .simulator import (
    RoutingDeadlockError,
    SimulationResult,
    SimulatorConfig,
    simulate,
    simulate_latency,
)

__all__ = [
    "BraidPath",
    "Cell",
    "LatticeCell",
    "Mesh",
    "is_channel_cell",
    "lattice_to_tile",
    "tile_to_lattice",
    "BraidRouter",
    "bfs_detour",
    "rectilinear_candidates",
    "RoutingDeadlockError",
    "SimulationResult",
    "SimulatorConfig",
    "simulate",
    "simulate_latency",
]
