"""Surface-code braid routing substrate and cycle-accurate simulator.

This package is the evaluation substrate of the paper (Section VIII-A).  It
models the 2-D surface-code architecture of Fig. 1 and executes gate-level
schedules on it:

* :class:`Mesh` — the doubled channel lattice derived from a qubit
  placement: tiles at odd/odd lattice cells, routing channels everywhere a
  coordinate is even;
* :class:`BraidPath` — the spatial footprint of one braided operation (a
  set of lattice cells); two braids conflict exactly when their footprints
  intersect;
* :class:`BraidRouter` — turns qubit pairs (or single-control multi-target
  stars) into concrete braid paths avoiding the currently locked cells,
  with the paper's **stall** baseline or the ablation's **detour** policy
  (see the router docstring for the semantics of each);
* :func:`simulate` — the event-driven, cycle-accurate simulator: gates
  issue in program order as dependencies retire, braids lock their cells
  for the gate duration, blocked braids stall until a completion frees
  cells.  The default engine keeps occupancy as an integer bitmask and
  parks stalled braids on the cells that blocked them (wakeup on release);
  :func:`simulate_reference` retains the set-based retry-every-event
  oracle that the parity suite checks it against, byte for byte;
* :func:`simulate_batch` — the batched core: groups same-circuit sweep
  points and advances all of them per event-loop iteration (numpy lanes,
  plus an optional runtime-compiled C kernel), byte-identical to
  :func:`simulate` at any batch size and falling back to it point-by-point
  when numpy is unavailable;
* :class:`SimulationCache` / :func:`simulation_cache_key` — memoization of
  deterministic simulation results keyed by (circuit fingerprint,
  placement, simulator config), used by the evaluation pipeline so repeated
  sweep points never re-simulate.
"""

from .batchsim import kernel_available, numpy_available, simulate_batch
from .braid import BraidPath
from .mesh import (
    Cell,
    LatticeCell,
    Mesh,
    is_channel_cell,
    lattice_to_tile,
    tile_to_lattice,
)
from .router import BraidRouter, bfs_detour, bfs_detour_mask, rectilinear_candidates
from .simulator import (
    RoutingDeadlockError,
    SimulationCache,
    SimulationCacheWarning,
    SimulationResult,
    SimulatorConfig,
    circuit_fingerprint,
    simulate,
    simulate_latency,
    simulate_reference,
    simulation_cache_key,
    simulation_fingerprint,
)

__all__ = [
    "BraidPath",
    "Cell",
    "LatticeCell",
    "Mesh",
    "is_channel_cell",
    "lattice_to_tile",
    "tile_to_lattice",
    "BraidRouter",
    "bfs_detour",
    "bfs_detour_mask",
    "rectilinear_candidates",
    "RoutingDeadlockError",
    "SimulationCache",
    "SimulationCacheWarning",
    "SimulationResult",
    "SimulatorConfig",
    "circuit_fingerprint",
    "kernel_available",
    "numpy_available",
    "simulate",
    "simulate_batch",
    "simulate_latency",
    "simulate_reference",
    "simulation_cache_key",
    "simulation_fingerprint",
]
