"""Recursive graph-partitioning grid embedding (the paper's "GP" mapper).

Section VI-B.2: the interaction graph is recursively bisected (multilevel
heavy-edge-matching coarsening + refined min-cut, see
:mod:`repro.graphs.partition`) and every graph bisection is matched by a
bisection of the physical grid region into which the qubits are being
mapped.  The recursion bottoms out when a region holds a handful of qubits,
which are then assigned to cells directly.  Because every cut minimises the
number of interaction edges that cross it, strongly interacting qubits end up
spatially close and the global structure of the circuit (including the
permutation edges of a multi-level factory) is optimised directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import networkx as nx

from ..circuits.circuit import Circuit
from ..graphs.interaction import interaction_graph
from ..graphs.partition import bisect
from .placement import Cell, Placement, grid_dimensions_for


@dataclass(frozen=True)
class GridRegion:
    """A rectangular sub-region of the tile grid ([row0, row1) x [col0, col1))."""

    row0: int
    col0: int
    row1: int
    col1: int

    @property
    def height(self) -> int:
        return self.row1 - self.row0

    @property
    def width(self) -> int:
        return self.col1 - self.col0

    @property
    def area(self) -> int:
        return self.height * self.width

    def cells(self) -> List[Cell]:
        """All cells of the region in row-major order."""
        return [
            (row, col)
            for row in range(self.row0, self.row1)
            for col in range(self.col0, self.col1)
        ]

    def split(self, left_fraction: float) -> Tuple["GridRegion", "GridRegion"]:
        """Bisect the region along its longer axis.

        ``left_fraction`` is the fraction of the area the first half should
        receive; the cut is placed on the nearest whole row/column while
        keeping both halves non-empty.
        """
        if self.height >= self.width:
            split_row = self.row0 + max(
                1, min(self.height - 1, round(self.height * left_fraction))
            )
            return (
                GridRegion(self.row0, self.col0, split_row, self.col1),
                GridRegion(split_row, self.col0, self.row1, self.col1),
            )
        split_col = self.col0 + max(
            1, min(self.width - 1, round(self.width * left_fraction))
        )
        return (
            GridRegion(self.row0, self.col0, self.row1, split_col),
            GridRegion(self.row0, split_col, self.row1, self.col1),
        )


def _embed_recursive(
    graph: nx.Graph,
    vertices: List[int],
    region: GridRegion,
    placement: Placement,
    seed: int,
    leaf_size: int,
) -> None:
    """Recursively bisect ``vertices`` and ``region`` together."""
    if not vertices:
        return
    if len(vertices) > region.area:
        raise ValueError(
            f"region of area {region.area} cannot hold {len(vertices)} qubits"
        )
    if (
        len(vertices) <= leaf_size
        or region.area <= leaf_size
        or min(region.height, region.width) <= 1
    ):
        cells = region.cells()
        ordered = _order_leaf_vertices(graph, vertices)
        for vertex, cell in zip(ordered, cells):
            placement.place(vertex, cell)
        return

    subgraph = graph.subgraph(vertices).copy()
    target_left = len(vertices) // 2
    result = bisect(subgraph, target_left=target_left, seed=seed)
    left, right = list(result.left), list(result.right)
    if not left or not right:
        # Degenerate cut (e.g. disconnected dust): fall back to an even split.
        middle = len(vertices) // 2
        left, right = vertices[:middle], vertices[middle:]
    left_fraction = len(left) / (len(left) + len(right))
    region_left, region_right = region.split(left_fraction)
    if region_left.area < len(left) or region_right.area < len(right):
        # The rounding starved one side; rebalance by swapping the split.
        region_left, region_right = region.split(len(left) / max(1, len(vertices)))
        if region_left.area < len(left) or region_right.area < len(right):
            cells = region.cells()
            ordered = _order_leaf_vertices(graph, vertices)
            for vertex, cell in zip(ordered, cells):
                placement.place(vertex, cell)
            return
    _embed_recursive(graph, left, region_left, placement, seed * 2 + 1, leaf_size)
    _embed_recursive(graph, right, region_right, placement, seed * 2 + 2, leaf_size)


def _order_leaf_vertices(graph: nx.Graph, vertices: List[int]) -> List[int]:
    """Order a leaf's vertices so strongly connected ones are adjacent.

    A simple greedy chain: start from the highest-degree vertex and repeatedly
    append the unvisited vertex most strongly connected to the current one.
    """
    if len(vertices) <= 2:
        return sorted(vertices)
    remaining = set(vertices)
    subgraph = graph.subgraph(vertices)
    current = max(remaining, key=lambda v: subgraph.degree(v, weight="weight"))
    order = [current]
    remaining.remove(current)
    while remaining:
        neighbors = [
            (subgraph[current][n].get("weight", 1), n)
            for n in subgraph.neighbors(current)
            if n in remaining
        ]
        if neighbors:
            _, best = max(neighbors)
        else:
            best = min(remaining)
        order.append(best)
        remaining.remove(best)
        current = best
    return order


def graph_partition_placement(
    circuit_or_graph,
    width: Optional[int] = None,
    height: Optional[int] = None,
    qubits: Optional[Sequence[int]] = None,
    seed: int = 0,
    leaf_size: int = 4,
    slack: float = 1.3,
) -> Placement:
    """Map a circuit (or interaction graph) onto a grid by recursive bisection.

    Parameters
    ----------
    circuit_or_graph:
        A :class:`~repro.circuits.circuit.Circuit` or a pre-built interaction
        graph.
    width, height:
        Grid dimensions; chosen automatically with routing slack when omitted.
    qubits:
        Explicit vertex set to place (defaults to every circuit qubit / graph
        node).
    seed:
        Random seed threaded through the coarsening heuristics.
    leaf_size:
        Recursion stops when a region holds this many qubits or fewer.
    slack:
        Extra area factor used when dimensions are chosen automatically.
    """
    if isinstance(circuit_or_graph, Circuit):
        graph = interaction_graph(circuit_or_graph)
        vertex_list = (
            list(qubits)
            if qubits is not None
            else list(range(circuit_or_graph.num_qubits))
        )
    else:
        graph = circuit_or_graph
        vertex_list = list(qubits) if qubits is not None else list(graph.nodes())

    for vertex in vertex_list:
        if vertex not in graph:
            graph.add_node(vertex)

    if width is None or height is None:
        height, width = grid_dimensions_for(len(vertex_list), slack=slack)
    placement = Placement(width=width, height=height)
    region = GridRegion(0, 0, height, width)
    _embed_recursive(graph, vertex_list, region, placement, seed, leaf_size)
    placement.validate()
    return placement
