"""Hierarchical stitching mapper (Section VII).

Hierarchical stitching (HS) is the paper's synthesis of the scheduling and
mapping techniques: it exploits the fact that each round of a block-code
factory decomposes into disjoint planar modules that can be embedded nearly
optimally, and spends its optimisation effort on the *inter-round permutation
step* that dominates multi-level factories.  The procedure, following the
flow chart of Fig. 3:

1. **Map each module** of a round with a single-level technique (the
   hand-optimized linear block layout by default, or recursive graph
   partitioning of the module's planar interaction graph).
2. **Concatenate and arrange modules**: module blocks are packed onto the
   grid with the *later-round modules in the centre* and the producing
   modules around them, so the permuted outputs converge inward instead of
   criss-crossing the machine (the embedding of Fig. 8).
3. **Port reassignment**: within each producer module the k output states
   are interchangeable, so the output port each consumer receives is chosen
   (by solving a small assignment problem per producer) to minimise the
   distance the permuted state must travel.
4. **Intermediate-hop routing** of the permutation braids: each permutation
   braid may be routed through a Valiant-style intermediate destination; the
   hop locations are either random or annealed with the same force-directed
   ideas (edge-distance centroids, repulsion, rotation) to spread the
   permutation braids over the mesh (Fig. 9c/9d).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..distillation.block_code import (
    Factory,
    FactorySpec,
    ModuleInstance,
    PortMap,
    ReusePolicy,
    build_factory,
    default_port_map,
)
from ..graphs.interaction import interaction_graph
from ..graphs.metrics import segments_intersect
from .force_directed import ForceDirectedConfig, force_directed_refine
from .graph_partition import graph_partition_placement
from .linear import linear_module_cells, linear_module_shape
from .placement import Cell, Placement
from ..circuits.gates import GateKind


@dataclass
class StitchingConfig:
    """Tuning knobs of the hierarchical stitching mapper."""

    #: Per-module embedding technique: "linear" (hand-optimized block layout)
    #: or "graph_partition" (recursive bisection of the module's planar graph).
    module_mapper: str = "linear"
    #: Optionally refine each module block with a short force-directed pass.
    refine_modules: bool = False
    #: Intermediate-hop policy for permutation braids: "none", "random",
    #: "annealed_random" or "annealed_midpoint" (the paper's best variant).
    hop_mode: str = "annealed_midpoint"
    #: Annealing sweeps over the permutation hops.
    hop_sweeps: int = 4
    #: Empty tile rows/columns left between adjacent module blocks.  The
    #: doubled channel lattice already provides a routing corridor between
    #: every pair of adjacent tiles, so the default packs blocks tightly.
    gap: int = 0
    #: Whether to perform the port-reassignment optimisation.
    reassign_ports: bool = True
    seed: int = 0


@dataclass
class StitchedMapping:
    """The output of hierarchical stitching.

    Attributes
    ----------
    factory:
        The factory (rebuilt with the reassigned port maps) whose circuit the
        placement and hops refer to.
    placement:
        The qubit placement.
    hops:
        Map from gate index (in ``factory.circuit``) to the intermediate tile
        cell the permutation braid should route through; feed this to
        :class:`~repro.routing.simulator.SimulatorConfig`.
    port_maps:
        The chosen per-boundary port maps.
    """

    factory: Factory
    placement: Placement
    hops: Dict[int, Cell]
    port_maps: List[PortMap] = field(default_factory=list)


# ----------------------------------------------------------------------
# Module embedding
# ----------------------------------------------------------------------
def _module_block_placement(
    factory: Factory,
    module: ModuleInstance,
    config: StitchingConfig,
) -> Placement:
    """Near-optimal placement of a single module in local (block) coordinates.

    Only qubits owned by the module and, for round 1, its raw inputs are
    placed; inputs of later rounds already live in previous-round blocks.
    """
    spec = factory.spec.module
    place_raw = module.round_index == 1

    if config.module_mapper == "linear":
        if place_raw:
            height, width = linear_module_shape(spec)
            cells = linear_module_cells(spec)
            placement = Placement(width=width, height=height)
            for local_index, qubit in enumerate(module.anc_qubits):
                placement.place(qubit, cells["anc"][local_index])
            for local_index, qubit in enumerate(module.out_qubits):
                placement.place(qubit, cells["out"][local_index])
            for local_index, qubit in enumerate(module.raw_qubits):
                placement.place(qubit, cells["raw"][local_index])
        else:
            # Later-round modules receive their inputs from other blocks, so
            # only the ancillas and outputs need cells: a compact two-row
            # block with every output directly above the ancilla it talks to.
            width = spec.num_ancillas
            placement = Placement(width=width, height=2)
            for local_index, qubit in enumerate(module.anc_qubits):
                placement.place(qubit, (1, local_index))
            for local_index, qubit in enumerate(module.out_qubits):
                placement.place(qubit, (0, 5 + local_index))
    elif config.module_mapper == "graph_partition":
        gates = [
            gate
            for gate in factory.round_gates(module.round_index)
            if gate.tag == f"r{module.round_index}.m{module.module_index}"
        ]
        qubits = list(module.local_qubits)
        if place_raw:
            qubits = list(module.all_qubits)
        graph = interaction_graph(gates, include_qubits=qubits)
        graph = graph.subgraph(qubits).copy()
        placement = graph_partition_placement(
            graph, qubits=qubits, seed=config.seed, slack=1.15
        )
    else:
        raise ValueError(f"unknown module mapper {config.module_mapper!r}")

    if config.refine_modules:
        gates = [
            gate
            for gate in factory.round_gates(module.round_index)
            if gate.tag == f"r{module.round_index}.m{module.module_index}"
        ]
        graph = interaction_graph(gates, include_qubits=list(placement.positions))
        graph = graph.subgraph(list(placement.positions)).copy()
        placement = force_directed_refine(
            graph,
            placement,
            ForceDirectedConfig(sweeps=8, use_communities=False, seed=config.seed),
        )
    return placement


# ----------------------------------------------------------------------
# Module arrangement (concatenation with later rounds in the centre)
# ----------------------------------------------------------------------
def _arrange_blocks(
    factory: Factory,
    blocks: Dict[Tuple[int, int], Placement],
    gap: int,
) -> Placement:
    """Pack all module blocks onto one grid, later rounds in the centre.

    Block slots form a near-square grid; slots are ranked by distance to the
    grid centre and the modules of later rounds claim the most central slots,
    which shortens the inter-round permutation braids (cf. Fig. 8).
    """
    block_keys = list(blocks.keys())
    block_width = max(p.width for p in blocks.values())
    block_height = max(p.height for p in blocks.values())
    count = len(block_keys)
    # Choose the slot-grid shape that wastes the least area while staying
    # close to square (a long thin arrangement would stretch the braids).
    best_columns = max(1, math.ceil(math.sqrt(count)))
    best_area = None
    for columns_candidate in range(
        max(1, best_columns - 2), best_columns + 3
    ):
        rows_candidate = math.ceil(count / columns_candidate)
        area = (rows_candidate * (block_height + gap)) * (
            columns_candidate * (block_width + gap)
        )
        if best_area is None or area < best_area:
            best_area = area
            best_columns = columns_candidate
    columns = best_columns
    rows = math.ceil(count / columns)

    slots = [(r, c) for r in range(rows) for c in range(columns)]
    centre = ((rows - 1) / 2.0, (columns - 1) / 2.0)
    slots.sort(
        key=lambda slot: (math.hypot(slot[0] - centre[0], slot[1] - centre[1]), slot)
    )

    # Later rounds first in the slot ranking (they get the central slots).
    ordered_keys = sorted(block_keys, key=lambda key: (-key[0], key[1]))
    assignment = dict(zip(ordered_keys, slots))

    total_width = columns * (block_width + gap) - gap
    total_height = rows * (block_height + gap) - gap
    combined = Placement(width=max(1, total_width), height=max(1, total_height))
    for key, block in blocks.items():
        slot_row, slot_col = assignment[key]
        row_offset = slot_row * (block_height + gap)
        col_offset = slot_col * (block_width + gap)
        for qubit, (row, col) in block.positions.items():
            if qubit not in combined.positions:
                combined.place(qubit, (row + row_offset, col + col_offset))
    return combined


# ----------------------------------------------------------------------
# Port reassignment
# ----------------------------------------------------------------------
def _reassign_ports(
    factory: Factory, placement: Placement
) -> List[PortMap]:
    """Choose which output port of each producer feeds each consumer.

    For every producer module the k output qubits must go to k distinct
    consumer modules; the assignment minimising the total Manhattan distance
    from each output qubit's position to its consumer's input centroid is
    found with the Hungarian algorithm (``scipy.optimize``), independently
    per producer since producers do not share output qubits.
    """
    from scipy.optimize import linear_sum_assignment

    spec = factory.spec
    port_maps: List[PortMap] = []
    for boundary in range(1, spec.levels):
        producers = factory.rounds[boundary - 1]
        consumers = factory.rounds[boundary]
        consumer_centroids: Dict[int, Tuple[float, float]] = {}
        for consumer in consumers:
            cells = [
                placement.positions[q]
                for q in consumer.local_qubits
                if q in placement.positions
            ]
            if not cells:
                consumer_centroids[consumer.module_index] = (0.0, 0.0)
            else:
                consumer_centroids[consumer.module_index] = (
                    sum(c[0] for c in cells) / len(cells),
                    sum(c[1] for c in cells) / len(cells),
                )

        reference = default_port_map(spec, boundary)
        consumers_of_producer: Dict[int, List[int]] = {}
        for (producer_index, consumer_index) in reference:
            consumers_of_producer.setdefault(producer_index, []).append(consumer_index)

        port_map: PortMap = {}
        for producer in producers:
            target_consumers = sorted(consumers_of_producer[producer.module_index])
            cost_matrix = []
            for port, out_qubit in enumerate(producer.out_qubits):
                out_position = placement.positions[out_qubit]
                row_costs = []
                for consumer_index in target_consumers:
                    centroid = consumer_centroids[consumer_index]
                    row_costs.append(
                        abs(out_position[0] - centroid[0])
                        + abs(out_position[1] - centroid[1])
                    )
                cost_matrix.append(row_costs)
            row_indices, col_indices = linear_sum_assignment(cost_matrix)
            for port, consumer_slot in zip(row_indices, col_indices):
                consumer_index = target_consumers[consumer_slot]
                port_map[(producer.module_index, consumer_index)] = int(port)
        port_maps.append(port_map)
    return port_maps


# ----------------------------------------------------------------------
# Permutation braids and intermediate hops
# ----------------------------------------------------------------------
def permutation_gate_indices(factory: Factory) -> List[int]:
    """Indices of the gates that realise the inter-round permutation step.

    These are the injection gates of rounds beyond the first whose consumed
    state is an output qubit of the previous round; they are the braids whose
    congestion the intermediate-hop optimisation targets.
    """
    producer_outputs: Set[int] = {
        edge.producer_qubit for edge in factory.permutation_edges
    }
    indices: List[int] = []
    for index, gate in enumerate(factory.circuit):
        if gate.kind in (GateKind.INJECT_T, GateKind.INJECT_TDAG):
            if gate.qubits[0] in producer_outputs:
                indices.append(index)
    return indices


def _free_cells(placement: Placement) -> List[Cell]:
    free = placement.free_cells()
    if free:
        return free
    return [
        (row, col) for row in range(placement.height) for col in range(placement.width)
    ]


def _hop_congestion(
    segments: Dict[int, List[Tuple[Tuple[float, float], Tuple[float, float]]]],
    index: int,
) -> float:
    """Crossing count of one braid's polyline against all other braids'."""
    crossings = 0.0
    mine = segments[index]
    for other_index, other_segments in segments.items():
        if other_index == index:
            continue
        for a1, a2 in mine:
            for b1, b2 in other_segments:
                if segments_intersect(a1, a2, b1, b2):
                    crossings += 1.0
    return crossings


def _segments_for(
    source: Cell, target: Cell, hop: Optional[Cell]
) -> List[Tuple[Tuple[float, float], Tuple[float, float]]]:
    src = (float(source[0]), float(source[1]))
    dst = (float(target[0]), float(target[1]))
    if hop is None:
        return [(src, dst)]
    mid = (float(hop[0]), float(hop[1]))
    return [(src, mid), (mid, dst)]


def optimize_permutation_hops(
    factory: Factory,
    placement: Placement,
    config: Optional[StitchingConfig] = None,
) -> Dict[int, Cell]:
    """Assign (and optionally anneal) intermediate hops for permutation braids.

    Returns a map from gate index to the hop *tile* cell, suitable for
    :class:`~repro.routing.simulator.SimulatorConfig.hops`.  The annealed
    modes start from a random cell or the braid's midpoint and then locally
    move each hop to reduce the number of crossings among the permutation
    braids' polylines, weighted against the extra distance the hop adds.
    """
    config = config or StitchingConfig()
    indices = permutation_gate_indices(factory)
    if not indices or config.hop_mode == "none":
        return {}

    rng = random.Random(config.seed)
    free = _free_cells(placement)
    hops: Dict[int, Cell] = {}
    endpoints: Dict[int, Tuple[Cell, Cell]] = {}
    for index in indices:
        gate = factory.circuit[index]
        source = placement.positions[gate.qubits[0]]
        target = placement.positions[gate.qubits[1]]
        endpoints[index] = (source, target)
        if config.hop_mode == "random" or config.hop_mode == "annealed_random":
            hops[index] = free[rng.randrange(len(free))]
        else:  # midpoint-based
            hops[index] = (
                (source[0] + target[0]) // 2,
                (source[1] + target[1]) // 2,
            )

    if config.hop_mode == "random":
        return hops

    # Annealing: locally move each hop to reduce crossings + detour length.
    segments = {
        index: _segments_for(endpoints[index][0], endpoints[index][1], hops[index])
        for index in indices
    }

    def hop_cost(index: int, hop: Cell) -> float:
        source, target = endpoints[index]
        detour = (
            abs(source[0] - hop[0])
            + abs(source[1] - hop[1])
            + abs(hop[0] - target[0])
            + abs(hop[1] - target[1])
            - abs(source[0] - target[0])
            - abs(source[1] - target[1])
        )
        segments[index] = _segments_for(source, target, hop)
        crossings = _hop_congestion(segments, index)
        return 4.0 * crossings + 0.5 * detour

    for _sweep in range(config.hop_sweeps):
        order = list(indices)
        rng.shuffle(order)
        for index in order:
            current = hops[index]
            current_cost = hop_cost(index, current)
            best_hop = current
            best_cost = current_cost
            candidates = [
                (current[0] + dr, current[1] + dc)
                for dr in (-2, -1, 0, 1, 2)
                for dc in (-2, -1, 0, 1, 2)
                if (dr, dc) != (0, 0)
            ]
            candidates.append(free[rng.randrange(len(free))])
            for candidate in candidates:
                if not (
                    0 <= candidate[0] < placement.height
                    and 0 <= candidate[1] < placement.width
                ):
                    continue
                cost = hop_cost(index, candidate)
                if cost < best_cost:
                    best_cost = cost
                    best_hop = candidate
            hops[index] = best_hop
            segments[index] = _segments_for(
                endpoints[index][0], endpoints[index][1], best_hop
            )
    return hops


# ----------------------------------------------------------------------
# Top-level procedure
# ----------------------------------------------------------------------
def hierarchical_stitching(
    spec: FactorySpec,
    reuse_policy: ReusePolicy = ReusePolicy.NO_REUSE,
    config: Optional[StitchingConfig] = None,
    factory: Optional[Factory] = None,
) -> StitchedMapping:
    """Run the full hierarchical stitching procedure for a factory spec.

    Builds the factory (with barriers between rounds, which expose the
    per-round planarity), embeds and arranges the module blocks, reassigns
    output ports, rebuilds the factory circuit with the chosen port maps and
    finally optimises the permutation-braid hops.

    An already-built ``factory`` (same spec/reuse, built with barriers) may
    be supplied to skip the initial construction — the evaluation pipeline
    uses this to share one base factory across every mapper in a sweep.  The
    given factory is only read; port reassignment still produces a rebuilt
    copy.
    """
    config = config or StitchingConfig()
    if factory is not None:
        if (
            factory.spec != spec
            or factory.reuse_policy is not reuse_policy
            or not factory.barriers_between_rounds
        ):
            raise ValueError(
                "supplied factory does not match the requested spec/reuse "
                "(it must be built with barriers_between_rounds=True)"
            )
    else:
        factory = build_factory(
            spec, reuse_policy=reuse_policy, barriers_between_rounds=True
        )

    blocks: Dict[Tuple[int, int], Placement] = {}
    for module in factory.modules():
        block = _module_block_placement(factory, module, config)
        blocks[(module.round_index, module.module_index)] = block
    placement = _arrange_blocks(factory, blocks, gap=config.gap)

    port_maps: List[PortMap] = []
    if config.reassign_ports and spec.levels > 1:
        port_maps = _reassign_ports(factory, placement)
        factory = build_factory(
            spec,
            reuse_policy=reuse_policy,
            barriers_between_rounds=True,
            port_maps=port_maps,
        )

    hops = optimize_permutation_hops(factory, placement, config)
    return StitchedMapping(
        factory=factory, placement=placement, hops=hops, port_maps=port_maps
    )


def stitched_mapping_for_factory(
    factory: Factory, config: Optional[StitchingConfig] = None
) -> StitchedMapping:
    """Stitching for an already-built factory, keeping its wiring fixed.

    Port reassignment is skipped (it would change the circuit); module
    embedding, central arrangement and hop optimisation are still applied.
    Useful when comparing mappers on the exact same circuit instance.
    """
    config = config or StitchingConfig()
    blocks: Dict[Tuple[int, int], Placement] = {}
    for module in factory.modules():
        block = _module_block_placement(factory, module, config)
        blocks[(module.round_index, module.module_index)] = block
    placement = _arrange_blocks(factory, blocks, gap=config.gap)
    hops = optimize_permutation_hops(factory, placement, config)
    return StitchedMapping(factory=factory, placement=placement, hops=hops)
