"""Qubit mapping: baselines, force-directed, graph partitioning, stitching."""

from .force_directed import (
    ForceDirectedConfig,
    RefineStats,
    assign_dipole_poles,
    force_directed_placement,
    force_directed_refine,
    refine_run_count,
    take_refine_stats,
)
from .graph_partition import GridRegion, graph_partition_placement
from .linear import (
    linear_factory_placement,
    linear_module_cells,
    linear_module_shape,
    linear_single_module_placement,
)
from .placement import (
    Cell,
    Placement,
    grid_dimensions_for,
    pack_placements,
    row_major_placement,
)
from .random_map import random_circuit_placement, random_placement, random_placements
from .stitching import (
    StitchedMapping,
    StitchingConfig,
    hierarchical_stitching,
    optimize_permutation_hops,
    permutation_gate_indices,
    stitched_mapping_for_factory,
)

__all__ = [
    "ForceDirectedConfig",
    "RefineStats",
    "assign_dipole_poles",
    "force_directed_placement",
    "force_directed_refine",
    "refine_run_count",
    "take_refine_stats",
    "GridRegion",
    "graph_partition_placement",
    "linear_factory_placement",
    "linear_module_cells",
    "linear_module_shape",
    "linear_single_module_placement",
    "Cell",
    "Placement",
    "grid_dimensions_for",
    "pack_placements",
    "row_major_placement",
    "random_circuit_placement",
    "random_placement",
    "random_placements",
    "StitchedMapping",
    "StitchingConfig",
    "hierarchical_stitching",
    "optimize_permutation_hops",
    "permutation_gate_indices",
    "stitched_mapping_for_factory",
]
