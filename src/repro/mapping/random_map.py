"""Random placement baseline.

Table I's "Random" row places the factory's qubits uniformly at random on the
grid.  Randomized mappings are also the sample population for the Fig. 6
correlation study: by drawing many random placements and simulating each, the
relationship between the geometric metrics (crossings, edge length, edge
spacing) and realized latency can be measured.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..circuits.circuit import Circuit
from .placement import Placement, grid_dimensions_for


def random_placement(
    qubits: Sequence[int],
    width: Optional[int] = None,
    height: Optional[int] = None,
    seed: int = 0,
    slack: float = 1.3,
) -> Placement:
    """Place ``qubits`` on uniformly random distinct cells.

    Parameters
    ----------
    qubits:
        The logical qubits to place.
    width, height:
        Grid dimensions; chosen automatically (near-square with routing
        slack) when omitted.
    seed:
        Seed of the private random generator, so placements are reproducible.
    slack:
        Extra area factor used when dimensions are chosen automatically.
    """
    if width is None or height is None:
        height, width = grid_dimensions_for(len(qubits), slack=slack)
    if len(qubits) > width * height:
        raise ValueError(
            f"cannot place {len(qubits)} qubits on a {height}x{width} grid"
        )
    rng = random.Random(seed)
    cells = [(row, col) for row in range(height) for col in range(width)]
    chosen = rng.sample(cells, len(qubits))
    placement = Placement(width=width, height=height)
    for qubit, cell in zip(qubits, chosen):
        placement.place(qubit, cell)
    return placement


def random_circuit_placement(
    circuit: Circuit,
    width: Optional[int] = None,
    height: Optional[int] = None,
    seed: int = 0,
    slack: float = 1.3,
) -> Placement:
    """Random placement of every qubit of a circuit."""
    return random_placement(
        list(range(circuit.num_qubits)),
        width=width,
        height=height,
        seed=seed,
        slack=slack,
    )


def random_placements(
    qubits: Sequence[int],
    count: int,
    width: Optional[int] = None,
    height: Optional[int] = None,
    base_seed: int = 0,
    slack: float = 1.3,
) -> List[Placement]:
    """A family of ``count`` random placements with distinct seeds.

    Used by the Fig. 6 correlation experiment, which needs a population of
    mappings spanning a range of metric values.
    """
    return [
        random_placement(
            qubits, width=width, height=height, seed=base_seed + i, slack=slack
        )
        for i in range(count)
    ]
