"""Placement of logical qubits onto the 2-D tile grid.

Every mapper in this package produces a :class:`Placement`: an injective map
from logical qubit indices to ``(row, col)`` tile coordinates on a rectangular
grid of logical-qubit tiles (Fig. 1 of the paper).  The grid dimensions define
the factory's *area* (in logical qubits) and the coordinates feed both the
mapping-quality metrics of :mod:`repro.graphs.metrics` and the braid-routing
simulator of :mod:`repro.routing`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

Cell = Tuple[int, int]


@dataclass
class Placement:
    """An assignment of logical qubits to grid tiles.

    Attributes
    ----------
    width:
        Number of tile columns in the grid.
    height:
        Number of tile rows in the grid.
    positions:
        Mapping from qubit index to ``(row, col)`` tile.
    """

    width: int
    height: int
    positions: Dict[int, Cell] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.width < 1 or self.height < 1:
            raise ValueError(
                f"grid must be at least 1x1, got {self.height}x{self.width}"
            )
        self.validate()  # also builds the occupied-cells index

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def area(self) -> int:
        """Grid area in logical-qubit tiles (the paper's Fig. 10b/10d metric)."""
        return self.width * self.height

    @property
    def num_qubits(self) -> int:
        """Number of qubits placed."""
        return len(self.positions)

    def __contains__(self, qubit: int) -> bool:
        return qubit in self.positions

    def __getitem__(self, qubit: int) -> Cell:
        return self.positions[qubit]

    def __iter__(self) -> Iterator[int]:
        return iter(self.positions)

    def position(self, qubit: int) -> Cell:
        """The tile of ``qubit`` (KeyError if unplaced)."""
        return self.positions[qubit]

    def occupant(self, cell: Cell) -> Optional[int]:
        """The qubit occupying ``cell``, or ``None`` — O(1) via the index."""
        return self._occupied.get(cell)

    def occupied_cells(self) -> Dict[Cell, int]:
        """Map of occupied cells back to the qubit occupying them.

        Returns a copy of the incrementally maintained index; use
        :meth:`occupant` for single-cell lookups in hot loops.
        """
        return dict(self._occupied)

    def in_bounds(self, cell: Cell) -> bool:
        """Whether ``cell`` lies inside the grid."""
        row, col = cell
        return 0 <= row < self.height and 0 <= col < self.width

    def free_cells(self) -> List[Cell]:
        """All unoccupied cells, row-major order."""
        occupied = self._occupied
        return [
            (row, col)
            for row in range(self.height)
            for col in range(self.width)
            if (row, col) not in occupied
        ]

    def fingerprint(self) -> Tuple[int, int, Tuple[Tuple[int, Cell], ...]]:
        """Memoized hashable identity: ``(width, height, sorted positions)``.

        Cache keys (e.g. :class:`~repro.routing.simulator.SimulationCache`)
        probe with the same placement object many times per sweep; the
        sorted-positions tuple is computed once and invalidated by the
        mutation helpers (:meth:`place`, :meth:`swap`, :meth:`move`) and by
        :meth:`validate`.  As with the occupied-cells index, code that
        mutates ``positions`` directly must call :meth:`validate` to
        resynchronise.
        """
        cached = self._fingerprint
        if cached is None:
            cached = (
                self.width,
                self.height,
                tuple(sorted(self.positions.items())),
            )
            self._fingerprint = cached
        return cached

    def validate(self) -> None:
        """Raise :class:`ValueError` if the placement is out of bounds or overlapping.

        Also rebuilds the occupied-cells index from ``positions`` and drops
        the memoized :meth:`fingerprint`, so callers that mutated
        ``positions`` directly can resynchronise by validating.
        """
        seen: Dict[Cell, int] = {}
        for qubit, cell in self.positions.items():
            if not self.in_bounds(cell):
                raise ValueError(
                    f"qubit {qubit} placed at {cell}, outside "
                    f"{self.height}x{self.width} grid"
                )
            if cell in seen:
                raise ValueError(
                    f"qubits {seen[cell]} and {qubit} both placed at {cell}"
                )
            seen[cell] = qubit
        self._occupied: Dict[Cell, int] = seen
        self._fingerprint: Optional[Tuple[int, int, Tuple[Tuple[int, Cell], ...]]] = (
            None
        )

    # ------------------------------------------------------------------
    # Mutation helpers
    # ------------------------------------------------------------------
    def place(self, qubit: int, cell: Cell) -> None:
        """Place (or move) ``qubit`` at ``cell``; the cell must be free."""
        if not self.in_bounds(cell):
            raise ValueError(f"cell {cell} outside {self.height}x{self.width} grid")
        occupant = self._occupied.get(cell)
        if occupant is not None and occupant != qubit:
            raise ValueError(f"cell {cell} already occupied by qubit {occupant}")
        previous = self.positions.get(qubit)
        if previous is not None and previous != cell:
            del self._occupied[previous]
        self.positions[qubit] = cell
        self._occupied[cell] = qubit
        self._fingerprint = None

    def swap(self, qubit_a: int, qubit_b: int) -> None:
        """Swap the cells of two placed qubits."""
        cell_a = self.positions[qubit_a]
        cell_b = self.positions[qubit_b]
        self.positions[qubit_a] = cell_b
        self.positions[qubit_b] = cell_a
        self._occupied[cell_b] = qubit_a
        self._occupied[cell_a] = qubit_b
        self._fingerprint = None

    def move(self, qubit: int, cell: Cell) -> None:
        """Move ``qubit`` to ``cell``; swaps with any current occupant."""
        if not self.in_bounds(cell):
            raise ValueError(f"cell {cell} outside {self.height}x{self.width} grid")
        occupant = self._occupied.get(cell)
        if occupant is None or occupant == qubit:
            previous = self.positions.get(qubit)
            if previous is not None and previous != cell:
                del self._occupied[previous]
            self.positions[qubit] = cell
            self._occupied[cell] = qubit
            self._fingerprint = None
        else:
            self.swap(qubit, occupant)

    def copy(self) -> "Placement":
        """Deep copy of this placement."""
        return Placement(self.width, self.height, dict(self.positions))

    def translated(self, row_offset: int, col_offset: int) -> "Placement":
        """Return a copy of the placement shifted by the given offsets.

        The grid is grown if the shift pushes cells past the current bounds;
        negative shifts must stay within bounds.
        """
        new_positions = {
            qubit: (row + row_offset, col + col_offset)
            for qubit, (row, col) in self.positions.items()
        }
        max_row = max((cell[0] for cell in new_positions.values()), default=0)
        max_col = max((cell[1] for cell in new_positions.values()), default=0)
        return Placement(
            width=max(self.width, max_col + 1),
            height=max(self.height, max_row + 1),
            positions=new_positions,
        )

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def as_float_positions(self) -> Dict[int, Tuple[float, float]]:
        """Positions as floats, for the geometric metrics and force fields."""
        return {
            qubit: (float(row), float(col))
            for qubit, (row, col) in self.positions.items()
        }


def grid_dimensions_for(
    num_qubits: int, aspect_ratio: float = 1.0, slack: float = 1.3
) -> Tuple[int, int]:
    """Pick grid dimensions able to hold ``num_qubits`` qubits.

    ``slack`` controls the extra routing area reserved beyond the minimum
    square: the paper's factories keep channels between logical qubits, and a
    completely full grid leaves no room for braids to route around each
    other.  Returns ``(height, width)``.
    """
    if num_qubits < 1:
        raise ValueError(f"num_qubits must be >= 1, got {num_qubits}")
    if slack < 1.0:
        raise ValueError(f"slack must be >= 1.0, got {slack}")
    cells = max(1, math.ceil(num_qubits * slack))
    height = max(1, int(round(math.sqrt(cells / aspect_ratio))))
    width = max(1, math.ceil(cells / height))
    while height * width < num_qubits:
        width += 1
    return height, width


def row_major_placement(
    qubits: Sequence[int],
    width: Optional[int] = None,
    height: Optional[int] = None,
) -> Placement:
    """Place ``qubits`` in row-major order on a grid.

    If dimensions are omitted a near-square grid with routing slack is chosen
    via :func:`grid_dimensions_for`.
    """
    if width is None or height is None:
        height, width = grid_dimensions_for(len(qubits))
    placement = Placement(width=width, height=height)
    if len(qubits) > width * height:
        raise ValueError(
            f"cannot place {len(qubits)} qubits on a {height}x{width} grid"
        )
    for index, qubit in enumerate(qubits):
        placement.place(qubit, (index // width, index % width))
    return placement


def pack_placements(
    placements: Sequence[Placement],
    columns: Optional[int] = None,
    gap: int = 1,
) -> Tuple[Placement, List[Tuple[int, int]]]:
    """Tile several placements side by side into one combined placement.

    Each input placement keeps its internal geometry; blocks are arranged in
    a grid of ``columns`` blocks per row with ``gap`` empty tile rows/columns
    between blocks (the empty space provides routing channels between
    modules).  Returns the combined placement and the per-block
    ``(row_offset, col_offset)`` origins.

    The qubit index spaces of the inputs must be disjoint.
    """
    if not placements:
        raise ValueError("pack_placements needs at least one placement")
    if columns is None:
        columns = max(1, int(math.ceil(math.sqrt(len(placements)))))
    block_width = max(p.width for p in placements)
    block_height = max(p.height for p in placements)
    rows = math.ceil(len(placements) / columns)
    total_width = columns * block_width + (columns - 1) * gap
    total_height = rows * block_height + (rows - 1) * gap

    combined = Placement(width=total_width, height=total_height)
    origins: List[Tuple[int, int]] = []
    for index, block in enumerate(placements):
        block_row = index // columns
        block_col = index % columns
        row_offset = block_row * (block_height + gap)
        col_offset = block_col * (block_width + gap)
        origins.append((row_offset, col_offset))
        for qubit, (row, col) in block.positions.items():
            if qubit in combined.positions:
                raise ValueError(
                    f"qubit {qubit} appears in more than one packed placement"
                )
            combined.place(qubit, (row + row_offset, col + col_offset))
    return combined, origins
