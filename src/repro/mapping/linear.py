"""Linear mapping baseline (Fowler, Devitt & Jones block layout).

The paper's baseline is the hand-optimized layout of reference [19], which
the authors describe as a *linear* mapping: each Bravyi-Haah module is laid
out as a compact strip in which every ancilla sits next to the raw states it
absorbs, and modules are then placed one after another along a line.  This
layout is nearly optimal for single-level factories (Fig. 7a, Fig. 10a) but
incurs large permutation overheads for multi-level factories because
consecutive rounds end up far apart along the line (Fig. 10c/10f).

The module-local geometry used here:

    row 0:                out[0] ... out[k-1]        tail raw states
    row 1:        raw[0] raw[2] ... raw[2k+6]        (T injections)
    row 2:  anc[0] anc[1] anc[2] ...     anc[k+4]    (syndrome ancillas)
    row 3:        raw[1] raw[3] ... raw[2k+7]        (T-dagger injections)

so that every injection braid is a unit-length vertical hop and the CXX
fan-outs run along the ancilla row.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..distillation.block_code import Factory, ModuleInstance
from ..distillation.bravyi_haah import BravyiHaahSpec
from .placement import Cell, Placement


def linear_module_cells(spec: BravyiHaahSpec) -> Dict[str, List[Cell]]:
    """Module-local cell assignment for the linear layout.

    Returns a dict with keys ``"raw"``, ``"anc"`` and ``"out"`` whose values
    list the local cells of each register in index order.  The local block is
    ``module_height x module_width`` cells, obtainable from
    :func:`linear_module_shape`.
    """
    k = spec.k
    anc_cells = [(2, col) for col in range(k + 5)]
    raw_cells: List[Cell] = [None] * spec.num_raw_states  # type: ignore[list-item]
    # Main injection loops: raw[2i-2] above anc[i], raw[2i-1] below anc[i].
    for i in range(1, k + 5):
        raw_cells[2 * i - 2] = (1, i)
        raw_cells[2 * i - 1] = (3, i)
    # Outputs sit above the ancillas they interact with (anc[5+i]); the tail
    # raw states sit below those same ancillas on the bottom row.
    out_cells = [(0, 5 + i) for i in range(k)]
    for i in range(k):
        raw_cells[2 * k + 8 + i] = (4, 5 + i)
    return {"raw": raw_cells, "anc": anc_cells, "out": out_cells}


def linear_module_shape(spec: BravyiHaahSpec) -> Tuple[int, int]:
    """(height, width) of one module block under the linear layout."""
    return 5, spec.k + 5


def linear_factory_placement(
    factory: Factory,
    modules_per_row: Optional[int] = None,
    gap: int = 1,
) -> Placement:
    """Linear-mapping placement of a whole factory.

    Modules are laid out block after block in linear (row-major) order, with
    no regard for the inter-round permutation structure: round 1's modules
    come first, then round 2's, and so on.  Within a module the hand-
    optimized strip layout of [19] is used, which is why this baseline is
    nearly optimal for single-level factories; the obliviousness to the
    permutation step is what makes it deteriorate on multi-level factories
    (Fig. 10c/10f).  ``modules_per_row`` controls the wrap width; the default
    wraps to a near-square arrangement of module blocks.

    Qubits already placed by an earlier round (reused qubits, or outputs
    feeding the next round) keep their positions.
    """
    spec = factory.spec.module
    block_height, block_width = linear_module_shape(spec)

    total_modules = sum(len(round_modules) for round_modules in factory.rounds)
    if modules_per_row is None:
        modules_per_row = max(1, round(total_modules**0.5))
    modules_per_row = max(1, modules_per_row)

    rows_of_blocks = 0
    for round_modules in factory.rounds:
        rows_of_blocks += -(-len(round_modules) // modules_per_row)
    width = modules_per_row * (block_width + gap)
    height = rows_of_blocks * (block_height + gap)
    placement = Placement(width=width, height=height)

    block_row_cursor = 0
    for round_index, round_modules in enumerate(factory.rounds, start=1):
        for position, module in enumerate(round_modules):
            block_row = block_row_cursor + position // modules_per_row
            block_col = position % modules_per_row
            origin = (
                block_row * (block_height + gap),
                block_col * (block_width + gap),
            )
            place_raw = round_index == 1
            _place_unplaced_module(placement, module, spec, origin, place_raw)
        block_row_cursor += -(-len(round_modules) // modules_per_row)
    return placement


def _place_unplaced_module(
    placement: Placement,
    module: ModuleInstance,
    spec: BravyiHaahSpec,
    origin: Cell,
    place_raw: bool,
) -> None:
    """Place the module's qubits that do not yet have a position."""
    cells = linear_module_cells(spec)
    row0, col0 = origin

    def place_if_new(qubit: int, cell: Cell) -> None:
        if qubit not in placement.positions:
            placement.place(qubit, cell)

    for local_index, qubit in enumerate(module.anc_qubits):
        row, col = cells["anc"][local_index]
        place_if_new(qubit, (row0 + row, col0 + col))
    for local_index, qubit in enumerate(module.out_qubits):
        row, col = cells["out"][local_index]
        place_if_new(qubit, (row0 + row, col0 + col))
    if place_raw:
        for local_index, qubit in enumerate(module.raw_qubits):
            row, col = cells["raw"][local_index]
            place_if_new(qubit, (row0 + row, col0 + col))


def linear_single_module_placement(factory: Factory) -> Placement:
    """Placement of a single-module (single-level) factory, tightly cropped."""
    if factory.spec.levels != 1 or len(factory.rounds[0]) != 1:
        raise ValueError("expected a single-level, single-module factory")
    return linear_factory_placement(factory)
