"""Force-directed annealing mapper (Section VI-B.1).

The force-directed (FD) procedure iteratively transforms an initial mapping
by simulating three kinds of forces, each targeting one of the congestion
heuristics of Section VI-A:

* **vertex-vertex attraction** — every vertex is pulled toward the centroid
  of its interaction-graph neighbours, shrinking average edge length;
* **edge-edge repulsion** — braids repel each other through forces between
  edge midpoints (inverse-square in the midpoint distance), spreading edges
  uniformly over the mesh;
* **magnetic dipole rotation** — every vertex is assigned a north/south pole
  by 2-colouring the interaction graph; opposite poles attract and identical
  poles repel, which rotates edges toward (anti-)parallel orientations and
  reduces edge crossings.

Vertices are moved along the net force through an annealing acceptance rule
(improving moves always accepted, worsening moves accepted with Boltzmann
probability under a cooling temperature).  Acceptance is judged against the
*exact* combined cost of Section VI-A's metric triple — edge crossings,
average edge length, average edge spacing — maintained incrementally by
:class:`repro.graphs.metrics.MappingCostTracker`, so the annealer optimizes
the objective Fig. 6 reports at every graph size.  When progress stalls,
higher-level
*community* moves — repulsion between distinct communities, or attraction of
a fragmented community's clusters (located by KMeans) back together — kick
the mapping out of the local minimum, exactly as described in the paper.
"""

from __future__ import annotations

import math
import random
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import networkx as nx

try:  # Optional: vectorises the per-sweep force evaluation.
    import numpy as _np
except ImportError:  # pragma: no cover - the container bakes numpy in
    _np = None

from ..circuits.circuit import Circuit
from ..graphs.community import (
    community_centroid,
    community_fragmentation,
    detect_communities,
)
from ..graphs.interaction import interaction_graph
from ..graphs.metrics import MappingCostTracker
from .placement import Cell, Placement, grid_dimensions_for, row_major_placement

Vector = Tuple[float, float]


@dataclass
class ForceDirectedConfig:
    """Tuning knobs of the force-directed annealer.

    The ``use_*`` switches exist for the ablation benchmarks (e.g. running
    the annealer without the dipole rotation force to quantify how much the
    edge-crossing heuristic contributes).
    """

    sweeps: int = 30
    temperature: float = 1.0
    cooling: float = 0.88
    attraction_weight: float = 1.0
    repulsion_weight: float = 1.0
    dipole_weight: float = 1.0
    neighborhood_radius: int = 4
    #: Maximum cells a vertex may travel in one move (the net force sets the
    #: actual distance, clamped to this bound).
    max_step: int = 4
    community_patience: int = 5
    max_community_moves: int = 4
    use_attraction: bool = True
    use_edge_repulsion: bool = True
    use_dipole: bool = True
    use_communities: bool = True
    cost_crossing_weight: float = 4.0
    seed: int = 0


def assign_dipole_poles(graph: nx.Graph, seed: int = 0) -> Dict[int, int]:
    """Assign a +1 / -1 pole to every vertex by greedy 2-colouring.

    The interaction graph of a full schedule is generally not bipartite, so
    a BFS greedy colouring is used: each vertex takes the pole that conflicts
    with the fewest already-coloured neighbours.  Within a single timestep the
    graph is a disjoint union of paths (the paper's observation), for which
    this reduces to an exact 2-colouring.
    """
    poles: Dict[int, int] = {}
    rng = random.Random(seed)
    nodes = list(graph.nodes())
    rng.shuffle(nodes)
    for start in nodes:
        if start in poles:
            continue
        poles[start] = 1
        queue = [start]
        while queue:
            vertex = queue.pop()
            for neighbor in graph.neighbors(vertex):
                if neighbor in poles:
                    continue
                opposite = sum(
                    1
                    for n in graph.neighbors(neighbor)
                    if poles.get(n) == -poles[vertex]
                )
                same = sum(
                    1
                    for n in graph.neighbors(neighbor)
                    if poles.get(n) == poles[vertex]
                )
                poles[neighbor] = -poles[vertex] if same >= opposite else poles[vertex]
                queue.append(neighbor)
    return poles


def _bucket_key(position: Vector, bucket: float) -> Tuple[int, int]:
    return (int(position[0] // bucket), int(position[1] // bucket))


def _nearby_buckets(key: Tuple[int, int]) -> List[Tuple[int, int]]:
    row, col = key
    return [(row + dr, col + dc) for dr in (-1, 0, 1) for dc in (-1, 0, 1)]


def _np_bucket_pairs(keys, count: int):
    """Ordered (i, j) index pairs whose keys fall in a 3x3 neighbourhood.

    numpy twin of the ``_bucket_key`` / ``_nearby_buckets`` scan: for every
    bucket, pairs its members against the members of the nine surrounding
    buckets (both orders, self-pairs dropped), as flat index arrays ready
    for vectorized force kernels.  Returns ``None`` when no pair exists.
    """
    if count == 0:
        return None
    kr = keys[:, 0]
    kc = keys[:, 1]
    # Pack each 2-D bucket key into one integer; one unit of headroom on
    # every side keeps the nine neighbour offsets collision-free.
    width = int(kc.max()) - int(kc.min()) + 3
    code = (kr - int(kr.min()) + 1) * width + (kc - int(kc.min()) + 1)
    order = _np.argsort(code, kind="stable")
    sorted_code = code[order]
    # For every member and every one of the nine neighbour offsets, the
    # members of the target bucket form a contiguous run of the sorted
    # codes; expand all runs at once without a per-bucket Python loop.
    offsets = _np.asarray(
        [dr * width + dc for dr in (-1, 0, 1) for dc in (-1, 0, 1)],
        dtype=code.dtype,
    )
    targets = (code[_np.newaxis, :] + offsets[:, _np.newaxis]).ravel()
    start = _np.searchsorted(sorted_code, targets, side="left")
    end = _np.searchsorted(sorted_code, targets, side="right")
    counts = end - start
    total = int(counts.sum())
    if total == 0:
        return None
    members = _np.tile(_np.arange(count, dtype=_np.intp), 9)
    left = _np.repeat(members, counts)
    base = _np.cumsum(counts) - counts
    span = _np.arange(total, dtype=_np.intp) - _np.repeat(base, counts)
    right = order[_np.repeat(start, counts) + span]
    keep = left != right
    if not keep.any():
        return None
    return left[keep], right[keep]


class _ForceField:
    """Computes the per-vertex net force for the current placement.

    With numpy present the three force kernels run vectorized over flat
    index arrays prepared once at construction (adjacency pairs, edge
    endpoints, poles); the bucket pruning of the pairwise kernels matches
    the scalar fallback's 3x3 neighbourhood scan.  The scalar fallback
    keeps the original per-vertex loops; its force values can differ from
    the vectorized path in the last ulp (summation order), which is fine —
    reproducibility is pinned per environment, and the cost tracker (whose
    engines *are* bit-identical) is what accepts or rejects moves.
    """

    def __init__(
        self,
        graph: nx.Graph,
        config: ForceDirectedConfig,
        poles: Mapping[int, int],
    ) -> None:
        self.graph = graph
        self.config = config
        self.poles = poles
        self._vectorized = _np is not None
        if not self._vectorized:
            return
        nodes = list(graph.nodes())
        self._nodes = nodes
        index = {vertex: i for i, vertex in enumerate(nodes)}
        n = len(nodes)
        owner: List[int] = []
        neighbor: List[int] = []
        for vertex in nodes:
            for other in graph.neighbors(vertex):
                owner.append(index[vertex])
                neighbor.append(index[other])
        self._nbr_owner = _np.asarray(owner, dtype=_np.intp)
        self._nbr_index = _np.asarray(neighbor, dtype=_np.intp)
        self._degree = _np.bincount(self._nbr_owner, minlength=n).astype(float)
        edges = list(graph.edges())
        self._edge_u = _np.asarray([index[a] for a, _ in edges], dtype=_np.intp)
        self._edge_v = _np.asarray([index[b] for _, b in edges], dtype=_np.intp)
        self._pole_arr = _np.asarray(
            [poles.get(vertex, 1) for vertex in nodes], dtype=_np.int64
        )

    def forces(self, positions: Mapping[int, Cell]) -> Dict[int, Vector]:
        """Net force on every vertex under the current positions."""
        config = self.config
        if self._vectorized:
            nodes = self._nodes
            if not nodes:
                return {}
            pos = _np.asarray(
                [positions[vertex] for vertex in nodes], dtype=float
            ).reshape(len(nodes), 2)
            out = _np.zeros((len(nodes), 2), dtype=float)
            if config.use_attraction:
                self._np_attraction(pos, out)
            if config.use_edge_repulsion:
                self._np_edge_repulsion(pos, out)
            if config.use_dipole:
                self._np_dipole(pos, out)
            return {
                vertex: (float(out[i, 0]), float(out[i, 1]))
                for i, vertex in enumerate(nodes)
            }
        forces: Dict[int, List[float]] = {v: [0.0, 0.0] for v in self.graph.nodes()}
        if config.use_attraction:
            self._add_attraction(positions, forces)
        if config.use_edge_repulsion:
            self._add_edge_repulsion(positions, forces)
        if config.use_dipole:
            self._add_dipole(positions, forces)
        return {v: (f[0], f[1]) for v, f in forces.items()}

    # ------------------------------------------------------------------
    # Vectorized kernels
    # ------------------------------------------------------------------
    def _np_attraction(self, pos, out) -> None:
        """Pull every vertex toward the centroid of its neighbourhood."""
        if self._nbr_owner.size == 0:
            return
        weight = self.config.attraction_weight
        n = pos.shape[0]
        sum_r = _np.bincount(
            self._nbr_owner, weights=pos[self._nbr_index, 0], minlength=n
        )
        sum_c = _np.bincount(
            self._nbr_owner, weights=pos[self._nbr_index, 1], minlength=n
        )
        degree = self._degree
        has = degree > 0
        safe = _np.where(has, degree, 1.0)
        out[:, 0] += _np.where(has, weight * (sum_r / safe - pos[:, 0]), 0.0)
        out[:, 1] += _np.where(has, weight * (sum_c / safe - pos[:, 1]), 0.0)

    def _np_edge_repulsion(self, pos, out) -> None:
        """Repel edges from each other through their midpoints."""
        m = self._edge_u.size
        if m == 0:
            return
        weight = self.config.repulsion_weight
        bucket = float(max(2, self.config.neighborhood_radius))
        mids = (pos[self._edge_u] + pos[self._edge_v]) / 2.0
        pairs = _np_bucket_pairs(
            _np.floor_divide(mids, bucket).astype(_np.int64), m
        )
        if pairs is None:
            return
        left, right = pairs
        d_row = mids[left, 0] - mids[right, 0]
        d_col = mids[left, 1] - mids[right, 1]
        dist_sq = d_row * d_row + d_col * d_col
        tiny = dist_sq < 1e-9
        d_row = _np.where(tiny, 0.5, d_row)
        d_col = _np.where(tiny, 0.5, d_col)
        dist_sq = _np.where(tiny, 0.5, dist_sq)
        magnitude = weight / dist_sq
        # The repulsion acts on the edge; split it between the endpoints.
        push_r = _np.bincount(left, weights=magnitude * d_row, minlength=m) / 2.0
        push_c = _np.bincount(left, weights=magnitude * d_col, minlength=m) / 2.0
        n = pos.shape[0]
        out[:, 0] += _np.bincount(self._edge_u, weights=push_r, minlength=n)
        out[:, 0] += _np.bincount(self._edge_v, weights=push_r, minlength=n)
        out[:, 1] += _np.bincount(self._edge_u, weights=push_c, minlength=n)
        out[:, 1] += _np.bincount(self._edge_v, weights=push_c, minlength=n)

    def _np_dipole(self, pos, out) -> None:
        """Pole-based dipole forces: opposite poles attract, identical repel."""
        n = pos.shape[0]
        weight = self.config.dipole_weight
        radius = float(self.config.neighborhood_radius)
        pairs = _np_bucket_pairs(
            _np.floor_divide(pos, radius).astype(_np.int64), n
        )
        if pairs is None:
            return
        left, right = pairs
        d_row = pos[left, 0] - pos[right, 0]
        d_col = pos[left, 1] - pos[right, 1]
        dist_sq = d_row * d_row + d_col * d_col
        keep = (dist_sq >= 1e-9) & (dist_sq <= radius * radius)
        if not keep.any():
            return
        left = left[keep]
        magnitude = weight / dist_sq[keep]
        sign = _np.where(
            self._pole_arr[left] == self._pole_arr[pairs[1][keep]], 1.0, -1.0
        )
        out[:, 0] += _np.bincount(
            left, weights=sign * magnitude * d_row[keep], minlength=n
        )
        out[:, 1] += _np.bincount(
            left, weights=sign * magnitude * d_col[keep], minlength=n
        )

    # ------------------------------------------------------------------
    # Scalar fallback kernels
    # ------------------------------------------------------------------
    def _add_attraction(
        self, positions: Mapping[int, Cell], forces: Dict[int, List[float]]
    ) -> None:
        """Pull every vertex toward the centroid of its neighbourhood."""
        weight = self.config.attraction_weight
        for vertex in self.graph.nodes():
            neighbors = list(self.graph.neighbors(vertex))
            if not neighbors:
                continue
            centroid_row = sum(positions[n][0] for n in neighbors) / len(neighbors)
            centroid_col = sum(positions[n][1] for n in neighbors) / len(neighbors)
            row, col = positions[vertex]
            forces[vertex][0] += weight * (centroid_row - row)
            forces[vertex][1] += weight * (centroid_col - col)

    def _add_edge_repulsion(
        self, positions: Mapping[int, Cell], forces: Dict[int, List[float]]
    ) -> None:
        """Repel edges from each other through their midpoints.

        Midpoints are bucketed on a coarse grid so only nearby edge pairs
        interact, keeping the sweep cost close to linear in the edge count.
        """
        weight = self.config.repulsion_weight
        bucket = float(max(2, self.config.neighborhood_radius))
        edges = list(self.graph.edges())
        midpoints: List[Vector] = []
        buckets: Dict[Tuple[int, int], List[int]] = defaultdict(list)
        for index, (a, b) in enumerate(edges):
            pa, pb = positions[a], positions[b]
            midpoint = ((pa[0] + pb[0]) / 2.0, (pa[1] + pb[1]) / 2.0)
            midpoints.append(midpoint)
            buckets[_bucket_key(midpoint, bucket)].append(index)

        for index, (a, b) in enumerate(edges):
            midpoint = midpoints[index]
            push = [0.0, 0.0]
            for key in _nearby_buckets(_bucket_key(midpoint, bucket)):
                for other_index in buckets.get(key, ()):
                    if other_index == index:
                        continue
                    other = midpoints[other_index]
                    d_row = midpoint[0] - other[0]
                    d_col = midpoint[1] - other[1]
                    distance_sq = d_row * d_row + d_col * d_col
                    if distance_sq < 1e-9:
                        d_row, d_col, distance_sq = 0.5, 0.5, 0.5
                    magnitude = weight / distance_sq
                    push[0] += magnitude * d_row
                    push[1] += magnitude * d_col
            # The repulsion acts on the edge; split it between the endpoints.
            forces[a][0] += push[0] / 2.0
            forces[a][1] += push[1] / 2.0
            forces[b][0] += push[0] / 2.0
            forces[b][1] += push[1] / 2.0

    def _add_dipole(
        self, positions: Mapping[int, Cell], forces: Dict[int, List[float]]
    ) -> None:
        """Pole-based dipole forces: opposite poles attract, identical repel."""
        weight = self.config.dipole_weight
        radius = float(self.config.neighborhood_radius)
        bucket = radius
        buckets: Dict[Tuple[int, int], List[int]] = defaultdict(list)
        for vertex in self.graph.nodes():
            buckets[_bucket_key(positions[vertex], bucket)].append(vertex)

        for vertex in self.graph.nodes():
            pole = self.poles.get(vertex, 1)
            row, col = positions[vertex]
            for key in _nearby_buckets(_bucket_key(positions[vertex], bucket)):
                for other in buckets.get(key, ()):
                    if other == vertex:
                        continue
                    other_pole = self.poles.get(other, 1)
                    o_row, o_col = positions[other]
                    d_row = row - o_row
                    d_col = col - o_col
                    distance_sq = d_row * d_row + d_col * d_col
                    if distance_sq < 1e-9 or distance_sq > radius * radius:
                        continue
                    magnitude = weight / distance_sq
                    if pole == other_pole:
                        forces[vertex][0] += magnitude * d_row
                        forces[vertex][1] += magnitude * d_col
                    else:
                        forces[vertex][0] -= magnitude * d_row
                        forces[vertex][1] -= magnitude * d_col


@dataclass
class RefineStats:
    """Counters and per-sweep exact costs of one ``force_directed_refine`` run.

    ``sweep_costs[i]`` is the exact combined metric cost at the end of sweep
    ``i`` (before any community move of that sweep); ``best_cost`` is the
    cost of the returned placement; ``stalled_sweeps`` counts sweeps that
    advanced the community-move patience counter.
    """

    sweeps: int = 0
    proposed_moves: int = 0
    accepted_moves: int = 0
    improving_moves: int = 0
    community_moves: int = 0
    stalled_sweeps: int = 0
    initial_cost: float = 0.0
    best_cost: float = 0.0
    sweep_costs: List[float] = field(default_factory=list)


#: Stats of every refine run since the last :func:`take_refine_stats` call.
#: The pipeline pops these to expose FD behaviour in its own counters (a
#: mapper may run several refinements per placement, e.g. per stitched
#: module, so this is a list rather than a single record).  Bounded: callers
#: that never drain it keep only the most recent runs, so a long-lived
#: process refining in a loop does not leak memory.  This is a process-wide
#: take-based channel — whoever calls :func:`take_refine_stats` next gets
#: (and clears) everything pending, so harvest promptly after refining.
_PENDING_REFINE_STATS: List[RefineStats] = []

#: Maximum refine-stats records kept pending (a stitched two-level mapping
#: runs one refinement per module, well under this bound).
_MAX_PENDING_REFINE_STATS = 64

#: Monotonic count of completed refine runs in this process.  Unlike the
#: bounded pending list, this never truncates, so consumers can bracket an
#: operation with :func:`refine_run_count` and attribute exactly the runs
#: it caused whatever else is pending.
_REFINE_RUN_COUNTER = 0


def take_refine_stats() -> List[RefineStats]:
    """Pop the stats of every :func:`force_directed_refine` run since the last call."""
    stats = list(_PENDING_REFINE_STATS)
    _PENDING_REFINE_STATS.clear()
    return stats


def refine_run_count() -> int:
    """Monotonic number of refine runs completed in this process.

    Lets a consumer bracket an operation and attribute only the runs it
    caused: snapshot the count before, and take the trailing ``after -
    before`` records of what :func:`take_refine_stats` returns.  Robust
    against records already pending and against the pending-list bound
    evicting old entries mid-operation.
    """
    return _REFINE_RUN_COUNTER


def _next_stall_counter(stall: int, new_best: bool, improved_any: bool) -> int:
    """Advance the community-move patience counter after one sweep.

    A sweep that found a new global best resets the counter; a sweep that
    merely made *some* improving local move holds it (the annealer is still
    making progress, so community moves should wait); only a sweep with no
    improving move at all counts toward ``community_patience``.
    """
    if new_best:
        return 0
    if improved_any:
        return stall
    return stall + 1


def _step_toward(force: Vector, max_step: int = 1) -> Tuple[int, int]:
    """Grid step in the direction of the net force, clamped to ``max_step``.

    The step length scales with the force magnitude so strongly displaced
    vertices (e.g. a later-round module sitting far from the qubits it talks
    to) can migrate across the array within a reasonable number of sweeps.
    """
    def component(value: float) -> int:
        if abs(value) < 0.25:
            return 0
        magnitude = min(max_step, max(1, int(round(abs(value)))))
        return magnitude if value > 0 else -magnitude

    return component(force[0]), component(force[1])


#: Proposals per batched tracker evaluation inside a sweep.  Chunking keeps
#: the waste bounded when an accepted move invalidates the rest of the batch
#: (at most one chunk of evaluations is discarded per sweep).
_PROPOSAL_CHUNK = 64


def force_directed_refine(
    graph: nx.Graph,
    initial: Placement,
    config: Optional[ForceDirectedConfig] = None,
) -> Placement:
    """Refine an existing placement with force-directed annealing.

    Every proposed move is accepted or rejected against the *exact* combined
    metric cost of :func:`repro.graphs.metrics.mapping_cost` — crossings,
    average edge length and average edge spacing — maintained incrementally
    by :class:`repro.graphs.metrics.MappingCostTracker`, at any graph size.
    Returns the exact-cost argmin over all sweep-end placements (including
    the initial one); the input placement is not modified.
    """
    config = config or ForceDirectedConfig()
    rng = random.Random(config.seed)
    placement = initial.copy()
    poles = assign_dipole_poles(graph, seed=config.seed)
    field_model = _ForceField(graph, config, poles)

    vertices = [v for v in graph.nodes() if v in placement.positions]
    # Community detection is deferred until the first stall actually asks
    # for a community move (most refinements never stall); ``None`` means
    # "not computed yet", an empty list means "computed, none found".
    communities: Optional[List[List[int]]] = None

    tracker = MappingCostTracker(
        graph,
        placement.as_float_positions(),
        crossing_weight=config.cost_crossing_weight,
    )
    stats = RefineStats()

    best = placement.copy()
    best_cost = tracker.cost()
    stats.initial_cost = best_cost
    temperature = config.temperature
    stall_counter = 0
    community_moves_used = 0

    for _sweep in range(config.sweeps):
        forces = field_model.forces(placement.positions)
        order = list(vertices)
        rng.shuffle(order)
        improved_any = False
        stats.sweeps += 1

        # Generate the sweep's candidate moves up front from the sweep-start
        # placement.  Forces are per-sweep anyway; targets, bounds checks and
        # occupant swaps stay exact until the first *accepted* move, which
        # invalidates every later candidate (the spacing metric couples all
        # midpoints, so any accept changes every subsequent delta).
        proposals = []
        for vertex in order:
            force = forces.get(vertex, (0.0, 0.0))
            d_row, d_col = _step_toward(force, config.max_step)
            if d_row == 0 and d_col == 0:
                continue
            row, col = placement.positions[vertex]
            target = (row + d_row, col + d_col)
            if placement.in_bounds(target):
                occupant = placement.occupant(target)
                updates = {vertex: (float(target[0]), float(target[1]))}
                if occupant is not None:
                    updates[occupant] = (float(row), float(col))
            else:
                # Kept (not evaluated): an accepted move may bring the
                # vertex back in bounds, so the fallback path re-checks.
                updates = None
            proposals.append((vertex, d_row, d_col, target, updates))

        batch_valid = True
        deltas: Dict[int, float] = {}
        for index, (vertex, d_row, d_col, target, updates) in enumerate(proposals):
            if batch_valid:
                if updates is None:
                    continue  # no accept yet: the target is still out of bounds
                if index not in deltas:
                    # Evaluate the next chunk of candidates in one batched
                    # call (a single kernel invocation on the compiled
                    # engine); rejected proposals never touch the tracker.
                    chunk = [
                        (j, proposals[j][4])
                        for j in range(
                            index, min(index + _PROPOSAL_CHUNK, len(proposals))
                        )
                        if proposals[j][4] is not None
                    ]
                    for (j, _), value in zip(
                        chunk,
                        tracker.evaluate_many([u for _, u in chunk]),
                    ):
                        deltas[j] = value
                delta = deltas[index]
                stats.proposed_moves += 1
                accept = delta <= 0 or (
                    temperature > 1e-9
                    and rng.random() < math.exp(-delta / temperature)
                )
                if accept:
                    # Replay the accepted candidate for real.  The tracker
                    # state is identical to evaluation time, so this apply
                    # returns the same delta bit for bit.
                    tracker.apply(updates)
                    placement.move(vertex, target)
                    stats.accepted_moves += 1
                    if delta < 0:
                        improved_any = True
                        stats.improving_moves += 1
                    batch_valid = False
                continue
            # Sequential fallback after the first accepted move: regenerate
            # target and occupant from the current placement (the force, and
            # hence the step, stays fixed for the sweep), exactly like the
            # one-move-at-a-time annealer.
            row, col = placement.positions[vertex]
            target = (row + d_row, col + d_col)
            if not placement.in_bounds(target):
                continue
            occupant = placement.occupant(target)
            updates = {vertex: (float(target[0]), float(target[1]))}
            if occupant is not None:
                updates[occupant] = (float(row), float(col))
            delta = tracker.evaluate(updates)
            stats.proposed_moves += 1
            accept = delta <= 0 or (
                temperature > 1e-9 and rng.random() < math.exp(-delta / temperature)
            )
            if accept:
                # Commit the evaluation just made; a rejected proposal needs
                # no cleanup (the next evaluate() simply supersedes it).
                tracker.commit_evaluated()
                placement.move(vertex, target)
                stats.accepted_moves += 1
                if delta < 0:
                    improved_any = True
                    stats.improving_moves += 1

        temperature *= config.cooling
        current_cost = tracker.cost()
        stats.sweep_costs.append(current_cost)
        new_best = current_cost < best_cost
        if new_best:
            best_cost = current_cost
            best = placement.copy()
        stall_counter = _next_stall_counter(stall_counter, new_best, improved_any)
        if not new_best and not improved_any:
            stats.stalled_sweeps += 1

        if (
            config.use_communities
            and stall_counter >= config.community_patience
            and community_moves_used < config.max_community_moves
        ):
            if communities is None:
                communities = detect_communities(graph)
            if not communities:
                continue  # computed once; nothing to move, keep sweeping
            before_positions = dict(placement.positions)
            _apply_community_move(placement, graph, communities, rng)
            moved = {
                v: (float(cell[0]), float(cell[1]))
                for v, cell in placement.positions.items()
                if cell != before_positions[v]
            }
            if moved:
                tracker.apply(moved)
            community_moves_used += 1
            stats.community_moves += 1
            stall_counter = 0

    stats.best_cost = best_cost
    global _REFINE_RUN_COUNTER
    _REFINE_RUN_COUNTER += 1
    _PENDING_REFINE_STATS.append(stats)
    del _PENDING_REFINE_STATS[:-_MAX_PENDING_REFINE_STATS]
    return best


def _apply_community_move(
    placement: Placement,
    graph: nx.Graph,
    communities: Sequence[Sequence[int]],
    rng: random.Random,
) -> None:
    """One higher-level community move to escape a local minimum.

    Alternates (randomly) between pulling a fragmented community's clusters
    together and pushing two overlapping communities apart, as described in
    Section VI-B.1.  Moves are realised as single-cell relocations toward /
    away from the relevant centroid so the placement always stays valid.
    """
    float_positions = placement.as_float_positions()
    if rng.random() < 0.5 and len(communities) >= 2:
        # Community repulsion: push the two closest communities apart.
        centroids = [community_centroid(c, float_positions) for c in communities]
        best_pair = None
        best_distance = float("inf")
        for i in range(len(communities)):
            for j in range(i + 1, len(communities)):
                distance = math.hypot(
                    centroids[i][0] - centroids[j][0],
                    centroids[i][1] - centroids[j][1],
                )
                if distance < best_distance:
                    best_distance = distance
                    best_pair = (i, j)
        if best_pair is None:
            return
        i, j = best_pair
        for community_index, direction in ((i, 1.0), (j, -1.0)):
            away_row = centroids[i][0] - centroids[j][0]
            away_col = centroids[i][1] - centroids[j][1]
            norm = math.hypot(away_row, away_col) or 1.0
            step = (
                int(round(direction * away_row / norm)),
                int(round(direction * away_col / norm)),
            )
            _shift_vertices(placement, communities[community_index], step)
    else:
        # Community attraction: rejoin the clusters of a fragmented community.
        community = list(communities[rng.randrange(len(communities))])
        centroids, clusters = community_fragmentation(community, float_positions)
        if len(clusters) < 2:
            return
        target = community_centroid(community, float_positions)
        for cluster in clusters:
            cluster_centroid = community_centroid(cluster, float_positions)
            step_row = target[0] - cluster_centroid[0]
            step_col = target[1] - cluster_centroid[1]
            norm = math.hypot(step_row, step_col) or 1.0
            step = (int(round(step_row / norm)), int(round(step_col / norm)))
            _shift_vertices(placement, cluster, step)


def _shift_vertices(
    placement: Placement, vertices: Sequence[int], step: Tuple[int, int]
) -> None:
    """Shift a set of vertices by one step, skipping moves that leave the grid."""
    if step == (0, 0):
        return
    for vertex in vertices:
        if vertex not in placement.positions:
            continue
        row, col = placement.positions[vertex]
        target = (row + step[0], col + step[1])
        if placement.in_bounds(target):
            placement.move(vertex, target)


def force_directed_placement(
    circuit_or_graph,
    initial: Optional[Placement] = None,
    config: Optional[ForceDirectedConfig] = None,
    width: Optional[int] = None,
    height: Optional[int] = None,
) -> Placement:
    """Produce a force-directed placement for a circuit or interaction graph.

    When no initial placement is supplied a row-major placement on an
    auto-sized grid is used as the starting point (the paper starts from the
    linear hand-optimized mapping when one is available; callers that have a
    factory should pass ``linear_factory_placement(factory)`` as ``initial``).
    """
    config = config or ForceDirectedConfig()
    if isinstance(circuit_or_graph, Circuit):
        graph = interaction_graph(circuit_or_graph)
        qubits = list(range(circuit_or_graph.num_qubits))
    else:
        graph = circuit_or_graph
        qubits = list(graph.nodes())

    if initial is None:
        if width is None or height is None:
            height, width = grid_dimensions_for(len(qubits))
        initial = row_major_placement(qubits, width=width, height=height)
    return force_directed_refine(graph, initial, config)
