"""Force-directed annealing mapper (Section VI-B.1).

The force-directed (FD) procedure iteratively transforms an initial mapping
by simulating three kinds of forces, each targeting one of the congestion
heuristics of Section VI-A:

* **vertex-vertex attraction** — every vertex is pulled toward the centroid
  of its interaction-graph neighbours, shrinking average edge length;
* **edge-edge repulsion** — braids repel each other through forces between
  edge midpoints (inverse-square in the midpoint distance), spreading edges
  uniformly over the mesh;
* **magnetic dipole rotation** — every vertex is assigned a north/south pole
  by 2-colouring the interaction graph; opposite poles attract and identical
  poles repel, which rotates edges toward (anti-)parallel orientations and
  reduces edge crossings.

Vertices are moved along the net force through an annealing acceptance rule
(improving moves always accepted, worsening moves accepted with Boltzmann
probability under a cooling temperature).  When progress stalls, higher-level
*community* moves — repulsion between distinct communities, or attraction of
a fragmented community's clusters (located by KMeans) back together — kick
the mapping out of the local minimum, exactly as described in the paper.
"""

from __future__ import annotations

import math
import random
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

import networkx as nx

from ..circuits.circuit import Circuit
from ..graphs.community import community_centroid, community_fragmentation, detect_communities
from ..graphs.interaction import interaction_graph
from ..graphs.metrics import mapping_cost
from .placement import Cell, Placement, grid_dimensions_for, row_major_placement

Vector = Tuple[float, float]


@dataclass
class ForceDirectedConfig:
    """Tuning knobs of the force-directed annealer.

    The ``use_*`` switches exist for the ablation benchmarks (e.g. running
    the annealer without the dipole rotation force to quantify how much the
    edge-crossing heuristic contributes).
    """

    sweeps: int = 30
    temperature: float = 1.0
    cooling: float = 0.88
    attraction_weight: float = 1.0
    repulsion_weight: float = 1.0
    dipole_weight: float = 1.0
    neighborhood_radius: int = 4
    #: Maximum cells a vertex may travel in one move (the net force sets the
    #: actual distance, clamped to this bound).
    max_step: int = 4
    community_patience: int = 5
    max_community_moves: int = 4
    use_attraction: bool = True
    use_edge_repulsion: bool = True
    use_dipole: bool = True
    use_communities: bool = True
    cost_crossing_weight: float = 4.0
    seed: int = 0


def assign_dipole_poles(graph: nx.Graph, seed: int = 0) -> Dict[int, int]:
    """Assign a +1 / -1 pole to every vertex by greedy 2-colouring.

    The interaction graph of a full schedule is generally not bipartite, so
    a BFS greedy colouring is used: each vertex takes the pole that conflicts
    with the fewest already-coloured neighbours.  Within a single timestep the
    graph is a disjoint union of paths (the paper's observation), for which
    this reduces to an exact 2-colouring.
    """
    poles: Dict[int, int] = {}
    rng = random.Random(seed)
    nodes = list(graph.nodes())
    rng.shuffle(nodes)
    for start in nodes:
        if start in poles:
            continue
        poles[start] = 1
        queue = [start]
        while queue:
            vertex = queue.pop()
            for neighbor in graph.neighbors(vertex):
                if neighbor in poles:
                    continue
                opposite = sum(1 for n in graph.neighbors(neighbor) if poles.get(n) == -poles[vertex])
                same = sum(1 for n in graph.neighbors(neighbor) if poles.get(n) == poles[vertex])
                poles[neighbor] = -poles[vertex] if same >= opposite else poles[vertex]
                queue.append(neighbor)
    return poles


def _bucket_key(position: Vector, bucket: float) -> Tuple[int, int]:
    return (int(position[0] // bucket), int(position[1] // bucket))


def _nearby_buckets(key: Tuple[int, int]) -> List[Tuple[int, int]]:
    row, col = key
    return [(row + dr, col + dc) for dr in (-1, 0, 1) for dc in (-1, 0, 1)]


class _ForceField:
    """Computes the per-vertex net force for the current placement."""

    def __init__(
        self,
        graph: nx.Graph,
        config: ForceDirectedConfig,
        poles: Mapping[int, int],
    ) -> None:
        self.graph = graph
        self.config = config
        self.poles = poles

    def forces(self, positions: Mapping[int, Cell]) -> Dict[int, Vector]:
        """Net force on every vertex under the current positions."""
        config = self.config
        forces: Dict[int, List[float]] = {v: [0.0, 0.0] for v in self.graph.nodes()}

        if config.use_attraction:
            self._add_attraction(positions, forces)
        if config.use_edge_repulsion:
            self._add_edge_repulsion(positions, forces)
        if config.use_dipole:
            self._add_dipole(positions, forces)
        return {v: (f[0], f[1]) for v, f in forces.items()}

    # ------------------------------------------------------------------
    def _add_attraction(
        self, positions: Mapping[int, Cell], forces: Dict[int, List[float]]
    ) -> None:
        """Pull every vertex toward the centroid of its neighbourhood."""
        weight = self.config.attraction_weight
        for vertex in self.graph.nodes():
            neighbors = list(self.graph.neighbors(vertex))
            if not neighbors:
                continue
            centroid_row = sum(positions[n][0] for n in neighbors) / len(neighbors)
            centroid_col = sum(positions[n][1] for n in neighbors) / len(neighbors)
            row, col = positions[vertex]
            forces[vertex][0] += weight * (centroid_row - row)
            forces[vertex][1] += weight * (centroid_col - col)

    def _add_edge_repulsion(
        self, positions: Mapping[int, Cell], forces: Dict[int, List[float]]
    ) -> None:
        """Repel edges from each other through their midpoints.

        Midpoints are bucketed on a coarse grid so only nearby edge pairs
        interact, keeping the sweep cost close to linear in the edge count.
        """
        weight = self.config.repulsion_weight
        bucket = float(max(2, self.config.neighborhood_radius))
        edges = list(self.graph.edges())
        midpoints: List[Vector] = []
        buckets: Dict[Tuple[int, int], List[int]] = defaultdict(list)
        for index, (a, b) in enumerate(edges):
            pa, pb = positions[a], positions[b]
            midpoint = ((pa[0] + pb[0]) / 2.0, (pa[1] + pb[1]) / 2.0)
            midpoints.append(midpoint)
            buckets[_bucket_key(midpoint, bucket)].append(index)

        for index, (a, b) in enumerate(edges):
            midpoint = midpoints[index]
            push = [0.0, 0.0]
            for key in _nearby_buckets(_bucket_key(midpoint, bucket)):
                for other_index in buckets.get(key, ()):
                    if other_index == index:
                        continue
                    other = midpoints[other_index]
                    d_row = midpoint[0] - other[0]
                    d_col = midpoint[1] - other[1]
                    distance_sq = d_row * d_row + d_col * d_col
                    if distance_sq < 1e-9:
                        d_row, d_col, distance_sq = 0.5, 0.5, 0.5
                    magnitude = weight / distance_sq
                    push[0] += magnitude * d_row
                    push[1] += magnitude * d_col
            # The repulsion acts on the edge; split it between the endpoints.
            forces[a][0] += push[0] / 2.0
            forces[a][1] += push[1] / 2.0
            forces[b][0] += push[0] / 2.0
            forces[b][1] += push[1] / 2.0

    def _add_dipole(
        self, positions: Mapping[int, Cell], forces: Dict[int, List[float]]
    ) -> None:
        """Pole-based dipole forces: opposite poles attract, identical repel."""
        weight = self.config.dipole_weight
        radius = float(self.config.neighborhood_radius)
        bucket = radius
        buckets: Dict[Tuple[int, int], List[int]] = defaultdict(list)
        for vertex in self.graph.nodes():
            buckets[_bucket_key(positions[vertex], bucket)].append(vertex)

        for vertex in self.graph.nodes():
            pole = self.poles.get(vertex, 1)
            row, col = positions[vertex]
            for key in _nearby_buckets(_bucket_key(positions[vertex], bucket)):
                for other in buckets.get(key, ()):
                    if other == vertex:
                        continue
                    other_pole = self.poles.get(other, 1)
                    o_row, o_col = positions[other]
                    d_row = row - o_row
                    d_col = col - o_col
                    distance_sq = d_row * d_row + d_col * d_col
                    if distance_sq < 1e-9 or distance_sq > radius * radius:
                        continue
                    magnitude = weight / distance_sq
                    if pole == other_pole:
                        forces[vertex][0] += magnitude * d_row
                        forces[vertex][1] += magnitude * d_col
                    else:
                        forces[vertex][0] -= magnitude * d_row
                        forces[vertex][1] -= magnitude * d_col


def _local_cost(
    graph: nx.Graph, positions: Mapping[int, Cell], vertices: Sequence[int]
) -> float:
    """Weighted Manhattan length of the edges incident to ``vertices``.

    Used as the move-acceptance cost: it is cheap to evaluate and decreases
    whenever a move shortens the braids touching the moved qubits.
    """
    cost = 0.0
    seen: Set[Tuple[int, int]] = set()
    for vertex in vertices:
        if vertex not in graph:
            continue
        row, col = positions[vertex]
        for neighbor in graph.neighbors(vertex):
            key = (min(vertex, neighbor), max(vertex, neighbor))
            if key in seen:
                continue
            seen.add(key)
            weight = graph[vertex][neighbor].get("weight", 1)
            n_row, n_col = positions[neighbor]
            cost += weight * (abs(row - n_row) + abs(col - n_col))
    return cost


def _step_toward(force: Vector, max_step: int = 1) -> Tuple[int, int]:
    """Grid step in the direction of the net force, clamped to ``max_step``.

    The step length scales with the force magnitude so strongly displaced
    vertices (e.g. a later-round module sitting far from the qubits it talks
    to) can migrate across the array within a reasonable number of sweeps.
    """
    def component(value: float) -> int:
        if abs(value) < 0.25:
            return 0
        magnitude = min(max_step, max(1, int(round(abs(value)))))
        return magnitude if value > 0 else -magnitude

    return component(force[0]), component(force[1])


def force_directed_refine(
    graph: nx.Graph,
    initial: Placement,
    config: Optional[ForceDirectedConfig] = None,
) -> Placement:
    """Refine an existing placement with force-directed annealing.

    Returns the best placement (by the combined metric cost of
    :func:`repro.graphs.metrics.mapping_cost`) seen over all sweeps; the input
    placement is not modified.
    """
    config = config or ForceDirectedConfig()
    rng = random.Random(config.seed)
    placement = initial.copy()
    poles = assign_dipole_poles(graph, seed=config.seed)
    field_model = _ForceField(graph, config, poles)

    vertices = [v for v in graph.nodes() if v in placement.positions]
    communities = detect_communities(graph) if config.use_communities else []

    # The exact combined cost (which counts edge crossings) is quadratic in
    # the edge count; for factory-scale graphs fall back to the total
    # weighted edge length as the sweep-level progress metric.
    use_exact_cost = graph.number_of_edges() <= 600

    def full_cost(current: Placement) -> float:
        if use_exact_cost:
            return mapping_cost(
                graph,
                current.as_float_positions(),
                crossing_weight=config.cost_crossing_weight,
            )
        return _local_cost(graph, current.positions, list(graph.nodes()))

    best = placement.copy()
    best_cost = full_cost(best)
    temperature = config.temperature
    stall_counter = 0
    community_moves_used = 0

    for _sweep in range(config.sweeps):
        forces = field_model.forces(placement.positions)
        order = list(vertices)
        rng.shuffle(order)
        improved_any = False

        for vertex in order:
            force = forces.get(vertex, (0.0, 0.0))
            d_row, d_col = _step_toward(force, config.max_step)
            if d_row == 0 and d_col == 0:
                continue
            row, col = placement.positions[vertex]
            target = (row + d_row, col + d_col)
            if not placement.in_bounds(target):
                continue
            occupant = placement.occupied_cells().get(target)
            affected = [vertex] if occupant is None else [vertex, occupant]
            before = _local_cost(graph, placement.positions, affected)
            placement.move(vertex, target)
            after = _local_cost(graph, placement.positions, affected)
            delta = after - before
            accept = delta <= 0 or (
                temperature > 1e-9 and rng.random() < math.exp(-delta / temperature)
            )
            if accept:
                if delta < 0:
                    improved_any = True
            else:
                # Undo the move (move() swaps, so moving back restores both).
                placement.move(vertex, (row, col))

        temperature *= config.cooling
        current_cost = full_cost(placement)
        if current_cost < best_cost:
            best_cost = current_cost
            best = placement.copy()
            stall_counter = 0
        else:
            stall_counter += 1

        if (
            config.use_communities
            and communities
            and stall_counter >= config.community_patience
            and community_moves_used < config.max_community_moves
        ):
            _apply_community_move(placement, graph, communities, rng)
            community_moves_used += 1
            stall_counter = 0

    return best


def _apply_community_move(
    placement: Placement,
    graph: nx.Graph,
    communities: Sequence[Sequence[int]],
    rng: random.Random,
) -> None:
    """One higher-level community move to escape a local minimum.

    Alternates (randomly) between pulling a fragmented community's clusters
    together and pushing two overlapping communities apart, as described in
    Section VI-B.1.  Moves are realised as single-cell relocations toward /
    away from the relevant centroid so the placement always stays valid.
    """
    float_positions = placement.as_float_positions()
    if rng.random() < 0.5 and len(communities) >= 2:
        # Community repulsion: push the two closest communities apart.
        centroids = [community_centroid(c, float_positions) for c in communities]
        best_pair = None
        best_distance = float("inf")
        for i in range(len(communities)):
            for j in range(i + 1, len(communities)):
                distance = math.hypot(
                    centroids[i][0] - centroids[j][0],
                    centroids[i][1] - centroids[j][1],
                )
                if distance < best_distance:
                    best_distance = distance
                    best_pair = (i, j)
        if best_pair is None:
            return
        i, j = best_pair
        for community_index, direction in ((i, 1.0), (j, -1.0)):
            away_row = centroids[i][0] - centroids[j][0]
            away_col = centroids[i][1] - centroids[j][1]
            norm = math.hypot(away_row, away_col) or 1.0
            step = (
                int(round(direction * away_row / norm)),
                int(round(direction * away_col / norm)),
            )
            _shift_vertices(placement, communities[community_index], step)
    else:
        # Community attraction: rejoin the clusters of a fragmented community.
        community = list(communities[rng.randrange(len(communities))])
        centroids, clusters = community_fragmentation(community, float_positions)
        if len(clusters) < 2:
            return
        target = community_centroid(community, float_positions)
        for cluster in clusters:
            cluster_centroid = community_centroid(cluster, float_positions)
            step_row = target[0] - cluster_centroid[0]
            step_col = target[1] - cluster_centroid[1]
            norm = math.hypot(step_row, step_col) or 1.0
            step = (int(round(step_row / norm)), int(round(step_col / norm)))
            _shift_vertices(placement, cluster, step)


def _shift_vertices(
    placement: Placement, vertices: Sequence[int], step: Tuple[int, int]
) -> None:
    """Shift a set of vertices by one step, skipping moves that leave the grid."""
    if step == (0, 0):
        return
    for vertex in vertices:
        if vertex not in placement.positions:
            continue
        row, col = placement.positions[vertex]
        target = (row + step[0], col + step[1])
        if placement.in_bounds(target):
            placement.move(vertex, target)


def force_directed_placement(
    circuit_or_graph,
    initial: Optional[Placement] = None,
    config: Optional[ForceDirectedConfig] = None,
    width: Optional[int] = None,
    height: Optional[int] = None,
) -> Placement:
    """Produce a force-directed placement for a circuit or interaction graph.

    When no initial placement is supplied a row-major placement on an
    auto-sized grid is used as the starting point (the paper starts from the
    linear hand-optimized mapping when one is available; callers that have a
    factory should pass ``linear_factory_placement(factory)`` as ``initial``).
    """
    config = config or ForceDirectedConfig()
    if isinstance(circuit_or_graph, Circuit):
        graph = interaction_graph(circuit_or_graph)
        qubits = list(range(circuit_or_graph.num_qubits))
    else:
        graph = circuit_or_graph
        qubits = list(graph.nodes())

    if initial is None:
        if width is None or height is None:
            height, width = grid_dimensions_for(len(qubits))
        initial = row_major_placement(qubits, width=width, height=height)
    return force_directed_refine(graph, initial, config)
