"""Experiment EXP-T1: quantum volumes of every factory design (Table I).

Table I of the paper lists the space-time volumes achieved by each
optimisation procedure — Random, the linear baseline without and with qubit
reuse (Line NR / Line R), force-directed annealing (FD), graph partitioning
(GP), hierarchical stitching (HS) — and the critical (lower-bound) volume,
for single-level factories of capacity 2..24 and two-level factories of
capacity 4..100.

The paper's absolute values (reproduced below as reference constants) were
obtained on the authors' simulator and cycle model; this experiment
regenerates the same table with this repository's simulator.  The shape that
must hold: Random is the worst, Line/FD/GP sit in between, HS gives the
lowest volume for every two-level capacity, and everything stays above the
critical bound.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..analysis.sweeps import FactoryEvaluation, evaluate_factory_mapping
from ..api.executor import SweepExecutor, SweepPlan
from ..api.experiments import (
    SEED_PARAM,
    WORKERS_PARAM,
    ParamSpec,
    register_experiment,
)
from ..api.pipeline import EvaluationRequest
from ..api.results import int_keyed, str_keyed
from ..distillation.block_code import FactorySpec
from ..mapping.force_directed import ForceDirectedConfig
from ..mapping.stitching import StitchingConfig
from ..routing.simulator import SimulatorConfig
from ..scheduling.critical_path import (
    factory_area_lower_bound,
    factory_latency_lower_bound,
)

#: Table I of the paper, level-1 block (capacities 2, 4, 8, 10, 24).
PAPER_LEVEL1_VOLUMES = {
    "random": {2: 1.11e4, 4: 1.82e4, 8: 5.43e4, 10: 6.40e4, 24: 2.70e5},
    "linear_no_reuse": {2: 6.53e3, 4: 1.10e4, 8: 2.53e4, 10: 2.94e4, 24: 1.29e5},
    "linear_reuse": {2: 6.53e3, 4: 1.10e4, 8: 2.53e4, 10: 2.94e4, 24: 1.29e5},
    "force_directed": {2: 6.30e3, 4: 1.08e4, 8: 2.53e4, 10: 2.88e4, 24: 1.21e5},
    "graph_partition": {2: 6.73e3, 4: 1.23e4, 8: 2.91e4, 10: 3.33e4, 24: 1.48e5},
    "critical": {2: 6.28e3, 4: 1.07e4, 8: 2.27e4, 10: 3.03e4, 24: 1.12e5},
}

#: Table I of the paper, level-2 block (capacities 4, 16, 36, 64, 100).
PAPER_LEVEL2_VOLUMES = {
    "linear_no_reuse": {4: 3.68e5, 16: 1.19e6, 36: 4.19e6, 64: 1.25e7, 100: 3.34e7},
    "linear_reuse": {4: 3.55e5, 16: 1.15e6, 36: 3.80e6, 64: 1.22e7, 100: 2.53e7},
    "force_directed": {4: 3.22e5, 16: 1.15e6, 36: 3.72e6, 64: 9.45e6, 100: 1.98e7},
    "graph_partition": {4: 3.48e5, 16: 9.41e5, 36: 2.24e6, 64: 4.45e6, 100: 8.17e6},
    "hierarchical_stitching": {
        4: 2.32e5,
        16: 7.93e5,
        36: 1.80e6,
        64: 4.06e6,
        100: 5.93e6,
    },
    "critical": {4: 1.82e5, 16: 4.48e5, 36: 8.85e5, 64: 1.53e6, 100: 2.43e6},
}

#: Row order of the regenerated table (matching Table I's procedure order).
ROW_ORDER = (
    "random",
    "linear_no_reuse",
    "linear_reuse",
    "force_directed",
    "graph_partition",
    "hierarchical_stitching",
    "critical",
)

PAPER_LEVEL1_CAPACITIES = (2, 4, 8, 10, 24)
PAPER_LEVEL2_CAPACITIES = (4, 16, 36, 64, 100)
DEFAULT_LEVEL1_CAPACITIES = (2, 4, 8, 10, 24)
DEFAULT_LEVEL2_CAPACITIES = (4, 16)


@dataclass(frozen=True)
class Table1Result:
    """The regenerated Table I: ``volumes[row][capacity]`` in qubit-cycles."""

    levels: int
    volumes: Dict[str, Dict[int, float]]
    evaluations: List[FactoryEvaluation]

    def rows(self) -> Sequence[str]:
        return [row for row in ROW_ORDER if row in self.volumes]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict (capacity keys stringified for JSON objects)."""
        return {
            "levels": self.levels,
            "volumes": {
                row: str_keyed(by_capacity)
                for row, by_capacity in self.volumes.items()
            },
            "evaluations": [e.to_dict() for e in self.evaluations],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Table1Result":
        """Inverse of :meth:`to_dict` (capacity keys back to ints)."""
        return cls(
            levels=int(data["levels"]),
            volumes={
                row: int_keyed(by_capacity)
                for row, by_capacity in data.get("volumes", {}).items()
            },
            evaluations=[
                FactoryEvaluation.from_dict(e) for e in data.get("evaluations", [])
            ],
        )


def _row_request(
    row: str,
    capacity: int,
    levels: int,
    seed: int,
    fd_config: Optional[ForceDirectedConfig],
    stitch_config: Optional[StitchingConfig],
    sim_config: Optional[SimulatorConfig],
) -> Optional[EvaluationRequest]:
    """The evaluation request of one Table I cell; ``None`` for blank cells."""
    if row == "critical":
        return None
    if row == "random" and levels != 1:
        # The paper only reports the random baseline for single-level
        # factories (Table I leaves the level-2 cells blank).
        return None
    if row == "hierarchical_stitching" and levels == 1:
        # HS is a multi-level technique; Table I leaves level-1 cells blank.
        return None
    method = {
        "random": "random",
        "linear_no_reuse": "linear",
        "linear_reuse": "linear",
        "force_directed": "force_directed",
        "graph_partition": "graph_partition",
        "hierarchical_stitching": "hierarchical_stitching",
    }[row]
    return EvaluationRequest(
        method=method,
        capacity=capacity,
        levels=levels,
        reuse=row == "linear_reuse",
        seed=seed,
        fd_config=fd_config,
        stitch_config=stitch_config,
        sim_config=sim_config,
    )


def run(
    levels: int,
    capacities: Optional[Sequence[int]] = None,
    seed: int = 0,
    fd_config: Optional[ForceDirectedConfig] = None,
    stitch_config: Optional[StitchingConfig] = None,
    sim_config: Optional[SimulatorConfig] = None,
    workers: int = 1,
) -> Table1Result:
    """Regenerate one level-block of Table I.

    The table is expanded into an explicit request list first (one request
    per non-blank cell); with ``workers > 1`` those requests run across a
    :class:`~repro.api.executor.SweepExecutor` process pool, producing the
    identical table in the identical order.
    """
    if levels not in (1, 2):
        raise ValueError("Table I covers one- and two-level factories only")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if capacities is None:
        capacities = (
            DEFAULT_LEVEL1_CAPACITIES if levels == 1 else DEFAULT_LEVEL2_CAPACITIES
        )
    capacities = tuple(capacities)
    sim_config = sim_config or SimulatorConfig()

    volumes: Dict[str, Dict[int, float]] = {}
    cells: List[tuple] = []
    for capacity in capacities:
        spec = FactorySpec.from_capacity(capacity, levels)
        critical = factory_latency_lower_bound(
            spec, dict(sim_config.durations)
        ) * factory_area_lower_bound(spec)
        volumes.setdefault("critical", {})[capacity] = float(critical)
        for row in ROW_ORDER:
            request = _row_request(
                row, capacity, levels, seed, fd_config, stitch_config, sim_config
            )
            if request is not None:
                cells.append((row, capacity, request))

    if workers > 1:
        plan = SweepPlan.from_requests(request for _, _, request in cells)
        results = SweepExecutor(workers=workers, sim_config=sim_config).run(plan)
        cell_evaluations = results.evaluations
    else:
        cell_evaluations = [
            evaluate_factory_mapping(
                request.method,
                request.capacity,
                levels=request.levels,
                reuse=request.reuse,
                seed=request.seed,
                fd_config=request.fd_config,
                stitch_config=request.stitch_config,
                sim_config=request.sim_config,
            )
            for _, _, request in cells
        ]

    evaluations: List[FactoryEvaluation] = []
    for (row, capacity, _), evaluation in zip(cells, cell_evaluations):
        volumes.setdefault(row, {})[capacity] = float(evaluation.volume)
        evaluations.append(evaluation)
    return Table1Result(levels=levels, volumes=volumes, evaluations=evaluations)


def paper_reference(levels: int) -> Dict[str, Dict[int, float]]:
    """The paper's Table I values for the requested level block."""
    return PAPER_LEVEL1_VOLUMES if levels == 1 else PAPER_LEVEL2_VOLUMES


def format_result(result: Table1Result) -> str:
    """Fixed-width rendering of the regenerated table."""
    capacities = sorted(
        {capacity for row in result.volumes.values() for capacity in row}
    )
    lines = [f"Table I — quantum volumes (level {result.levels})"]
    header = ["procedure".ljust(26)] + [f"K={c}".rjust(12) for c in capacities]
    lines.append("".join(header))
    for row in result.rows():
        cells = [row.ljust(26)]
        for capacity in capacities:
            value = result.volumes[row].get(capacity)
            cells.append(("-" if value is None else f"{value:.3g}").rjust(12))
        lines.append("".join(cells))
    return "\n".join(lines)


_CAPACITIES_PARAM = ParamSpec(
    "capacities", "int_list", help="comma-separated factory capacities to sweep"
)

register_experiment(
    "table1-level1",
    functools.partial(run, levels=1),
    formatter=format_result,
    params=(_CAPACITIES_PARAM, SEED_PARAM, WORKERS_PARAM),
    description="Table I: single-level quantum volumes by procedure",
)
register_experiment(
    "table1-level2",
    functools.partial(run, levels=2),
    formatter=format_result,
    params=(_CAPACITIES_PARAM, SEED_PARAM, WORKERS_PARAM),
    description="Table I: two-level quantum volumes by procedure",
)
