"""Experiment EXP-F6: metric-versus-latency correlation (Fig. 6).

The paper simulates a population of randomized mappings of a distillation
circuit and reports the Pearson correlation between three mapping metrics and
the realised circuit latency:

======================  ===========
metric                  paper r
======================  ===========
edge crossings           0.831
average edge length      0.601
average edge spacing    -0.625
======================  ===========

This experiment reproduces that study on a single-level Bravyi-Haah factory.
Absolute r-values depend on the simulator's congestion model; the qualitative
claim being checked is that crossings and length correlate *positively* with
latency, spacing *negatively*, and that crossings are the strongest of the
three.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

from ..analysis.correlation import CorrelationStudy, correlation_study
from ..api.experiments import SEED_PARAM, ParamSpec, register_experiment
from ..distillation.block_code import build_single_level_factory
from ..routing.simulator import SimulatorConfig

#: r-values reported in Fig. 6 of the paper.
PAPER_R_VALUES = {
    "edge_crossings_r": 0.831,
    "edge_length_r": 0.601,
    "edge_spacing_r": -0.625,
}


@dataclass(frozen=True)
class Fig6Result:
    """Measured correlation study next to the paper's reference r-values."""

    study: CorrelationStudy
    paper: Dict[str, float]

    def measured(self) -> Dict[str, float]:
        """The measured r-values keyed like :data:`PAPER_R_VALUES`."""
        return self.study.as_dict()

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict: measured study plus the paper's reference values."""
        return {"study": self.study.to_dict(), "paper": dict(self.paper)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Fig6Result":
        """Inverse of :meth:`to_dict`."""
        return cls(
            study=CorrelationStudy.from_dict(data["study"]),
            paper=dict(data["paper"]),
        )


def run(
    capacity: int = 8,
    num_mappings: int = 30,
    seed: int = 0,
    config: Optional[SimulatorConfig] = None,
) -> Fig6Result:
    """Run the Fig. 6 correlation experiment.

    Parameters
    ----------
    capacity:
        Output capacity of the single-level factory whose mappings are
        randomized (the paper uses a single-level distillation circuit).
    num_mappings:
        Number of random mappings in the population.
    seed:
        Base random seed.
    """
    factory = build_single_level_factory(capacity)
    study = correlation_study(
        factory.circuit, num_mappings=num_mappings, seed=seed, config=config
    )
    return Fig6Result(study=study, paper=dict(PAPER_R_VALUES))


def format_result(result: Fig6Result) -> str:
    """Human-readable table of measured vs paper r-values."""
    measured = result.measured()
    lines = ["Fig. 6 — metric vs latency correlation (Pearson r)"]
    lines.append(f"{'metric':26s}{'paper':>10s}{'measured':>12s}")
    labels = {
        "edge_crossings_r": "edge crossings",
        "edge_length_r": "avg edge length",
        "edge_spacing_r": "avg edge spacing",
    }
    for key, label in labels.items():
        lines.append(
            f"{label:26s}{result.paper[key]:>10.3f}{measured[key]:>12.3f}"
        )
    return "\n".join(lines)


register_experiment(
    "fig6",
    run,
    formatter=format_result,
    params=(
        ParamSpec("capacity", "int", default=8, help="single-level factory capacity"),
        ParamSpec("num_mappings", "int", default=30, help="random mappings sampled"),
        SEED_PARAM,
    ),
    description="Fig. 6: mapping-metric vs latency correlation study",
)
