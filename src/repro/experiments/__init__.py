"""One module per reproduced paper artifact (figures and tables).

Every experiment module exposes a ``run(...)`` function returning a
structured result object (with ``to_dict()``/``from_dict`` JSON
round-tripping) and a ``format_result(result)`` helper producing a printable
table.  Experiments are registered declaratively with
:func:`repro.api.register_experiment`, which also drives the auto-generated
command-line options; :data:`EXPERIMENTS` is a backward-compatible live view
of that registry mapping experiment names to ``(runner, formatter)`` pairs.
"""

from typing import Callable, Iterator, Mapping, Tuple

from ..api.experiments import available_experiments, get_experiment
from ..api.registry import RegistryError
from . import (
    fig6_correlation,
    fig7_scaling,
    fig9_permutation,
    fig9_reuse,
    fig10_resources,
    table1_volumes,
)


class _ExperimentsView(Mapping):
    """Dict-like view of the experiment registry.

    Historically this package exported a literal ``{name: (runner,
    formatter)}`` dict; the view preserves that interface while delegating to
    the registry, so third-party registrations show up here too.
    """

    def __getitem__(self, name: str) -> Tuple[Callable, Callable]:
        try:
            spec = get_experiment(name)
        except RegistryError:
            # Preserve dict semantics: Mapping.get/__contains__ only swallow
            # KeyError, and legacy callers expect a plain-dict lookup here.
            raise KeyError(name) from None
        return (spec.run, spec.format)

    def __iter__(self) -> Iterator[str]:
        return iter(available_experiments())

    def __len__(self) -> int:
        return len(available_experiments())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<EXPERIMENTS registry view: {', '.join(sorted(self))}>"


#: Registry of runnable experiments: name -> (runner, formatter).
EXPERIMENTS = _ExperimentsView()

__all__ = [
    "EXPERIMENTS",
    "fig6_correlation",
    "fig7_scaling",
    "fig9_permutation",
    "fig9_reuse",
    "fig10_resources",
    "table1_volumes",
]
