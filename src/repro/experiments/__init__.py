"""One module per reproduced paper artifact (figures and tables).

Every experiment module exposes a ``run(...)`` function returning a
structured result object and a ``format_result(result)`` helper producing a
printable table.  The :data:`EXPERIMENTS` registry maps experiment names (as
accepted by the command-line interface) to runner callables.
"""

from . import (
    fig6_correlation,
    fig7_scaling,
    fig9_permutation,
    fig9_reuse,
    fig10_resources,
    table1_volumes,
)

#: Registry of runnable experiments: name -> (runner, formatter).
EXPERIMENTS = {
    "fig6": (fig6_correlation.run, fig6_correlation.format_result),
    "fig7a": (fig7_scaling.run_single_level, fig7_scaling.format_result),
    "fig7b": (fig7_scaling.run_two_level, fig7_scaling.format_result),
    "fig9ab": (fig9_reuse.run, fig9_reuse.format_result),
    "fig9cd": (fig9_permutation.run, fig9_permutation.format_result),
    "fig10-single": (fig10_resources.run_single_level, fig10_resources.format_result),
    "fig10-two": (fig10_resources.run_two_level, fig10_resources.format_result),
    "table1-level1": (
        lambda **kwargs: table1_volumes.run(levels=1, **kwargs),
        table1_volumes.format_result,
    ),
    "table1-level2": (
        lambda **kwargs: table1_volumes.run(levels=2, **kwargs),
        table1_volumes.format_result,
    ),
}

__all__ = [
    "EXPERIMENTS",
    "fig6_correlation",
    "fig7_scaling",
    "fig9_permutation",
    "fig9_reuse",
    "fig10_resources",
    "table1_volumes",
]
