"""Experiment EXP-F7: FD / GP latency versus the theoretical lower bound (Fig. 7).

Fig. 7a plots the simulated latency of single-level factories mapped by
force-directed annealing and by graph partitioning against the circuit's
critical-path lower bound; both techniques track the bound closely.  Fig. 7b
repeats the comparison for two-level factories, where the gap to the bound
widens because of the inter-round permutation congestion.

The qualitative claims this experiment checks:

* single level — both mappers stay within a small factor of the bound;
* two level — the gap grows with capacity, and graph partitioning (a global
  technique) tracks the bound better than the local force-directed procedure
  at larger capacities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..analysis.sweeps import FactoryEvaluation, capacity_sweep
from ..api.experiments import (
    BATCH_PARAM,
    SEED_PARAM,
    WORKERS_PARAM,
    ParamSpec,
    register_experiment,
)
from ..api.results import evaluation_series_from_dict, evaluation_series_to_dict
from ..mapping.force_directed import ForceDirectedConfig
from ..routing.simulator import SimulatorConfig

#: Capacities of the paper's Fig. 7a x-axis (single-level factories).
PAPER_SINGLE_LEVEL_CAPACITIES = (2, 4, 6, 8, 12, 16, 20)
#: Capacities of the paper's Fig. 7b x-axis (two-level factories).
PAPER_TWO_LEVEL_CAPACITIES = (4, 16, 36, 64)

#: Reduced sweeps used by default so the experiment completes quickly.
DEFAULT_SINGLE_LEVEL_CAPACITIES = (2, 4, 6, 8, 12, 16, 20)
DEFAULT_TWO_LEVEL_CAPACITIES = (4, 16)


@dataclass(frozen=True)
class Fig7Result:
    """Latency-vs-lower-bound series for one factory level."""

    levels: int
    evaluations: List[FactoryEvaluation]

    def series(self) -> Dict[str, Dict[int, int]]:
        """``{method: {capacity: latency}}`` plus the lower-bound series."""
        table: Dict[str, Dict[int, int]] = {"lower_bound": {}}
        for evaluation in self.evaluations:
            table.setdefault(evaluation.method, {})[evaluation.capacity] = (
                evaluation.latency
            )
            table["lower_bound"][evaluation.capacity] = evaluation.critical_latency
        return table

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict of the per-configuration evaluations."""
        return evaluation_series_to_dict(self.levels, self.evaluations)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Fig7Result":
        """Inverse of :meth:`to_dict`."""
        levels, evaluations = evaluation_series_from_dict(data)
        return cls(levels=levels, evaluations=evaluations)


def run_single_level(
    capacities: Optional[Sequence[int]] = None,
    seed: int = 0,
    fd_config: Optional[ForceDirectedConfig] = None,
    sim_config: Optional[SimulatorConfig] = None,
    workers: int = 1,
    batch: bool = False,
) -> Fig7Result:
    """Fig. 7a: single-level factories, FD and GP versus the lower bound."""
    capacities = tuple(capacities or DEFAULT_SINGLE_LEVEL_CAPACITIES)
    evaluations = capacity_sweep(
        methods=("force_directed", "graph_partition"),
        capacities=capacities,
        levels=1,
        seed=seed,
        fd_config=fd_config,
        sim_config=sim_config,
        workers=workers,
        batch=batch,
    )
    return Fig7Result(levels=1, evaluations=evaluations)


def run_two_level(
    capacities: Optional[Sequence[int]] = None,
    seed: int = 0,
    fd_config: Optional[ForceDirectedConfig] = None,
    sim_config: Optional[SimulatorConfig] = None,
    workers: int = 1,
    batch: bool = False,
) -> Fig7Result:
    """Fig. 7b: two-level factories, FD and GP versus the lower bound."""
    capacities = tuple(capacities or DEFAULT_TWO_LEVEL_CAPACITIES)
    evaluations = capacity_sweep(
        methods=("force_directed", "graph_partition"),
        capacities=capacities,
        levels=2,
        seed=seed,
        fd_config=fd_config,
        sim_config=sim_config,
        workers=workers,
        batch=batch,
    )
    return Fig7Result(levels=2, evaluations=evaluations)


def format_result(result: Fig7Result) -> str:
    """Fixed-width table of the latency series."""
    series = result.series()
    capacities = sorted(series["lower_bound"].keys())
    lines = [f"Fig. 7 — latency vs lower bound (levels={result.levels})"]
    header = ["method".ljust(20)] + [f"K={c}".rjust(10) for c in capacities]
    lines.append("".join(header))
    for method in ("force_directed", "graph_partition", "lower_bound"):
        row = [method.ljust(20)]
        for capacity in capacities:
            value = series.get(method, {}).get(capacity)
            row.append(("-" if value is None else str(value)).rjust(10))
        lines.append("".join(row))
    return "\n".join(lines)


_CAPACITIES_PARAM = ParamSpec(
    "capacities", "int_list", help="comma-separated factory capacities to sweep"
)

register_experiment(
    "fig7a",
    run_single_level,
    formatter=format_result,
    params=(_CAPACITIES_PARAM, SEED_PARAM, WORKERS_PARAM, BATCH_PARAM),
    description="Fig. 7a: single-level FD/GP latency vs the lower bound",
)
register_experiment(
    "fig7b",
    run_two_level,
    formatter=format_result,
    params=(_CAPACITIES_PARAM, SEED_PARAM, WORKERS_PARAM, BATCH_PARAM),
    description="Fig. 7b: two-level FD/GP latency vs the lower bound",
)
