"""Experiment EXP-F9cd: permutation-step latency with intermediate hops (Fig. 9c / 9d).

The inter-round permutation step of a two-level factory is isolated (only the
injection braids that move a previous round's outputs into the next round's
modules are simulated) and executed under four hop-routing policies:

* **no hop** — every permutation braid routes directly;
* **randomized hop** — Valiant-style routing through a uniformly random
  intermediate destination;
* **annealed random hop** — random initial hops, then annealed with the
  force-directed objectives;
* **annealed midpoint hop** — hops initialised at each braid's midpoint and
  annealed (the paper's best variant, reported to cut permutation latency by
  about 1.3x over no hops).

The qualitative claim checked: annealed hops beat the no-hop baseline, and
pure random hops help little.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..api.experiments import SEED_PARAM, ParamSpec, register_experiment
from ..api.results import filter_fields
from ..distillation.block_code import FactorySpec, ReusePolicy
from ..mapping.stitching import (
    StitchingConfig,
    hierarchical_stitching,
    optimize_permutation_hops,
    permutation_gate_indices,
)
from ..routing.simulator import SimulatorConfig, simulate

#: Hop policies in the order of the paper's Fig. 9d legend.
HOP_MODES = ("none", "random", "annealed_random", "annealed_midpoint")

#: Capacities on the paper's Fig. 9d x-axis.
PAPER_CAPACITIES = (4, 16, 36, 64)
DEFAULT_CAPACITIES = (4, 16)

#: Speedup of annealed midpoint hops over no hops reported by the paper.
PAPER_BEST_SPEEDUP = 1.3


@dataclass(frozen=True)
class PermutationLatency:
    """Permutation-step latency for one (capacity, hop mode) pair."""

    capacity: int
    hop_mode: str
    latency: int
    braids: int

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict of the measurement."""
        return {
            "capacity": self.capacity,
            "hop_mode": self.hop_mode,
            "latency": self.latency,
            "braids": self.braids,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PermutationLatency":
        """Inverse of :meth:`to_dict`."""
        return cls(**filter_fields(cls, data))


@dataclass(frozen=True)
class Fig9PermutationResult:
    """All permutation-step measurements of the experiment."""

    measurements: List[PermutationLatency]

    def by_mode(self) -> Dict[str, Dict[int, int]]:
        """``{hop_mode: {capacity: latency}}``."""
        table: Dict[str, Dict[int, int]] = {}
        for measurement in self.measurements:
            table.setdefault(measurement.hop_mode, {})[measurement.capacity] = (
                measurement.latency
            )
        return table

    def speedup(self, capacity: int, mode: str = "annealed_midpoint") -> float:
        """Latency ratio of the no-hop baseline over ``mode`` at ``capacity``."""
        table = self.by_mode()
        baseline = table["none"][capacity]
        optimized = table[mode][capacity]
        if optimized == 0:
            return float("inf")
        return baseline / optimized

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict of every measurement."""
        return {"measurements": [m.to_dict() for m in self.measurements]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Fig9PermutationResult":
        """Inverse of :meth:`to_dict`."""
        return cls(
            measurements=[
                PermutationLatency.from_dict(m) for m in data.get("measurements", [])
            ]
        )


def _permutation_subcircuit(factory, placement, hops):
    """Extract the permutation braids and re-key their hops to local indices."""
    indices = permutation_gate_indices(factory)
    gates = [factory.circuit[i] for i in indices]
    local_hops = {
        local: hops[global_index]
        for local, global_index in enumerate(indices)
        if global_index in hops
    }
    return gates, local_hops


def run(
    capacities: Optional[Sequence[int]] = None,
    hop_modes: Sequence[str] = HOP_MODES,
    seed: int = 0,
    sim_config: Optional[SimulatorConfig] = None,
) -> Fig9PermutationResult:
    """Measure the permutation-step latency for every hop policy."""
    capacities = tuple(capacities or DEFAULT_CAPACITIES)
    sim_config = sim_config or SimulatorConfig()
    measurements: List[PermutationLatency] = []
    for capacity in capacities:
        spec = FactorySpec.from_capacity(capacity, levels=2)
        stitched = hierarchical_stitching(
            spec,
            reuse_policy=ReusePolicy.NO_REUSE,
            config=StitchingConfig(hop_mode="none", seed=seed),
        )
        factory = stitched.factory
        placement = stitched.placement
        for mode in hop_modes:
            hops = optimize_permutation_hops(
                factory,
                placement,
                StitchingConfig(hop_mode=mode, seed=seed),
            )
            gates, local_hops = _permutation_subcircuit(factory, placement, hops)
            config = replace(sim_config, hops=local_hops)
            result = simulate(gates, placement, config)
            measurements.append(
                PermutationLatency(
                    capacity=capacity,
                    hop_mode=mode,
                    latency=result.latency,
                    braids=len(gates),
                )
            )
    return Fig9PermutationResult(measurements=measurements)


def format_result(result: Fig9PermutationResult) -> str:
    """Table of permutation latencies, one row per hop mode."""
    table = result.by_mode()
    capacities = sorted({m.capacity for m in result.measurements})
    lines = ["Fig. 9c/9d — permutation-step latency by hop policy (cycles)"]
    header = ["hop mode".ljust(22)] + [f"K={c}".rjust(10) for c in capacities]
    lines.append("".join(header))
    for mode in HOP_MODES:
        if mode not in table:
            continue
        row = [mode.ljust(22)]
        for capacity in capacities:
            value = table[mode].get(capacity)
            row.append(("-" if value is None else str(value)).rjust(10))
        lines.append("".join(row))
    return "\n".join(lines)


register_experiment(
    "fig9cd",
    run,
    formatter=format_result,
    params=(
        ParamSpec(
            "capacities", "int_list", help="comma-separated two-level capacities"
        ),
        SEED_PARAM,
    ),
    description="Fig. 9c/9d: permutation-step latency under hop policies",
)
