"""Experiment EXP-F9ab: qubit reuse versus renaming (Fig. 9a / 9b).

The paper compares, for two-level factories mapped by the linear baseline,
force-directed annealing and graph partitioning, the space-time volume with
qubit reuse (R) against the volume without reuse (NR), reporting the
differential ``(NR - R) / NR``: positive means reuse is better.

The paper's qualitative findings, which this experiment checks:

* linear mapping and graph partitioning benefit from reuse at every
  capacity (positive differential);
* force-directed annealing prefers reuse only for the small factories
  (capacity 4 and 16) and prefers the extra freedom of no-reuse beyond that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..analysis.sweeps import evaluate_factory_mapping
from ..api.experiments import SEED_PARAM, ParamSpec, register_experiment
from ..api.results import filter_fields
from ..mapping.force_directed import ForceDirectedConfig
from ..routing.simulator import SimulatorConfig

#: Capacities on the paper's Fig. 9b x-axis.
PAPER_CAPACITIES = (4, 16, 36, 64)
DEFAULT_CAPACITIES = (4, 16)
#: Mapping methods compared in Fig. 9a/9b.
METHODS = ("linear", "force_directed", "graph_partition")


@dataclass(frozen=True)
class ReuseComparison:
    """Reuse vs no-reuse volumes for one (method, capacity) pair."""

    method: str
    capacity: int
    volume_no_reuse: int
    volume_reuse: int

    @property
    def differential(self) -> float:
        """The paper's metric ``(NR - R) / NR``; positive favours reuse."""
        if self.volume_no_reuse == 0:
            return 0.0
        return (self.volume_no_reuse - self.volume_reuse) / self.volume_no_reuse

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict of the comparison plus the derived differential."""
        return {
            "method": self.method,
            "capacity": self.capacity,
            "volume_no_reuse": self.volume_no_reuse,
            "volume_reuse": self.volume_reuse,
            "differential": self.differential,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ReuseComparison":
        """Inverse of :meth:`to_dict` (derived keys are ignored)."""
        return cls(**filter_fields(cls, data))


@dataclass(frozen=True)
class Fig9ReuseResult:
    """All reuse comparisons of the experiment."""

    comparisons: List[ReuseComparison]

    def by_method(self) -> Dict[str, Dict[int, ReuseComparison]]:
        table: Dict[str, Dict[int, ReuseComparison]] = {}
        for comparison in self.comparisons:
            table.setdefault(comparison.method, {})[comparison.capacity] = comparison
        return table

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict of every reuse comparison."""
        return {"comparisons": [c.to_dict() for c in self.comparisons]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Fig9ReuseResult":
        """Inverse of :meth:`to_dict`."""
        return cls(
            comparisons=[
                ReuseComparison.from_dict(c) for c in data.get("comparisons", [])
            ]
        )


def run(
    capacities: Optional[Sequence[int]] = None,
    methods: Sequence[str] = METHODS,
    seed: int = 0,
    fd_config: Optional[ForceDirectedConfig] = None,
    sim_config: Optional[SimulatorConfig] = None,
) -> Fig9ReuseResult:
    """Evaluate every method with and without qubit reuse on two-level factories."""
    capacities = tuple(capacities or DEFAULT_CAPACITIES)
    comparisons: List[ReuseComparison] = []
    for capacity in capacities:
        for method in methods:
            no_reuse = evaluate_factory_mapping(
                method,
                capacity,
                levels=2,
                reuse=False,
                seed=seed,
                fd_config=fd_config,
                sim_config=sim_config,
            )
            reuse = evaluate_factory_mapping(
                method,
                capacity,
                levels=2,
                reuse=True,
                seed=seed,
                fd_config=fd_config,
                sim_config=sim_config,
            )
            comparisons.append(
                ReuseComparison(
                    method=method,
                    capacity=capacity,
                    volume_no_reuse=no_reuse.volume,
                    volume_reuse=reuse.volume,
                )
            )
    return Fig9ReuseResult(comparisons=comparisons)


def format_result(result: Fig9ReuseResult) -> str:
    """Table of volume differentials, one row per method."""
    table = result.by_method()
    capacities = sorted({c.capacity for c in result.comparisons})
    lines = ["Fig. 9a/9b — qubit reuse volume differential (NR - R) / NR"]
    header = ["method".ljust(20)] + [f"K={c}".rjust(10) for c in capacities]
    lines.append("".join(header))
    for method, row in table.items():
        cells = [method.ljust(20)]
        for capacity in capacities:
            comparison = row.get(capacity)
            cells.append(
                (
                    "-"
                    if comparison is None
                    else f"{comparison.differential:+.3f}"
                ).rjust(10)
            )
        lines.append("".join(cells))
    return "\n".join(lines)


register_experiment(
    "fig9ab",
    run,
    formatter=format_result,
    params=(
        ParamSpec(
            "capacities", "int_list", help="comma-separated two-level capacities"
        ),
        SEED_PARAM,
    ),
    description="Fig. 9a/9b: qubit reuse vs renaming volume differentials",
)
